//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest 1.x API used by the workspace's property
//! tests: the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! range and tuple strategies, a small regex-subset string strategy,
//! [`collection::vec`] / [`collection::hash_set`], [`Just`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream: no shrinking (failures report the raw
//! counterexample), and case generation is seeded deterministically from
//! the test name so runs are reproducible. The number of cases per test
//! defaults to 64 and can be raised with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError,
    };
}

/// Number of cases each property runs (64, or `PROPTEST_CASES`).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test seed: FNV-1a over the test's name.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property: generates cases, skips rejections, panics on the
/// first failing case. Used by the expansion of [`proptest!`].
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let target = cases();
    let base = seed_for(name);
    let mut passed = 0u64;
    let mut attempts = 0u64;
    let max_attempts = target.saturating_mul(16).max(1024);
    while passed < target {
        assert!(
            attempts < max_attempts,
            "proptest {name}: too many rejected cases ({attempts} attempts, {passed} passed)"
        );
        let mut rng = StdRng::seed_from_u64(base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case {passed} failed: {msg}")
            }
        }
    }
}

/// Declares property tests. Each function body runs once per generated
/// case; use `prop_assert*!` / `prop_assume!` inside.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_property(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts `cond`, failing the current case (with an optional message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts `left == right`, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts `left != right`, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Uniform choice between boxed strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.lo..=self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates are retried a bounded
    /// number of times, after which a smaller set is returned.
    pub fn hash_set<S>(element: S, size: impl SizeRange) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        let (lo, hi) = size.bounds();
        HashSetStrategy { element, lo, hi }
    }

    /// Strategy producing `HashSet`s of `element` values.
    pub struct HashSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.lo..=self.hi);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}
