//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, [`Just`], `prop_map` / `prop_filter` combinators, boxed
//! unions (for `prop_oneof!`) and a regex-subset string strategy.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// A recipe for generating values of an associated type.
///
/// Unlike upstream proptest there is no shrinking: `generate` simply
/// draws one value from the deterministic per-case RNG.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number
    /// of times (panics if the predicate is too selective).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Size specification for collection strategies.
pub trait SizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// String strategy from a regex subset: sequences of literal characters
/// (with `\\`, `\t`, `\n`, `\r` escapes) and character classes
/// `[a-z0-9,. ]`, each optionally quantified by `{m}`, `{m,n}`, `?`,
/// `*` or `+` (unbounded quantifiers are capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(chars) => {
                        out.push(chars[rng.gen_range(0..chars.len())]);
                    }
                }
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                let members = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(members)
            }
            '\\' => {
                let c = unescape(chars.get(i + 1).copied(), pattern);
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut members = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if body[j] == '\\' {
            members.push(unescape(body.get(j + 1).copied(), pattern));
            j += 2;
        } else if j + 2 < body.len() && body[j + 1] == '-' && body[j + 2] != ']' {
            let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
            assert!(lo <= hi, "inverted range in class of {pattern:?}");
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    members.push(c);
                }
            }
            j += 3;
        } else {
            members.push(body[j]);
            j += 1;
        }
    }
    assert!(!members.is_empty(), "empty character class in {pattern:?}");
    members
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('t') => '\t',
        Some('n') => '\n',
        Some('r') => '\r',
        Some(c) => c,
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = (3u8..=61).generate(&mut rng);
            assert!((3..=61).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let s = "[a-z]{1,4}".generate(&mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for _ in 0..500 {
            let s = "[a-zA-Z0-9,\\\t ]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || ",\\\t ".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn map_filter_union() {
        let mut rng = StdRng::seed_from_u64(3);
        let even = (0u32..100).prop_map(|v| v * 2);
        let strat = crate::prop_oneof![Just(1u32), even.prop_filter("nonzero", |&v| v > 0)];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (v % 2 == 0 && v > 0));
        }
    }
}
