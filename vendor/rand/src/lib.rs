//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored shim implements the (small) subset of the rand 0.8
//! API that the workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (deterministic,
//!   high quality, but **not** stream-compatible with upstream rand's
//!   ChaCha12-based `StdRng`; seeds produce different sequences)
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! Determinism is the only hard requirement of the workspace
//! (`tests/determinism.rs` compares run-to-run output for equal seeds),
//! and xoshiro256++ satisfies it with a fraction of the code.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Uniform draw from `[0, span)` (`span == 0` means the full u64 range),
/// using Lemire-style widening multiplication with rejection to avoid
/// modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator by expanding `state` with SplitMix64 —
    /// the canonical way the workspace seeds every pipeline.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic and statistically strong; **not** bit-compatible
    /// with upstream rand's ChaCha12 `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s.iter().all(|&w| w == 0) {
                let mut st = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in &mut s {
                    *word = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds_int() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=61);
            assert!(w <= 61);
        }
    }

    #[test]
    fn gen_range_bounds_float() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..6.0);
            assert!((2.0..6.0).contains(&v));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
