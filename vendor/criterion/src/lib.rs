//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the criterion 0.5 API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`]
//! and the `criterion_group!` / `criterion_main!` macros — with plain
//! wall-clock timing instead of statistical analysis. Each benchmark
//! runs a short calibration burst, then enough iterations to fill a
//! fixed measurement window, and prints the mean time per iteration.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier combining a function name and a parameter, shown as
/// `name/parameter` in output.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Trait unifying `&str` and [`BenchmarkId`] as benchmark names.
pub trait IntoBenchmarkId {
    /// Renders the final label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    measurement: Duration,
    result: &'a mut Option<Measurement>,
}

struct Measurement {
    iterations: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, first calibrating then filling the measurement
    /// window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: how many iterations fit in ~5 ms?
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(5) {
            std_black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(routine());
        }
        *self.result = Some(Measurement {
            iterations: target,
            total: start.elapsed(),
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim uses a fixed window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t.min(Duration::from_millis(500));
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, |b| f(b));
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `Criterion::default().configure_from_args()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = id.into_label();
        self.run_one(&label, |b| f(b));
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut result = None;
        let mut bencher = Bencher {
            measurement: self.measurement,
            result: &mut result,
        };
        f(&mut bencher);
        match result {
            Some(m) => {
                let per_iter = m.total.as_secs_f64() / m.iterations as f64;
                println!(
                    "bench {label:<50} {:>12} ({} iterations)",
                    format_time(per_iter),
                    m.iterations
                );
            }
            None => println!("bench {label:<50} (no measurement)"),
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
