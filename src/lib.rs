//! Umbrella package hosting the repository's `examples/` and `tests/`.
//!
//! The real library surface lives in the [`tagdist`] facade crate and the
//! per-subsystem crates under `crates/`. This stub only exists so the
//! workspace root can own runnable examples and cross-crate integration
//! tests, as laid out in `DESIGN.md`.

pub use tagdist as facade;
