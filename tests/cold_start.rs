//! Integration test for the cold-start scenario (E6b): predicting the
//! geography of videos uploaded *after* the knowledge-base crawl.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl, CrawlConfig};
use tagdist::dataset::filter;
use tagdist::geo::{world, GeoDist};
use tagdist::reconstruct::{ErrorReport, Reconstruction, TagViewTable};
use tagdist::tags::{Predictor, SmoothedPredictor};
use tagdist::ytsim::{Platform, WorldConfig};

const BASE: usize = 2_500;
const NEW: usize = 400;

struct ColdStart {
    truth: Vec<GeoDist>,
    by_tags: Vec<GeoDist>,
    by_smoothed: Vec<GeoDist>,
    by_prior: Vec<GeoDist>,
    known_tag_share: f64,
}

fn run_cold_start() -> ColdStart {
    let mut today_cfg = WorldConfig::tiny();
    today_cfg.with_videos(BASE);
    let today = Platform::generate(today_cfg.clone());
    let outcome = crawl(&today, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    let traffic = today.true_traffic().clone();
    let recon = Reconstruction::compute(&clean, &traffic).expect("reconstructs");
    let table = TagViewTable::aggregate(&clean, &recon);
    let predictor = Predictor::new(&table, &traffic);
    let smoothed = SmoothedPredictor::new(&table, &traffic, 5_000.0);

    let mut tomorrow_cfg = today_cfg;
    tomorrow_cfg.with_videos(BASE + NEW);
    let tomorrow = Platform::generate(tomorrow_cfg);

    let mut truth = Vec::new();
    let mut by_tags = Vec::new();
    let mut by_smoothed = Vec::new();
    let mut by_prior = Vec::new();
    let mut known = 0usize;
    for i in BASE..BASE + NEW {
        let video = tomorrow.video(i);
        let tag_ids: Vec<_> = video
            .tags
            .iter()
            .filter_map(|t| clean.tags().id(t))
            .collect();
        if !tag_ids.is_empty() {
            known += 1;
        }
        truth.push(video.view_distribution());
        by_tags.push(predictor.predict(&tag_ids, None));
        by_smoothed.push(smoothed.predict(&tag_ids, None));
        by_prior.push(traffic.clone());
    }
    ColdStart {
        truth,
        by_tags,
        by_smoothed,
        by_prior,
        known_tag_share: known as f64 / NEW as f64,
    }
}

fn shared() -> &'static ColdStart {
    use std::sync::OnceLock;
    static DATA: OnceLock<ColdStart> = OnceLock::new();
    DATA.get_or_init(run_cold_start)
}

#[test]
fn vocabulary_generalizes_to_new_uploads() {
    // Topic vocabularies are shared, so almost every new upload
    // carries tags the crawl has already seen.
    assert!(
        shared().known_tag_share > 0.95,
        "known-tag share {}",
        shared().known_tag_share
    );
}

#[test]
fn tags_beat_the_prior_on_unseen_videos() {
    let x = shared();
    let tags = ErrorReport::compare(&x.truth, &x.by_tags).expect("aligned");
    let prior = ErrorReport::compare(&x.truth, &x.by_prior).expect("aligned");
    assert!(
        tags.js.mean < prior.js.mean,
        "tags {} vs prior {}",
        tags.js.mean,
        prior.js.mean
    );
    assert!(tags.top_country_accuracy > prior.top_country_accuracy);
}

#[test]
fn smoothing_does_not_hurt_cold_start() {
    let x = shared();
    let raw = ErrorReport::compare(&x.truth, &x.by_tags).expect("aligned");
    let smoothed = ErrorReport::compare(&x.truth, &x.by_smoothed).expect("aligned");
    // Shrinkage trades a little sharpness for tail safety; on the
    // whole corpus it must stay in the same ballpark and never
    // degrade to the prior.
    let prior = ErrorReport::compare(&x.truth, &x.by_prior).expect("aligned");
    assert!(smoothed.js.mean < prior.js.mean);
    assert!(smoothed.js.mean < raw.js.mean * 1.25);
    // Shrinkage pulls the typical (median) error toward the prior's
    // behaviour without blowing it up. (It does NOT bound the max:
    // a thin-evidence video whose truth is far from the prior gets
    // worse, by design.)
    assert!(smoothed.js.median < raw.js.median * 1.25);
}

#[test]
fn world_registry_is_consistent_for_cold_start() {
    let x = shared();
    for d in &x.truth {
        assert_eq!(d.len(), world().len());
    }
}
