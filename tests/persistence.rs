//! Crawl → serialize → reload → analyze: the offline workflow the
//! paper's group used (crawl once in 2011, analyze for years).

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl, CrawlConfig};
use tagdist::dataset::{filter, tsv, DatasetStats};
use tagdist::reconstruct::{Reconstruction, TagViewTable};
use tagdist::ytsim::{Platform, PlatformApi, WorldConfig};

fn platform() -> Platform {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(1_200).with_seed(404);
    Platform::generate(cfg)
}

#[test]
fn serialized_crawl_reloads_identically() {
    let p = platform();
    let mut ccfg = CrawlConfig::default();
    ccfg.with_budget(600);
    let outcome = crawl(&p, &ccfg);

    let mut buf = Vec::new();
    tsv::write(&outcome.dataset, &mut buf).expect("serialize");
    let reloaded = tsv::read(&buf[..]).expect("deserialize");

    assert_eq!(reloaded.len(), outcome.dataset.len());
    assert_eq!(reloaded.country_count(), outcome.dataset.country_count());
    for (a, b) in outcome.dataset.iter().zip(reloaded.iter()) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.title, b.title);
        assert_eq!(a.total_views, b.total_views);
        assert_eq!(a.popularity, b.popularity);
    }
}

#[test]
fn analysis_results_survive_the_round_trip() {
    let p = platform();
    let outcome = crawl(&p, &CrawlConfig::default());

    let mut buf = Vec::new();
    tsv::write(&outcome.dataset, &mut buf).expect("serialize");
    let reloaded = tsv::read(&buf[..]).expect("deserialize");

    let clean_a = filter(&outcome.dataset);
    let clean_b = filter(&reloaded);
    assert_eq!(clean_a.report(), clean_b.report());

    let stats_a = DatasetStats::compute(&clean_a);
    let stats_b = DatasetStats::compute(&clean_b);
    assert_eq!(stats_a.videos, stats_b.videos);
    assert_eq!(stats_a.unique_tags, stats_b.unique_tags);
    assert_eq!(stats_a.total_views, stats_b.total_views);

    let traffic = p.true_traffic();
    let recon_a = Reconstruction::compute(&clean_a, traffic).expect("recon a");
    let recon_b = Reconstruction::compute(&clean_b, traffic).expect("recon b");
    let table_a = TagViewTable::aggregate(&clean_a, &recon_a);
    let table_b = TagViewTable::aggregate(&clean_b, &recon_b);
    assert_eq!(table_a.populated_tags(), table_b.populated_tags());

    // Spot-check the built-in exemplar tags' aggregates.
    for name in ["pop", "favela"] {
        let ta = clean_a.tags().id(name);
        let tb = clean_b.tags().id(name);
        match (ta, tb) {
            (Some(ta), Some(tb)) => {
                assert_eq!(table_a.video_count(ta), table_b.video_count(tb));
                let va = table_a.total_views(ta);
                let vb = table_b.total_views(tb);
                assert!((va - vb).abs() < 1e-6, "{name}: {va} vs {vb}");
            }
            (None, None) => {}
            other => panic!("{name} interned on one side only: {other:?}"),
        }
    }
}

#[test]
fn file_round_trip_through_the_filesystem() {
    let p = platform();
    let mut ccfg = CrawlConfig::default();
    ccfg.with_budget(200);
    let outcome = crawl(&p, &ccfg);

    let path = std::env::temp_dir().join(format!("tagdist-test-{}.tsv", std::process::id()));
    {
        let mut file = std::fs::File::create(&path).expect("create temp file");
        tsv::write(&outcome.dataset, &mut file).expect("write file");
    }
    let file = std::fs::File::open(&path).expect("open temp file");
    let reloaded = tsv::read(file).expect("read file");
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.len(), outcome.dataset.len());
    assert!(p.catalogue_size() >= reloaded.len());
}
