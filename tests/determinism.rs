//! Determinism guarantees: every stochastic stage is a pure function
//! of its seeds (DESIGN.md §6). Reproducibility is the point of a
//! reproduction.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl, crawl_parallel, CrawlConfig};
use tagdist::geo::TrafficModel;
use tagdist::obs::Recorder;
use tagdist::par::{Pool, THREADS_ENV};
use tagdist::ytsim::{Platform, PlatformApi, WorldConfig};
use tagdist::{markdown_report, markdown_report_obs, ReportOptions, Study, StudyConfig};

fn tiny(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(800).with_seed(seed);
    cfg
}

#[test]
fn platforms_are_reproducible() {
    let a = Platform::generate(tiny(1));
    let b = Platform::generate(tiny(1));
    assert_eq!(a.catalogue_size(), b.catalogue_size());
    for i in 0..a.catalogue_size() {
        assert_eq!(a.video(i).total_views, b.video(i).total_views);
        assert_eq!(a.video(i).tags, b.video(i).tags);
        assert_eq!(a.video(i).upload_country, b.video(i).upload_country);
        assert_eq!(a.fetch(&a.video(i).key), b.fetch(&b.video(i).key));
    }
    assert_eq!(a.true_traffic(), b.true_traffic());
}

#[test]
fn different_seeds_differ() {
    let a = Platform::generate(tiny(1));
    let b = Platform::generate(tiny(2));
    let differs = (0..a.catalogue_size()).any(|i| a.video(i).total_views != b.video(i).total_views);
    assert!(differs, "seed change must alter the world");
}

#[test]
fn crawls_are_reproducible_and_parallelism_invariant() {
    let platform = Platform::generate(tiny(3));
    let mut cfg = CrawlConfig::default();
    cfg.with_budget(400);

    let serial_a = crawl(&platform, &cfg);
    let serial_b = crawl(&platform, &cfg);
    let keys = |o: &tagdist::crawler::CrawlOutcome| -> Vec<String> {
        o.dataset.iter().map(|v| v.key.clone()).collect()
    };
    assert_eq!(keys(&serial_a), keys(&serial_b));

    for threads in [1, 2, 8] {
        let mut pcfg = cfg.clone();
        pcfg.with_threads(threads);
        let parallel = crawl_parallel(&platform, &pcfg);
        assert_eq!(
            keys(&serial_a),
            keys(&parallel),
            "{threads}-thread crawl diverged"
        );
        assert_eq!(serial_a.stats, parallel.stats);
    }
}

#[test]
fn traffic_perturbation_is_seeded() {
    let t = TrafficModel::reference(tagdist::geo::world());
    assert_eq!(t.perturbed(0.2, 9), t.perturbed(0.2, 9));
    assert_ne!(t.perturbed(0.2, 9), t.perturbed(0.2, 10));
}

#[test]
fn whole_studies_are_reproducible() {
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(800);
    let a = Study::run(cfg.clone());
    let b = Study::run(cfg);
    assert_eq!(a.filter_report(), b.filter_report());
    assert_eq!(a.fig1_most_viewed().key, b.fig1_most_viewed().key);
    let pa = a.tag_profile("pop").unwrap();
    let pb = b.tag_profile("pop").unwrap();
    assert_eq!(pa.dist, pb.dist);
    assert_eq!(
        a.reconstruction_error().js.mean,
        b.reconstruction_error().js.mean
    );
}

/// The PR 2 worker-pool contract on the full pipeline: the rendered
/// Study report — every figure, error table and prediction row — is
/// byte-identical whether the pool runs 1, 2 or 8 threads.
#[test]
fn study_report_is_byte_identical_across_thread_counts() {
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(800);
    let options = ReportOptions::default();

    std::env::set_var(THREADS_ENV, "1");
    let reference = markdown_report(&Study::run(cfg.clone()), &options);
    for threads in ["2", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        let report = markdown_report(&Study::run(cfg.clone()), &options);
        assert_eq!(report, reference, "report drifted at {threads} threads");
    }
    std::env::remove_var(THREADS_ENV);
}

/// The PR 4 observability contract: the deterministic subtree of the
/// metrics report — counters and gauges, every pipeline layer — is
/// byte-identical at any thread count. Wall-clock spans and scheduler
/// fan-out stats vary with the pool; they live in the segregated
/// `timing` section, which `deterministic_json` excludes.
#[test]
fn metrics_counters_are_byte_identical_across_thread_counts() {
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(800);
    let options = ReportOptions {
        with_caching: true,
        requests: 5_000,
        capacities: vec![0.02],
        ..ReportOptions::default()
    };

    let run = |threads: &str| {
        std::env::set_var(THREADS_ENV, threads);
        let obs = Recorder::new();
        let study = Study::try_run_with(cfg.clone(), &obs).expect("study runs");
        let _ = markdown_report_obs(&study, &options, &obs);
        obs.finish()
    };

    let reference = run("1");
    // The span tree covers every Study stage plus the report sections.
    let names = reference.span_names();
    for stage in [
        "study",
        "generate",
        "crawl",
        "filter",
        "traffic_prior",
        "reconstruct",
        "aggregate",
        "validate",
        "report",
        "e1_accounting",
        "e5_reconstruction_error",
        "e6_prediction",
        "predict",
        "e7_caching",
    ] {
        assert!(names.contains(&stage), "missing span {stage:?}: {names:?}");
    }
    // ... and the counters cover pool, crawler and cache layers.
    for key in [
        "par.calls",
        "crawl.fetched",
        "crawl.frontier_items",
        "crawl.retries",
        "crawl.breaker_trips",
        "crawl.backoff_wait_ms",
        "crawl.throttle_wait_ms",
        "filter.kept",
        "reconstruct.rows_filled",
        "aggregate.postings",
        "predict.videos",
        "cache.requests",
    ] {
        assert!(
            reference.counters.contains_key(key),
            "missing counter {key:?}"
        );
    }
    assert!(reference.gauges.contains_key("crawl.frontier_peak"));

    for threads in ["2", "8"] {
        let metrics = run(threads);
        assert_eq!(
            metrics.deterministic_json(),
            reference.deterministic_json(),
            "deterministic counters drifted at {threads} threads"
        );
    }
    std::env::remove_var(THREADS_ENV);
}

/// Eq. 3 aggregation totals (the sharded par_fold) are exact across
/// thread counts — per-tag, per-country, bit for bit.
#[test]
fn tag_view_totals_are_thread_count_invariant() {
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(800);

    std::env::set_var(THREADS_ENV, "1");
    let reference = Study::run(cfg.clone());
    for threads in ["2", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        let study = Study::run(cfg.clone());
        assert_eq!(
            study.tag_table(),
            reference.tag_table(),
            "tag totals drifted at {threads} threads"
        );
        assert_eq!(
            study.reconstruction(),
            reference.reconstruction(),
            "reconstruction drifted at {threads} threads"
        );
    }
    std::env::remove_var(THREADS_ENV);
}

/// The PR 8 columnar contract: starting from one `bin v1` corpus
/// image, the record pipeline (decode → filter) and the zero-copy
/// columnar pipeline (decode_borrowed → filter_columnar) must render
/// byte-identical tag-view reports — and both must be invariant to
/// the worker-pool size.
#[test]
fn columnar_and_record_reports_are_byte_identical_across_threads() {
    use std::fmt::Write as _;
    use tagdist::dataset::{binfmt, decode_any, filter, filter_columnar, write_binary};
    use tagdist::reconstruct::{Reconstruction, TagViewTable};

    let platform = Platform::generate(tiny(11));
    let mut cfg = CrawlConfig::default();
    cfg.with_budget(600);
    let outcome = crawl(&platform, &cfg);
    let mut bin = Vec::new();
    write_binary(&outcome.dataset, &mut bin).unwrap();
    let traffic = platform.true_traffic();

    // Exact text rendering: `{:?}` on f64 round-trips every bit, so
    // string equality below is bit equality of the aggregates.
    let render = |table: &TagViewTable| {
        let mut out = String::new();
        for (tag, views) in table.iter() {
            writeln!(out, "{}\t{views:?}", tag.index()).unwrap();
        }
        out
    };
    let run = |columnar: bool| {
        let clean = if columnar {
            let view = binfmt::decode_borrowed(&bin).unwrap();
            filter_columnar(&view)
        } else {
            filter(&decode_any(&bin).unwrap())
        };
        let recon = Reconstruction::compute(&clean, traffic).unwrap();
        render(&TagViewTable::aggregate(&clean, &recon))
    };

    std::env::set_var(THREADS_ENV, "1");
    let reference = run(false);
    assert!(!reference.is_empty(), "corpus must aggregate to something");
    for threads in ["1", "2", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        assert_eq!(
            run(false),
            reference,
            "record path drifted at {threads} threads"
        );
        assert_eq!(
            run(true),
            reference,
            "columnar path drifted at {threads} threads"
        );
    }
    std::env::remove_var(THREADS_ENV);
}

/// The PR 9 rebuild oracle: after N streamed batches the incremental
/// ingest engine's published snapshot — clean columns, reconstruction
/// matrix and tag aggregates — is byte-identical to a cold
/// filter → compute → aggregate rebuild of the dataset the same crawl
/// saves, and both sides are invariant to the worker-pool size.
#[test]
fn incremental_ingest_equals_cold_rebuild_across_threads() {
    use std::fmt::Write as _;
    use tagdist::crawler::crawl_parallel_with_batches;
    use tagdist::dataset::filter;
    use tagdist::reconstruct::{EpochSnapshot, IngestEngine, Reconstruction, TagViewTable};

    let platform = Platform::generate(tiny(11));
    let mut cfg = CrawlConfig::default();
    cfg.with_budget(600);
    let traffic = platform.true_traffic();

    // Exact text rendering: `{:?}` on f64 round-trips every bit, so
    // string equality below is bit equality of the whole state.
    let render = |clean: &tagdist::dataset::CleanDataset, table: &TagViewTable| {
        let mut out = String::new();
        writeln!(out, "{}", clean.report()).unwrap();
        for (tag, views) in table.iter() {
            writeln!(out, "{}\t{views:?}", tag.index()).unwrap();
        }
        out
    };
    let incremental = || {
        let mut engine = IngestEngine::new(traffic.clone());
        let mut error = None;
        let outcome = crawl_parallel_with_batches(&platform, &cfg, None, |dataset, from| {
            if error.is_some() {
                return;
            }
            error = engine
                .apply_from(dataset, from)
                .and_then(|_| engine.publish().map(|_| ()))
                .err();
        });
        assert_eq!(error, None, "ingest must absorb every batch");
        let snapshot: std::sync::Arc<EpochSnapshot> = engine.cell().load().unwrap();
        assert!(engine.epoch() > 1, "crawl must stream several batches");
        (render(&snapshot.clean, &snapshot.table), outcome.dataset)
    };
    let cold = |dataset: &tagdist::dataset::Dataset| {
        let clean = filter(dataset);
        let recon = Reconstruction::compute(&clean, traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        render(&clean, &table)
    };

    std::env::set_var(THREADS_ENV, "1");
    let (reference, reference_dataset) = incremental();
    assert!(!reference.is_empty());
    assert_eq!(
        reference,
        cold(&reference_dataset),
        "incremental state must equal the cold rebuild"
    );
    for threads in ["1", "2", "8"] {
        std::env::set_var(THREADS_ENV, threads);
        let (streamed, dataset) = incremental();
        assert_eq!(
            streamed, reference,
            "incremental state drifted at {threads} threads"
        );
        assert_eq!(
            cold(&dataset),
            reference,
            "cold rebuild drifted at {threads} threads"
        );
    }
    std::env::remove_var(THREADS_ENV);
}

mod par_fold_properties {
    use super::Pool;
    use proptest::prelude::*;

    proptest! {
        /// The sharded fold+merge equals the plain serial fold for an
        /// exact (integer) reduction, at any thread count.
        #[test]
        fn sharded_par_fold_merge_equals_serial_fold(
            items in proptest::collection::vec(0u64..1_000_000, 0..600),
            threads in 1usize..9,
        ) {
            let serial: u64 = items.iter().sum();
            let sharded = Pool::new(threads).par_fold(
                &items,
                || 0u64,
                |acc, _, &v| acc + v,
                |a, b| a + b,
            );
            prop_assert_eq!(sharded, serial);
        }
    }
}

#[test]
fn request_streams_are_seeded() {
    use tagdist::cache::RequestStream;
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(800);
    let s = Study::run(cfg);
    let truth = s.true_distributions();
    let weights = s.view_weights();
    let a = RequestStream::generate(&truth, &weights, 1_000, 5);
    let b = RequestStream::generate(&truth, &weights, 1_000, 5);
    assert_eq!(a, b);
    let c = RequestStream::generate(&truth, &weights, 1_000, 6);
    assert_ne!(a, c);
}
