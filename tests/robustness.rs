//! Failure-injection tests: the pipeline must degrade gracefully, not
//! crash, when the platform serves pathological metadata.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl, crawl_stepwise, CrawlCheckpoint, CrawlConfig, CrawlRun};
use tagdist::dataset::{filter, tsv, RawPopularity};
use tagdist::geo::{world, CountryId};
use tagdist::reconstruct::{Reconstruction, TagViewTable};
use tagdist::ytsim::{FetchError, PlatformApi, VideoMetadata, WorldConfig};

/// A platform where EVERY popularity vector is defective.
struct AllDefective;

impl PlatformApi for AllDefective {
    fn top_videos(&self, _country: CountryId, k: usize) -> Vec<String> {
        (0..k).map(|i| format!("bad{i}")).collect()
    }
    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
        if !key.starts_with("bad") {
            return Err(FetchError::NotFound);
        }
        let n: usize = key[3..].parse().map_err(|_| FetchError::NotFound)?;
        let popularity = match n % 3 {
            0 => None,                             // missing
            1 => Some(vec![200u8; world().len()]), // out of range
            _ => Some(vec![0u8; world().len()]),   // empty signal
        };
        Ok(VideoMetadata {
            key: key.to_owned(),
            title: format!("bad video {n}"),
            total_views: 10,
            duration_secs: 60,
            tags: vec!["tag".into()],
            popularity,
        })
    }
    fn related(&self, key: &str, _k: usize) -> Result<Vec<String>, FetchError> {
        let n: usize = key[3..].parse().unwrap_or(0);
        if n < 50 {
            Ok(vec![format!("bad{}", n + 10)])
        } else {
            Ok(Vec::new())
        }
    }
    fn catalogue_size(&self) -> usize {
        60
    }
}

#[test]
fn fully_defective_platform_filters_to_empty_without_crashing() {
    let outcome = crawl(&AllDefective, &CrawlConfig::default());
    assert!(!outcome.dataset.is_empty());
    let clean = filter(&outcome.dataset);
    assert!(clean.is_empty());
    assert_eq!(clean.report().kept, 0);
    assert_eq!(
        clean.report().bad_popularity + clean.report().no_tags,
        clean.report().crawled
    );
    // Downstream stages handle the empty set.
    let traffic = tagdist::geo::TrafficModel::reference(world());
    let recon = Reconstruction::compute(&clean, traffic.distribution()).expect("empty ok");
    assert!(recon.is_empty());
    let table = TagViewTable::aggregate(&clean, &recon);
    assert_eq!(table.populated_tags(), 0);
}

/// A platform that serves charts for a *different* world size —
/// simulating a registry/scraper mismatch.
struct WrongWorld;

impl PlatformApi for WrongWorld {
    fn top_videos(&self, _country: CountryId, k: usize) -> Vec<String> {
        (0..k).map(|i| format!("w{i}")).collect()
    }
    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
        key.starts_with('w')
            .then(|| VideoMetadata {
                key: key.to_owned(),
                title: "wrong world".into(),
                total_views: 5,
                duration_secs: 60,
                tags: vec!["x".into()],
                popularity: Some(vec![61u8; 7]), // 7 ≠ 60 countries
            })
            .ok_or(FetchError::NotFound)
    }
    fn related(&self, _key: &str, _k: usize) -> Result<Vec<String>, FetchError> {
        Ok(Vec::new())
    }
    fn catalogue_size(&self) -> usize {
        10
    }
}

#[test]
fn wrong_length_charts_are_classified_corrupt() {
    let outcome = crawl(&WrongWorld, &CrawlConfig::default());
    for video in outcome.dataset.iter() {
        assert!(matches!(video.popularity, RawPopularity::Corrupt(_)));
    }
    let clean = filter(&outcome.dataset);
    assert!(clean.is_empty());
    assert_eq!(clean.report().bad_popularity, outcome.dataset.len());
}

#[test]
fn defect_free_world_keeps_everything() {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(500).without_defects();
    let platform = tagdist::ytsim::Platform::generate(cfg);
    let outcome = crawl(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    assert_eq!(clean.report().no_tags, 0);
    assert_eq!(clean.report().bad_popularity, 0);
    assert_eq!(clean.report().kept, outcome.dataset.len());
}

#[test]
fn maximal_defect_rates_still_produce_a_working_study() {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(1_000);
    cfg.defect_missing_pop = 0.4;
    cfg.defect_corrupt_pop = 0.3;
    cfg.defect_empty_pop = 0.25;
    cfg.defect_no_tags = 0.02;
    let platform = tagdist::ytsim::Platform::generate(cfg);
    let outcome = crawl(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    // ~5 % survival expected; the pipeline must still run.
    assert!(clean.report().keep_ratio() < 0.15);
    if !clean.is_empty() {
        let recon = Reconstruction::compute(&clean, platform.true_traffic()).expect("reconstructs");
        assert_eq!(recon.len(), clean.len());
    }
}

#[test]
fn zero_budget_is_rejected_but_tiny_budget_works() {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(300);
    let platform = tagdist::ytsim::Platform::generate(cfg);
    let mut ccfg = CrawlConfig::default();
    ccfg.with_budget(1);
    let outcome = crawl(&platform, &ccfg);
    assert_eq!(outcome.dataset.len(), 1);
    assert!(!outcome.stats.frontier_exhausted);
}

#[test]
fn churned_platform_crawls_degrade_gracefully() {
    use tagdist::ytsim::ChurnedPlatform;
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(800);
    let platform = tagdist::ytsim::Platform::generate(cfg);
    let churned = ChurnedPlatform::new(&platform, 0.25, 3);
    let outcome = crawl(&churned, &CrawlConfig::default());
    // Deleted videos surface as failed fetches, not crashes.
    assert!(outcome.stats.failed_fetches > 0);
    assert!(!outcome.dataset.is_empty());
    assert!(outcome.dataset.len() <= churned.catalogue_size());
    // Everything fetched is genuinely live.
    for video in outcome.dataset.iter() {
        assert!(churned.fetch(&video.key).is_ok());
    }
    // The analysis pipeline still runs on the survivors.
    let clean = filter(&outcome.dataset);
    assert!(!clean.is_empty());
    let recon = Reconstruction::compute(&clean, platform.true_traffic()).expect("reconstructs");
    assert_eq!(recon.len(), clean.len());
}

/// The kill/resume contract: suspend a crawl mid-flight, serialize the
/// checkpoint to bytes (simulating a process death), parse it back in
/// a "fresh process" against a regenerated platform, resume — and get
/// a dataset byte-identical to the uninterrupted crawl, with equal
/// stats.
#[test]
fn killed_and_resumed_crawl_is_byte_identical() {
    let make_platform = || {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(1_200).with_seed(99);
        tagdist::ytsim::Platform::generate(cfg)
    };
    let crawl_cfg = CrawlConfig::default();

    let uninterrupted = crawl(&make_platform(), &crawl_cfg);

    // "Process one": crawl two levels, checkpoint, die.
    let first = make_platform();
    let CrawlRun::Suspended(checkpoint) = crawl_stepwise(&first, &crawl_cfg, None, Some(2)) else {
        panic!("a two-level stop must suspend this crawl");
    };
    let mut bytes = Vec::new();
    checkpoint.write(&mut bytes).expect("checkpoint serializes");
    drop((checkpoint, first));

    // "Process two": parse the checkpoint, regenerate the platform
    // from the same seed, run to completion.
    let restored = CrawlCheckpoint::read(bytes.as_slice()).expect("checkpoint parses");
    let resumed = match crawl_stepwise(&make_platform(), &crawl_cfg, Some(restored), None) {
        CrawlRun::Complete(outcome) => outcome,
        CrawlRun::Suspended(_) => panic!("no stop requested"),
    };

    assert_eq!(resumed.stats, uninterrupted.stats);
    let mut a = Vec::new();
    let mut b = Vec::new();
    tsv::write(&uninterrupted.dataset, &mut a).unwrap();
    tsv::write(&resumed.dataset, &mut b).unwrap();
    assert_eq!(a, b, "resumed dataset must be byte-identical");
}

/// The kill/resume contract extended to the streaming-ingest engine
/// (PR 9): kill the crawl mid-stream, round-trip the checkpoint
/// through bytes, start a FRESH engine in the "new process", catch it
/// up from the checkpoint's dataset as one batch, resume the batched
/// crawl — and end with state byte-identical to an engine that
/// streamed the uninterrupted crawl, and to a cold rebuild.
#[test]
fn killed_and_resumed_ingest_is_byte_identical() {
    use std::fmt::Write as _;
    use tagdist::crawler::{crawl_parallel_stepwise, crawl_parallel_with_batches};
    use tagdist::reconstruct::{EpochSnapshot, IngestEngine};

    let make_platform = || {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(1_200).with_seed(99);
        tagdist::ytsim::Platform::generate(cfg)
    };
    let crawl_cfg = CrawlConfig::default();
    let traffic = make_platform().true_traffic().clone();

    // Exact text rendering: `{:?}` on f64 round-trips every bit.
    let render = |s: &EpochSnapshot| {
        let mut out = String::new();
        writeln!(out, "{}", s.clean.report()).unwrap();
        for (tag, views) in s.table.iter() {
            writeln!(out, "{}\t{views:?}", tag.index()).unwrap();
        }
        out
    };
    let feed = |engine: &mut IngestEngine, resume| {
        let platform = make_platform();
        crawl_parallel_with_batches(&platform, &crawl_cfg, resume, |dataset, from| {
            engine.apply_from(dataset, from).expect("batch applies");
            engine.publish().expect("epoch publishes");
        })
    };

    // The uninterrupted streamed run.
    let mut whole = IngestEngine::new(traffic.clone());
    let outcome = feed(&mut whole, None);
    let reference = render(&whole.cell().load().unwrap());

    // "Process one": stream two levels, checkpoint, die.
    let first = make_platform();
    let CrawlRun::Suspended(checkpoint) =
        crawl_parallel_stepwise(&first, &crawl_cfg, None, Some(2))
    else {
        panic!("a two-level stop must suspend this crawl");
    };
    let mut bytes = Vec::new();
    checkpoint.write(&mut bytes).expect("checkpoint serializes");
    drop((checkpoint, first));

    // "Process two": fresh engine catches up from the checkpoint's
    // dataset as one batch, then the resumed crawl streams the rest.
    let restored = CrawlCheckpoint::read(bytes.as_slice()).expect("checkpoint parses");
    let mut revived = IngestEngine::new(traffic.clone());
    revived.apply(&restored.dataset).expect("catch-up applies");
    revived.publish().expect("catch-up publishes");
    let resumed = feed(&mut revived, Some(restored));

    assert_eq!(resumed.stats, outcome.stats);
    assert_eq!(
        render(&revived.cell().load().unwrap()),
        reference,
        "revived ingest state must be byte-identical"
    );

    // Both equal the cold rebuild of the saved dataset.
    let clean = filter(&outcome.dataset);
    let recon = Reconstruction::compute(&clean, &traffic).unwrap();
    let cold = EpochSnapshot {
        epoch: 0,
        table: TagViewTable::aggregate(&clean, &recon),
        clean,
        recon,
    };
    assert_eq!(render(&cold), reference, "cold rebuild must agree");
}

// ---------------------------------------------------------------------------
// The serve layer: hostile and flaky clients must degrade per
// connection — never poison the worker pool, the snapshot cell, or
// concurrent well-formed connections.
// ---------------------------------------------------------------------------

mod serve_degradation {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use tagdist::dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist::geo::{world, TrafficModel};
    use tagdist::par::Pool;
    use tagdist::reconstruct::{EpochSnapshot, SnapshotCell};
    use tagdist_serve::server::{Server, ServerConfig};

    /// A deterministic corpus whose view counts are offset by `salt`,
    /// so distinct salts produce distinct (but valid) epochs.
    fn snapshot(epoch: u64, salt: u64) -> Arc<EpochSnapshot> {
        let traffic = TrafficModel::reference(world());
        let cc = world().len();
        let mut b = DatasetBuilder::new(cc);
        for i in 0..200usize {
            let raw: Vec<u8> = (0..cc).map(|c| ((i * 7 + c * 5) % 62) as u8).collect();
            let tags: Vec<String> = (0..1 + i % 4)
                .map(|t| format!("t{}", (i + t) % 23))
                .collect();
            let refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video(
                &format!("vid{i}"),
                1_000 + salt + (i * 17) as u64,
                &refs,
                RawPopularity::decode(raw, cc),
            );
        }
        let clean = filter(&b.build());
        Arc::new(EpochSnapshot::rebuild(epoch, clean, traffic.distribution()).unwrap())
    }

    /// A live server over `cell`, with its accept loop on a background
    /// thread. Dropping the guard without `shutdown()` would leak the
    /// thread, so every test ends with `shutdown()`.
    struct Live {
        addr: String,
        cell: Arc<SnapshotCell>,
        stop: Arc<AtomicBool>,
        worker: std::thread::JoinHandle<Result<(), String>>,
    }

    fn boot(cell: Arc<SnapshotCell>, threads: usize) -> Live {
        let traffic = TrafficModel::reference(world());
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&cell),
            traffic,
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let pool = Pool::new(threads);
            server.run(&pool, &flag)
        });
        Live {
            addr,
            cell,
            stop,
            worker,
        }
    }

    impl Live {
        fn shutdown(self) {
            self.stop.store(true, Ordering::SeqCst);
            self.worker.join().unwrap().unwrap();
        }
    }

    /// Writes `bytes` raw and reads the connection to EOF.
    fn raw_exchange(addr: &str, bytes: &[u8]) -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(bytes).unwrap();
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        response
    }

    /// One well-formed request, asserting a 200 with a body.
    fn assert_healthy(addr: &str) {
        let response = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 200 OK\r\n"),
            "server unhealthy: {text:?}"
        );
    }

    #[test]
    fn malformed_request_lines_get_a_4xx_and_do_not_kill_the_server() {
        let cell = Arc::new(SnapshotCell::new());
        cell.store(snapshot(1, 0));
        let live = boot(Arc::clone(&cell), 2);

        for (garbage, want) in [
            (&b"BLARG\r\n\r\n"[..], "HTTP/1.1 400 "),
            (&b"GET\r\n\r\n"[..], "HTTP/1.1 400 "),
            (&b"POST /stats HTTP/1.1\r\n\r\n"[..], "HTTP/1.1 405 "),
            (&b"GET /stats HTTP/0.9\r\n\r\n"[..], "HTTP/1.1 505 "),
            (
                &b"GET /stats HTTP/1.1\r\nno-colon\r\n\r\n"[..],
                "HTTP/1.1 400 ",
            ),
        ] {
            let response = raw_exchange(&live.addr, garbage);
            let text = String::from_utf8_lossy(&response);
            assert!(
                text.starts_with(want),
                "{garbage:?} should answer {want}, got {text:?}"
            );
            assert_healthy(&live.addr);
        }
        live.shutdown();
    }

    #[test]
    fn oversized_heads_are_rejected_per_connection() {
        let cell = Arc::new(SnapshotCell::new());
        cell.store(snapshot(1, 0));
        let live = boot(Arc::clone(&cell), 2);

        // A single header far beyond MAX_REQUEST_BYTES (16 KiB).
        let mut big = b"GET /stats HTTP/1.1\r\nX-Flood: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 64 * 1024));
        big.extend_from_slice(b"\r\n\r\n");
        let response = raw_exchange(&live.addr, &big);
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 431 "),
            "oversized head should answer 431, got {text:?}"
        );
        assert_healthy(&live.addr);
        live.shutdown();
    }

    #[test]
    fn premature_disconnects_leave_the_server_healthy() {
        let cell = Arc::new(SnapshotCell::new());
        cell.store(snapshot(1, 0));
        let live = boot(Arc::clone(&cell), 2);

        // Half a request line, then the client vanishes.
        for _ in 0..8 {
            let stream = TcpStream::connect(&live.addr).unwrap();
            (&stream).write_all(b"GET /sta").unwrap();
            drop(stream);
        }
        // A connection that opens and says nothing at all.
        drop(TcpStream::connect(&live.addr).unwrap());
        assert_healthy(&live.addr);
        live.shutdown();
    }

    #[test]
    fn concurrent_connections_across_an_epoch_flip_stay_consistent() {
        let cell = Arc::new(SnapshotCell::new());
        let first = snapshot(1, 0);
        let second = snapshot(2, 500);
        cell.store(Arc::clone(&first));
        let live = boot(Arc::clone(&cell), 4);

        // The only two answers /stats may ever produce.
        let body_first = tagdist_serve::query::stats_body(&first.clean);
        let body_second = tagdist_serve::query::stats_body(&second.clean);

        let flipped = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let addr = live.addr.as_str();
            let cell = &live.cell;
            let second = &second;
            let flip_flag = Arc::clone(&flipped);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                cell.store(Arc::clone(second));
                flip_flag.store(true, Ordering::SeqCst);
            });
            for _ in 0..4 {
                let body_first = body_first.as_str();
                let body_second = body_second.as_str();
                let flipped = Arc::clone(&flipped);
                scope.spawn(move || {
                    let mut saw_any = 0u32;
                    while !flipped.load(Ordering::SeqCst) || saw_any < 3 {
                        let response =
                            raw_exchange(addr, b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
                        let text = String::from_utf8_lossy(&response);
                        let body = text
                            .split_once("\r\n\r\n")
                            .map(|(_, b)| b.to_owned())
                            .unwrap_or_default();
                        assert!(
                            body == body_first || body == body_second,
                            "a response mixed epochs or tore: {body:?}"
                        );
                        saw_any += 1;
                    }
                });
            }
        });

        // After the flip every new connection pins epoch 2.
        let response = raw_exchange(
            &live.addr,
            b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.ends_with(&body_second),
            "post-flip responses must come from epoch 2"
        );
        let health = raw_exchange(
            &live.addr,
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(
            String::from_utf8_lossy(&health).ends_with("ok epoch 2\n"),
            "healthz must report the flipped epoch"
        );
        live.shutdown();

        // The cell itself survives unpoisoned: a fresh server over the
        // same cell still answers.
        let revived = boot(Arc::clone(&cell), 1);
        assert_healthy(&revived.addr);
        revived.shutdown();
    }
}
