//! Fault-injection matrix: the crawler must absorb transient platform
//! faults without losing determinism, and degrade gracefully when the
//! fault rate exceeds the retry budget.
//!
//! The CI fault-matrix job runs this suite under
//! `TAGDIST_FAULT_PROFILE=off|flaky|hostile`; the env-driven tests
//! pick the profile up through [`FaultProfile::from_env`], so one
//! binary covers all three columns. Every run writes
//! `target/fault-report-<profile>.md` — uploaded as an artifact when
//! the job fails.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl_parallel, CrawlConfig, CrawlStats};
use tagdist::dataset::tsv;
use tagdist::ytsim::{FaultProfile, FlakyPlatform, Platform, WorldConfig};
use tagdist::{markdown_report, ReportOptions, Study, StudyConfig};

fn platform(videos: usize, seed: u64) -> Platform {
    let mut cfg = WorldConfig::tiny();
    cfg.with_videos(videos).with_seed(seed);
    Platform::generate(cfg)
}

fn crawl_with(profile: FaultProfile, p: &Platform, threads: usize) -> (Vec<u8>, CrawlStats) {
    let mut cfg = CrawlConfig::default();
    cfg.with_threads(threads);
    let outcome = if profile.is_enabled() {
        let flaky = FlakyPlatform::new(p, profile);
        crawl_parallel(&flaky, &cfg)
    } else {
        crawl_parallel(p, &cfg)
    };
    let mut bytes = Vec::new();
    tsv::write(&outcome.dataset, &mut bytes).unwrap();
    (bytes, outcome.stats)
}

/// The name the active profile runs under (the CI matrix column).
fn profile_name() -> String {
    std::env::var(tagdist::ytsim::FAULT_PROFILE_ENV).unwrap_or_else(|_| "off".to_owned())
}

/// The matrix entry point: crawl under the env-selected profile at
/// several thread counts; the crawl must never panic, its stats must
/// be identical across thread counts, and the dataset bytes must not
/// depend on the worker count. Always leaves
/// `target/fault-report-<profile>.md` behind for the CI artifact.
#[test]
fn env_profile_crawl_is_deterministic_across_threads() {
    let profile = FaultProfile::from_env().expect("valid TAGDIST_FAULT_PROFILE");
    let p = platform(1_200, 42);

    let (reference_bytes, reference_stats) = crawl_with(profile, &p, 1);

    // Write the failure report before asserting, so a red matrix job
    // still uploads the fault ledger.
    let report_path = format!("target/fault-report-{}.md", profile_name());
    std::fs::create_dir_all("target").ok();
    std::fs::write(&report_path, reference_stats.failure_report_markdown()).unwrap();

    for threads in [2, 8] {
        let (bytes, stats) = crawl_with(profile, &p, threads);
        assert_eq!(
            stats,
            reference_stats,
            "stats drifted at {threads} threads under profile {}",
            profile_name()
        );
        assert_eq!(
            bytes, reference_bytes,
            "dataset bytes drifted at {threads} threads"
        );
    }
    // Graceful degradation: every failed fetch is classified.
    assert_eq!(
        reference_stats.failed_fetches,
        reference_stats.dangling_references + reference_stats.exhausted_retries
    );
    if profile.is_enabled() {
        assert!(
            reference_stats.transient_faults() > 0,
            "an enabled profile must inject faults"
        );
    }
}

/// Faults that resolve within the retry budget are *masked*: the
/// dataset is byte-identical to a fault-free crawl, only the fault
/// ledger differs.
#[test]
fn masked_faults_leave_the_dataset_byte_identical() {
    let p = platform(1_000, 7);
    let (clean_bytes, clean_stats) = crawl_with(FaultProfile::off(), &p, 4);
    // flaky: max 3 faults per key, retry budget 6 — always masked.
    let (flaky_bytes, flaky_stats) = crawl_with(FaultProfile::flaky(), &p, 4);
    assert_eq!(clean_bytes, flaky_bytes);
    assert_eq!(flaky_stats.exhausted_retries, 0);
    assert!(flaky_stats.retries > 0);
    assert_eq!(clean_stats.fetched, flaky_stats.fetched);
    assert_eq!(clean_stats.per_depth, flaky_stats.per_depth);
}

/// The end-to-end acceptance criterion: a full study under a masked
/// fault profile renders a markdown report byte-identical to the
/// fault-free study.
#[test]
fn masked_faults_leave_the_study_report_byte_identical() {
    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(900);
    let clean = Study::run(cfg.clone());
    cfg.fault = FaultProfile::flaky();
    let faulty = Study::run(cfg);
    assert!(faulty.crawl_stats().retries > 0, "faults must be injected");
    let options = ReportOptions::default();
    assert_eq!(
        markdown_report(&clean, &options),
        markdown_report(&faulty, &options),
        "masked faults must not change the report"
    );
}

/// Above the retry budget the crawl degrades deterministically:
/// videos are skipped and counted, never a panic, and repeated runs
/// agree exactly.
#[test]
fn hostile_profile_degrades_deterministically() {
    let p = platform(1_200, 42);
    // hostile injects up to 9 consecutive faults per key; the default
    // retry budget of 6 attempts cannot always mask that.
    let (bytes_a, stats_a) = crawl_with(FaultProfile::hostile(), &p, 4);
    let (bytes_b, stats_b) = crawl_with(FaultProfile::hostile(), &p, 4);
    assert_eq!(stats_a, stats_b, "hostile runs must be reproducible");
    assert_eq!(bytes_a, bytes_b);
    assert!(stats_a.exhausted_retries > 0, "hostile must exceed budget");
    assert!(stats_a.breaker_trips > 0 || stats_a.total_wait_ms() > 0);
    assert_eq!(
        stats_a.failed_fetches,
        stats_a.dangling_references + stats_a.exhausted_retries
    );
}

/// The fault pattern is a pure function of the profile seed.
#[test]
fn fault_draws_are_seeded() {
    let p = platform(800, 5);
    let (_, base) = crawl_with(FaultProfile::flaky(), &p, 2);
    let (_, same) = crawl_with(FaultProfile::flaky(), &p, 2);
    assert_eq!(base, same, "same seed, same faults");

    let mut reseeded = FaultProfile::flaky();
    reseeded.with_seed(0xDEAD_BEEF);
    let (bytes, other) = crawl_with(reseeded, &p, 2);
    assert_ne!(
        (
            other.retries,
            other.transient_faults(),
            other.backoff_wait_ms
        ),
        (base.retries, base.transient_faults(), base.backoff_wait_ms),
        "a different seed must produce a different fault pattern"
    );
    // …but never a different dataset, since flaky faults stay masked.
    let (clean_bytes, _) = crawl_with(FaultProfile::off(), &p, 2);
    assert_eq!(bytes, clean_bytes);
}
