//! Cross-crate integration tests: the whole paper pipeline, checked
//! for the shapes reported in each section of the paper.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::geo::world;
use tagdist::tags::{classify, ClassifyThresholds, Locality};
use tagdist::{Study, StudyConfig};

/// One shared study per test binary keeps the suite fast.
fn shared() -> &'static Study {
    use std::sync::OnceLock;
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::tiny()))
}

#[test]
fn section2_filter_accounting_balances() {
    let s = shared();
    let r = s.filter_report();
    assert_eq!(r.crawled, r.no_tags + r.bad_popularity + r.kept);
    // Paper shape: ~0.6 % tagless, ~65 % kept.
    let tagless = r.no_tags as f64 / r.crawled as f64;
    assert!(tagless < 0.03, "tagless share {tagless}");
    assert!(
        (0.5..0.8).contains(&r.keep_ratio()),
        "keep {}",
        r.keep_ratio()
    );
}

#[test]
fn section2_stats_shape() {
    let s = shared();
    let stats = s.dataset_stats();
    assert_eq!(stats.videos, s.clean().len());
    // Folksonomy long tail: most tags are rare.
    assert!(
        stats.singleton_tag_share > 0.3,
        "{}",
        stats.singleton_tag_share
    );
    // Heavy-tailed views.
    assert!(stats.max_video_views as f64 > 50.0 * stats.median_video_views as f64);
    assert!(stats.top1pct_view_share > 0.1);
}

#[test]
fn fig1_most_viewed_has_a_saturated_map() {
    let s = shared();
    let video = s.fig1_most_viewed();
    assert_eq!(video.popularity.max(), 61, "rescaling saturates the max");
    assert!(!video.popularity.saturated().is_empty());
    // The clean record agrees with platform ground truth.
    let truth = s.platform().ground_truth(video.key).unwrap();
    assert_eq!(truth.total_views, video.total_views);
}

#[test]
fn fig2_fig3_contrast() {
    let s = shared();
    let pop = s.tag_profile("pop").expect("pop profiled");
    let favela = s.tag_profile("favela").expect("favela profiled");
    // Fig. 2: pop follows traffic; Fig. 3: favela is Brazilian.
    assert!(pop.js_from_traffic < 0.1, "pop JS {}", pop.js_from_traffic);
    assert!(
        favela.js_from_traffic > 2.0 * pop.js_from_traffic,
        "favela {} vs pop {}",
        favela.js_from_traffic,
        pop.js_from_traffic
    );
    assert_eq!(favela.top_country, world().by_code("BR").unwrap().id);
    assert!(favela.top_share > 0.4);

    let thresholds = ClassifyThresholds::default();
    assert_eq!(classify(&favela, &thresholds), Locality::Local);
    assert_ne!(classify(&pop, &thresholds), Locality::Local);
}

#[test]
fn eq3_mass_conservation() {
    let s = shared();
    let total_tagged: f64 = s
        .tag_table()
        .iter()
        .map(|(_, v)| tagdist_geo::kernel::sum(v))
        .sum();
    let expected: f64 = s
        .clean()
        .iter()
        .map(|v| v.tags.len() as f64 * v.total_views as f64)
        .sum();
    assert!(
        (total_tagged - expected).abs() / expected < 1e-9,
        "tagged mass {total_tagged} vs expected {expected}"
    );
}

#[test]
fn e5_reconstruction_orders_correctly() {
    let s = shared();
    let recon = s.reconstruction_error();
    let prior = s.prior_error();
    assert!(recon.js.mean < 0.5 * prior.js.mean);
    assert!(recon.top_country_accuracy > 0.8);
    assert!(prior.top_country_accuracy < 0.5);
}

#[test]
fn e6_prediction_sits_between_recon_and_prior() {
    let s = shared();
    let recon = s.reconstruction_error().js.mean;
    let pred = s.prediction_error_vs_truth().js.mean;
    let prior = s.prior_error().js.mean;
    assert!(recon < pred, "recon {recon} < prediction {pred}");
    assert!(pred < prior, "prediction {pred} < prior {prior}");
}

#[test]
fn e7_caching_policies_order_as_expected() {
    use tagdist::cache::{run_static, Placement, RequestStream};
    use tagdist::geo::GeoDist;
    use tagdist::tags::Predictor;

    let s = shared();
    let truth = s.true_distributions();
    let weights = s.view_weights();
    let stream = RequestStream::generate(&truth, &weights, 40_000, 99);
    let countries = world().len();
    let capacity = (s.clean().len() / 50).max(1);

    let predictor = Predictor::new(s.tag_table(), s.traffic());
    let predicted: Vec<GeoDist> = s
        .clean()
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, s.reconstruction().views(pos)))
        .collect();

    let oracle = run_static(
        &Placement::predictive("oracle", countries, capacity, &truth, &weights),
        &stream,
    );
    let tags = run_static(
        &Placement::predictive("tags", countries, capacity, &predicted, &weights),
        &stream,
    );
    let blind = run_static(
        &Placement::geo_blind(countries, capacity, &weights),
        &stream,
    );
    let random = run_static(
        &Placement::random(countries, s.clean().len(), capacity, 5),
        &stream,
    );

    assert!(oracle.hit_rate() >= tags.hit_rate());
    assert!(
        tags.hit_rate() > blind.hit_rate(),
        "tags {} vs blind {}",
        tags.hit_rate(),
        blind.hit_rate()
    );
    assert!(blind.hit_rate() > random.hit_rate());
}

#[test]
fn e7b_diurnal_peak_ordering() {
    use tagdist::cache::{DiurnalModel, PeakReport, Placement, TimedRequestStream};

    let s = shared();
    let truth = s.true_distributions();
    let weights = s.view_weights();
    let stream = TimedRequestStream::generate(
        world(),
        &DiurnalModel::default_2011(),
        &truth,
        &weights,
        30_000,
        77,
    );
    let countries = world().len();
    let capacity = (s.clean().len() / 50).max(1);
    let oracle = PeakReport::analyze(
        &Placement::predictive("oracle", countries, capacity, &truth, &weights),
        &stream,
    );
    let blind = PeakReport::analyze(
        &Placement::geo_blind(countries, capacity, &weights),
        &stream,
    );
    assert!(oracle.peak_origin() < blind.peak_origin());
    assert_eq!(oracle.requests_per_hour.iter().sum::<usize>(), 30_000);
}

#[test]
fn e7c_sized_placement_orders_correctly() {
    use tagdist::cache::{run_static_sized, RequestStream, SizedPlacement};

    let s = shared();
    let truth = s.true_distributions();
    let weights = s.view_weights();
    let sizes: Vec<f64> = s
        .clean()
        .iter()
        .map(|v| s.platform().ground_truth(v.key).unwrap().size_bytes())
        .collect();
    let stream = RequestStream::generate(&truth, &weights, 30_000, 13);
    let budget: f64 = sizes.iter().sum::<f64>() * 0.02;
    let countries = world().len();
    let oracle =
        SizedPlacement::predictive_sized("oracle", countries, budget, &truth, &weights, &sizes);
    let geo_blind = SizedPlacement::greedy("blind", countries, budget, &sizes, |_, v| weights[v]);
    let or = run_static_sized(&oracle, &stream, &sizes);
    let br = run_static_sized(&geo_blind, &stream, &sizes);
    assert!(or.hit_rate() > br.hit_rate());
    assert!(or.byte_hit_rate() > 0.0 && or.byte_hit_rate() <= 1.0);
}

#[test]
fn paper_comparison_api_agrees_with_report() {
    use tagdist::PaperComparison;
    let s = shared();
    let cmp = PaperComparison::compute(s);
    assert!((cmp.measured_keep_ratio - s.filter_report().keep_ratio()).abs() < 1e-12);
    assert!(cmp.ratios_match(0.08), "{cmp}");
}

#[test]
fn crawl_stats_are_consistent_with_dataset() {
    let s = shared();
    let stats = s.crawl_stats();
    assert_eq!(stats.per_depth.iter().sum::<usize>(), stats.fetched);
    assert!(stats.fetched >= s.filter_report().crawled);
    assert_eq!(stats.fetched, s.filter_report().crawled);
    assert!(stats.seeds > 0);
    assert!(stats.max_depth().unwrap_or(0) >= 1);
}

/// Observability must not leak into outputs: a metrics-enabled run
/// produces a Study and a rendered report byte-identical to the
/// uninstrumented path, and the recorded metrics survive a JSON
/// round trip.
#[test]
fn metrics_recording_does_not_change_outputs() {
    use tagdist::obs::{MetricsReport, Recorder};
    use tagdist::{markdown_report, markdown_report_obs, ReportOptions};

    let mut cfg = StudyConfig::tiny();
    cfg.world.with_videos(900);
    let options = ReportOptions::default();

    let plain_study = Study::try_run(cfg.clone()).expect("study runs");
    let plain_report = markdown_report(&plain_study, &options);

    let obs = Recorder::new();
    let obs_study = Study::try_run_with(cfg, &obs).expect("study runs");
    let obs_report = markdown_report_obs(&obs_study, &options, &obs);

    assert_eq!(obs_study.tag_table(), plain_study.tag_table());
    assert_eq!(obs_study.reconstruction(), plain_study.reconstruction());
    assert_eq!(obs_report, plain_report, "metrics leaked into the report");

    let metrics = obs.finish();
    assert!(!metrics.spans.is_empty());
    let round = MetricsReport::from_json(&metrics.to_json()).expect("well-formed JSON");
    assert_eq!(round, metrics);
}
