//! Operational workflow: crawl → save → reload → incremental recrawl.
//!
//! Mirrors how the original dataset was actually used — collected
//! once, serialized, and re-analyzed offline for years — plus the
//! incremental recrawl a maintained deployment would run.
//!
//! ```text
//! cargo run --release --example crawl_and_save [--full] [path.tsv]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use std::fs::File;

use tagdist::crawler::{crawl_parallel, recrawl, CrawlConfig};
use tagdist::dataset::{filter, sample_stratified, tsv, DatasetStats};
use tagdist::ytsim::{Platform, WorldConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let path = std::env::args()
        .skip(1)
        .find(|a| a != "--full")
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join("tagdist-crawl.tsv")
                .to_string_lossy()
                .into_owned()
        });
    let world_cfg = if full {
        WorldConfig::default()
    } else {
        WorldConfig::small()
    };
    let platform = Platform::generate(world_cfg);

    // 1. Partial first crawl (half budget), as if interrupted.
    let mut partial_cfg = CrawlConfig::default();
    partial_cfg.with_budget(platform_budget(&platform) / 2);
    let first = crawl_parallel(&platform, &partial_cfg);
    println!("first crawl:  {}", first.stats);

    // 2. Persist it.
    {
        let mut file = File::create(&path).expect("create output file");
        tsv::write(&first.dataset, &mut file).expect("serialize crawl");
    }
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved {} records to {path} ({bytes} bytes)",
        first.dataset.len()
    );

    // 3. Reload and verify.
    let reloaded = tsv::read(File::open(&path).expect("open")).expect("parse");
    assert_eq!(reloaded.len(), first.dataset.len());
    println!("reloaded {} records", reloaded.len());

    // 4. Incremental recrawl to completion.
    let extended = recrawl(&platform, &CrawlConfig::default(), &reloaded);
    println!(
        "recrawl:      reused {}, fetched {} new → {} total",
        extended.reused,
        extended.newly_fetched,
        extended.dataset.len()
    );

    // 5. Analyze, on a stratified subsample for speed.
    let sample = sample_stratified(&extended.dataset, extended.dataset.len() / 2, 10, 7);
    let clean = filter(&sample);
    println!();
    println!("stratified half-sample analysis:");
    println!("{}", clean.report());
    println!("{}", DatasetStats::compute(&clean));

    std::fs::remove_file(&path).ok();
}

fn platform_budget(platform: &Platform) -> usize {
    use tagdist::ytsim::PlatformApi;
    platform.catalogue_size()
}
