//! E5 — reconstruction quality vs. ground truth, with an
//! Alexa-prior-noise sweep.
//!
//! The paper inverts Eq. 1 through an *estimated* traffic distribution
//! (Alexa, Eq. 2) but has no way to check the result. Our synthetic
//! substrate knows the truth, so this example measures:
//!
//! * how close the reconstruction gets with a perfect prior
//!   (quantization is then the only loss),
//! * how the error grows as the prior is perturbed by ±5/10/20/40 %
//!   relative noise (Alexa's estimate was certainly not exact), and
//! * the traffic-prior baseline (predicting every video by traffic
//!   alone), which any useful reconstruction must beat.
//!
//! ```text
//! cargo run --release --example reconstruction_error [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl_parallel, CrawlConfig};
use tagdist::dataset::filter;
use tagdist::geo::{GeoDist, TrafficModel};
use tagdist::reconstruct::{ErrorReport, Reconstruction};
use tagdist::ytsim::{Platform, WorldConfig};

fn main() {
    let world_cfg = if std::env::args().any(|a| a == "--full") {
        WorldConfig::default()
    } else {
        WorldConfig::small()
    };
    let platform = Platform::generate(world_cfg);
    let outcome = crawl_parallel(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    println!(
        "E5: reconstruction error over {} videos (crawled {})",
        clean.len(),
        outcome.stats.fetched
    );
    println!();

    let truth: Vec<GeoDist> = clean
        .iter()
        .map(|v| {
            platform
                .ground_truth(v.key)
                .expect("crawled videos exist")
                .view_distribution()
        })
        .collect();

    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>11}",
        "estimator", "mean JS", "p90 JS", "mean TV", "top-1 acc"
    );

    let true_traffic = TrafficModel::from_distribution(platform.true_traffic().clone());
    for noise in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let traffic = true_traffic.perturbed(noise, 7);
        let recon = Reconstruction::compute(&clean, traffic.distribution())
            .expect("filtered dataset reconstructs");
        let estimate: Vec<GeoDist> = (0..clean.len())
            .map(|pos| recon.distribution(pos).expect("rows carry mass"))
            .collect();
        let report = ErrorReport::compare(&truth, &estimate).expect("aligned");
        println!(
            "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>10.1}%",
            format!("recon, prior ±{:.0}%", 100.0 * noise),
            report.js.mean,
            report.js.p90,
            report.total_variation.mean,
            100.0 * report.top_country_accuracy
        );
    }

    // Baseline: ignore the popularity map entirely.
    let baseline: Vec<GeoDist> = vec![platform.true_traffic().clone(); truth.len()];
    let report = ErrorReport::compare(&truth, &baseline).expect("aligned");
    println!(
        "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>10.1}%",
        "traffic prior alone",
        report.js.mean,
        report.js.p90,
        report.total_variation.mean,
        100.0 * report.top_country_accuracy
    );
    println!();
    println!("expected shape: error grows with prior noise; every recon row");
    println!("beats the prior-alone baseline (the map carries real signal).");
}
