//! E6 extension — cold start: predicting the geography of *new*
//! uploads.
//!
//! The paper's deployment scenario is a video that has just been
//! uploaded: no views, no popularity map — only tags. This example
//! builds the tag knowledge base from a crawl of today's platform,
//! lets the platform grow (same world seed, more videos — the
//! generator is append-only), and predicts each new upload's view
//! distribution from its tags alone. Baselines:
//!
//! * the world traffic prior (geo-blind), and
//! * a point mass on the uploader's country (the metadata a UGC
//!   service always has).
//!
//! ```text
//! cargo run --release --example cold_start [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl_parallel, CrawlConfig};
use tagdist::dataset::filter;
use tagdist::geo::{world, GeoDist};
use tagdist::reconstruct::{ErrorReport, Reconstruction, TagViewTable};
use tagdist::tags::Predictor;
use tagdist::ytsim::{Platform, WorldConfig};

fn main() {
    let (base_videos, new_videos) = if std::env::args().any(|a| a == "--full") {
        (120_000usize, 12_000usize)
    } else {
        (20_000usize, 2_000usize)
    };

    // Today's platform and its crawl-derived knowledge base.
    let mut today_cfg = WorldConfig::default();
    today_cfg.with_videos(base_videos);
    let today = Platform::generate(today_cfg.clone());
    let outcome = crawl_parallel(&today, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    let traffic = today.true_traffic().clone();
    let recon = Reconstruction::compute(&clean, &traffic).expect("reconstructs");
    let table = TagViewTable::aggregate(&clean, &recon);
    let predictor = Predictor::new(&table, &traffic);

    // Tomorrow's platform: same world, `new_videos` fresh uploads.
    let mut tomorrow_cfg = today_cfg;
    tomorrow_cfg.with_videos(base_videos + new_videos);
    let tomorrow = Platform::generate(tomorrow_cfg);

    println!(
        "cold start: knowledge base from {} crawled videos; {} new uploads",
        clean.len(),
        new_videos
    );

    let mut truth = Vec::with_capacity(new_videos);
    let mut by_tags = Vec::with_capacity(new_videos);
    let mut by_upload_country = Vec::with_capacity(new_videos);
    let mut by_prior = Vec::with_capacity(new_videos);
    let mut known_tag_hits = 0usize;
    for i in base_videos..base_videos + new_videos {
        let video = tomorrow.video(i);
        truth.push(video.view_distribution());

        // Tags as the uploader typed them; only those already seen by
        // the crawl carry signal.
        let tag_ids: Vec<_> = video
            .tags
            .iter()
            .filter_map(|t| clean.tags().id(t))
            .collect();
        if !tag_ids.is_empty() {
            known_tag_hits += 1;
        }
        by_tags.push(predictor.predict(&tag_ids, None));
        by_upload_country.push(GeoDist::point_mass(world().len(), video.upload_country));
        by_prior.push(traffic.clone());
    }

    println!(
        "new uploads with at least one known tag: {:.1}%",
        100.0 * known_tag_hits as f64 / new_videos as f64
    );
    println!();
    println!(
        "{:<26} {:>9} {:>9} {:>11}",
        "predictor", "mean JS", "mean TV", "top-1 acc"
    );
    for (name, estimate) in [
        ("tags (paper's proposal)", &by_tags),
        ("uploader country", &by_upload_country),
        ("traffic prior", &by_prior),
    ] {
        let report = ErrorReport::compare(&truth, estimate).expect("aligned");
        println!(
            "{name:<26} {:>9.4} {:>9.4} {:>10.1}%",
            report.js.mean,
            report.total_variation.mean,
            100.0 * report.top_country_accuracy
        );
    }
    println!();
    println!("expected shape: tags beat both baselines on whole-distribution error");
    println!("(mean JS/TV) — semantic markers generalize to unseen videos. The");
    println!("uploader-country point mass wins top-1 accuracy but is useless for");
    println!("placing the other ~75% of a video's views; a production predictor");
    println!("would mix both signals.");
}
