//! E7 — proactive geographic caching from tags: the paper's
//! future-work application, simulated.
//!
//! Per-country edge caches are filled ahead of time from predicted
//! view distributions and replayed against a request stream drawn from
//! the *true* distributions. Policies compared at each capacity:
//!
//! * `oracle`        — placement from ground-truth distributions (upper bound),
//! * `tag-proactive` — placement from leave-one-out tag predictions (the paper's proposal),
//! * `geo-blind`     — same globally-popular videos everywhere,
//! * `random`        — seeded random placement (lower bound),
//! * `lru` / `lfu` / `slru` — reactive per-country caches (deployed practice),
//! * `hybrid`        — half the budget pinned by tags, half LRU.
//!
//! ```text
//! cargo run --release --example proactive_caching [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::cache::{
    run_hybrid, run_reactive, run_static, LfuCache, LruCache, Placement, RequestStream, SlruCache,
};
use tagdist::geo::GeoDist;
use tagdist::tags::Predictor;
use tagdist::{Study, StudyConfig};

fn main() {
    let (config, requests) = if std::env::args().any(|a| a == "--full") {
        (StudyConfig::default(), 400_000usize)
    } else {
        (StudyConfig::small(), 150_000usize)
    };
    let study = Study::run(config);
    let clean = study.clean();
    let countries = study.world().len();

    // Demand: the true distributions; weights: view counts.
    let truth = study.true_distributions();
    let weights = study.view_weights();
    let stream = RequestStream::generate(&truth, &weights, requests, 2014);

    // Tag predictions (leave-one-out, as a deployment would see them).
    let predictor = Predictor::new(study.tag_table(), study.traffic());
    let predicted: Vec<GeoDist> = clean
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, study.reconstruction().views(pos)))
        .collect();

    println!(
        "E7: proactive geographic caching — {} videos, {} countries, {} requests",
        clean.len(),
        countries,
        stream.len()
    );
    println!();

    let catalogue = clean.len();
    for capacity_pct in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let capacity = ((catalogue as f64) * capacity_pct / 100.0).ceil() as usize;
        println!("-- per-country capacity: {capacity} videos ({capacity_pct}% of catalogue) --");
        let oracle = Placement::predictive("oracle", countries, capacity, &truth, &weights);
        let tags =
            Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights);
        let blind = Placement::geo_blind(countries, capacity, &weights);
        let random = Placement::random(countries, catalogue, capacity, 99);
        for placement in [&oracle, &tags, &blind, &random] {
            println!("  {}", run_static(placement, &stream));
        }
        println!(
            "  {}",
            run_reactive(|| LruCache::new(capacity), capacity, &stream)
        );
        println!(
            "  {}",
            run_reactive(|| LfuCache::new(capacity), capacity, &stream)
        );
        println!(
            "  {}",
            run_reactive(|| SlruCache::new(capacity), capacity, &stream)
        );
        let pinned_half =
            Placement::predictive("tags", countries, capacity / 2, &predicted, &weights);
        println!(
            "  {}",
            run_hybrid(&pinned_half, capacity - capacity / 2, &stream)
        );
        println!();
    }

    println!("expected shape: oracle ≥ tag-proactive > geo-blind ≥ random at every");
    println!("capacity; the tag/geo-blind gap is the value of geographic tag knowledge.");
}
