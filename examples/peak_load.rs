//! E7 extension — peak-hour origin load under diurnal demand.
//!
//! The paper's opening motivation cites ISP measurements of YouTube
//! caching *during peak periods* [5]: operators provision for the
//! evening peak, not the mean. This example replays a diurnal request
//! stream (each country active in its local evening) and compares the
//! **peak** origin load each placement leaves behind.
//!
//! ```text
//! cargo run --release --example peak_load [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::cache::{DiurnalModel, PeakReport, Placement, TimedRequestStream};
use tagdist::geo::GeoDist;
use tagdist::tags::Predictor;
use tagdist::{Study, StudyConfig};

fn main() {
    let (config, requests) = if std::env::args().any(|a| a == "--full") {
        (StudyConfig::default(), 500_000usize)
    } else {
        (StudyConfig::small(), 200_000usize)
    };
    let study = Study::run(config);
    let world = study.world();
    let truth = study.true_distributions();
    let weights = study.view_weights();
    let model = DiurnalModel::default_2011();
    let stream = TimedRequestStream::generate(world, &model, &truth, &weights, requests, 31);

    let predictor = Predictor::new(study.tag_table(), study.traffic());
    let predicted: Vec<GeoDist> = study
        .clean()
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, study.reconstruction().views(pos)))
        .collect();

    let catalogue = truth.len();
    let capacity = catalogue / 50; // 2 %
    let countries = world.len();

    println!(
        "diurnal demand: {} requests over 24 h, capacity {} videos/country",
        stream.len(),
        capacity
    );
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}",
        "placement", "origin total", "origin peak", "peak hour", "peak/mean"
    );
    let mut reports = Vec::new();
    for placement in [
        Placement::predictive("oracle", countries, capacity, &truth, &weights),
        Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights),
        Placement::geo_blind(countries, capacity, &weights),
    ] {
        let report = PeakReport::analyze(&placement, &stream);
        println!(
            "{:<16} {:>12} {:>12} {:>9}h {:>10.2}",
            report.policy,
            report.origin_per_hour.iter().sum::<usize>(),
            report.peak_origin(),
            report.peak_hour(),
            report.peak_to_mean()
        );
        reports.push(report);
    }
    println!();

    println!("origin load by UTC hour (o = geo-blind, # = tag-proactive):");
    let blind = &reports[2];
    let tags = &reports[1];
    let max = blind.peak_origin().max(1);
    for h in 0..24 {
        let b = blind.origin_per_hour[h] * 50 / max;
        let t = tags.origin_per_hour[h] * 50 / max;
        let mut bar = String::new();
        for i in 0..50 {
            bar.push(if i < t {
                '#'
            } else if i < b {
                'o'
            } else {
                ' '
            });
        }
        println!("{h:>2}h |{bar}|");
    }
    println!();
    println!(
        "peak origin relief vs geo-blind: {:.1}% (tag-proactive), {:.1}% (oracle)",
        100.0 * (1.0 - reports[1].peak_origin() as f64 / blind.peak_origin() as f64),
        100.0 * (1.0 - reports[0].peak_origin() as f64 / blind.peak_origin() as f64),
    );
}
