//! E3 & E4 — Figs. 2–3: geographic distributions of a global tag
//! (`pop`) and a local tag (`favela`).
//!
//! The paper observes that `views(t)` for `pop` "tends to follow the
//! world distribution of Youtube users" while `favela` videos "are
//! mostly viewed in Brazil". This example renders both distributions,
//! the traffic reference, and the quantitative gap (JS divergence,
//! top-country share) — then classifies the whole profiled vocabulary.
//!
//! ```text
//! cargo run --release --example tag_maps [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::geo::{world, GeoDist};
use tagdist::tags::{classify, ClassifyThresholds, LocalitySummary, TagClusters};
use tagdist::{render_distribution, Study, StudyConfig};

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);
    let thresholds = ClassifyThresholds::default();

    println!("world YouTube-traffic distribution (Eq. 2 prior, top 10):");
    print!("{}", render_distribution(study.traffic(), 10));
    println!();

    for (figure, name, expectation) in [
        ("Fig. 2 (E3)", "pop", "follows the traffic distribution"),
        ("Fig. 3 (E4)", "favela", "mostly viewed in Brazil"),
    ] {
        let Some(profile) = study.tag_profile(name) else {
            println!("{figure}: tag {name:?} did not survive filtering");
            continue;
        };
        println!("== {figure}: tag '{name}' — expected: {expectation} ==");
        println!(
            "videos: {}, aggregated views: {:.0}",
            profile.video_count, profile.total_views
        );
        print!("{}", render_distribution(&profile.dist, 10));
        println!(
            "top country:        {} ({:.1}% of views)",
            world().country(profile.top_country).code,
            100.0 * profile.top_share
        );
        println!("normalized entropy: {:.3}", profile.normalized_entropy);
        println!("gini:               {:.3}", profile.gini);
        println!("JS from traffic:    {:.4} bits", profile.js_from_traffic);
        println!("classification:     {}", classify(&profile, &thresholds));
        println!();
    }

    let pop = study.tag_profile("pop");
    let favela = study.tag_profile("favela");
    if let (Some(pop), Some(favela)) = (pop, favela) {
        println!(
            "contrast: JS(favela‖traffic) / JS(pop‖traffic) = {:.1}x",
            favela.js_from_traffic / pop.js_from_traffic.max(1e-9)
        );
        println!();
    }

    println!("== locality census over all profiled tags ==");
    let profiles = study.tag_profiles();
    let summary = LocalitySummary::compute(&profiles, &thresholds);
    println!("{summary}");
    println!();

    println!("most local high-traffic tags:");
    let mut by_share = profiles.clone();
    by_share.sort_by(|a, b| b.top_share.partial_cmp(&a.top_share).unwrap());
    for p in by_share.iter().take(8) {
        println!(
            "  {:<20} top {} ({:>5.1}%), {:>7.0} views",
            p.name,
            world().country(p.top_country).code,
            100.0 * p.top_share,
            p.total_views
        );
    }
    println!();
    println!("== recovered topic clusters (co-occurrence, top 6 by size) ==");
    let clusters = TagClusters::build(study.clean(), 25, 15, 0.25);
    for (ci, members) in clusters.iter().enumerate().take(6) {
        let mut pooled = tagdist::geo::CountryVec::zeros(world().len());
        for &tag in members {
            if let Some(views) = study.tag_table().views(tag) {
                tagdist::geo::kernel::add_assign(pooled.as_mut_slice(), views);
            }
        }
        let names: Vec<&str> = members
            .iter()
            .take(4)
            .map(|&t| study.clean().tags().name(t))
            .collect();
        match GeoDist::from_counts(&pooled) {
            Ok(dist) => {
                let top = dist.top_country().expect("pooled mass");
                println!(
                    "  cluster {ci}: {} tags [{}...], top {} ({:.0}%)",
                    members.len(),
                    names.join(", "),
                    world().country(top).code,
                    100.0 * dist.top_share()
                );
            }
            Err(_) => println!("  cluster {ci}: {} tags (no retained views)", members.len()),
        }
    }
    println!();
    println!("most global high-traffic tags:");
    let mut by_js = profiles;
    by_js.sort_by(|a, b| a.js_from_traffic.partial_cmp(&b.js_from_traffic).unwrap());
    for p in by_js.iter().take(8) {
        println!(
            "  {:<20} JS {:.4}, {:>9.0} views",
            p.name, p.js_from_traffic, p.total_views
        );
    }
}
