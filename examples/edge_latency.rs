//! E7 extension — user-visible latency under a cooperative edge CDN,
//! and the hybrid (pinned + LRU) deployment variant.
//!
//! Hit rate is the operator's metric; RTT is the user's. This example
//! replays the same request stream under the cooperative-CDN latency
//! model (local edge → nearest caching edge → origin) for each
//! placement, then compares pure-proactive, pure-reactive and hybrid
//! caches at equal total capacity.
//!
//! ```text
//! cargo run --release --example edge_latency [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::cache::{
    run_hybrid, run_reactive, run_static, run_tiered, run_with_latency, LruCache, Placement,
    RequestStream,
};
use tagdist::geo::{GeoDist, LatencyModel};
use tagdist::tags::Predictor;
use tagdist::{Study, StudyConfig};

fn main() {
    let (config, requests) = if std::env::args().any(|a| a == "--full") {
        (StudyConfig::default(), 300_000usize)
    } else {
        (StudyConfig::small(), 120_000usize)
    };
    let study = Study::run(config);
    let world = study.world();
    let truth = study.true_distributions();
    let weights = study.view_weights();
    let stream = RequestStream::generate(&truth, &weights, requests, 17);
    let latency = LatencyModel::default_2011();
    let origin = world.by_code("US").expect("origin hosted in the US").id;

    let predictor = Predictor::new(study.tag_table(), study.traffic());
    let predicted: Vec<GeoDist> = study
        .clean()
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, study.reconstruction().views(pos)))
        .collect();

    let catalogue = truth.len();
    let capacity = catalogue / 50; // 2 % of the catalogue per country
    let countries = world.len();

    println!(
        "cooperative-CDN latency, {} requests, capacity {} videos/country, origin US",
        stream.len(),
        capacity
    );
    println!();
    for placement in [
        Placement::predictive("oracle", countries, capacity, &truth, &weights),
        Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights),
        Placement::geo_blind(countries, capacity, &weights),
        Placement::random(countries, catalogue, capacity, 3),
    ] {
        let report = run_with_latency(world, &latency, &placement, &stream, origin);
        println!("{report}");
    }
    println!();

    println!("hybrid ablation at equal total capacity ({capacity} videos/country):");
    let half = capacity / 2;
    let pinned_half = Placement::predictive("tag-proactive", countries, half, &predicted, &weights);
    let full_pin =
        Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights);
    let rows = [
        run_static(&full_pin, &stream),
        run_hybrid(&pinned_half, capacity - half, &stream),
        run_reactive(|| LruCache::new(capacity), capacity, &stream),
    ];
    for report in &rows {
        println!("  {report}");
    }
    println!();
    println!("two-tier hierarchy (static edges + one LRU parent per region,");
    println!("parent capacity = 4x edge):");
    for placement in [
        Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights),
        Placement::geo_blind(countries, capacity, &weights),
    ] {
        let report = run_tiered(world, &placement, capacity * 4, &stream);
        println!("  {report}");
    }
    println!();
    println!("expected shape: proactive placements cut mean RTT via local+regional");
    println!("hits; the hybrid recovers reactive wins on the unpredicted tail; the");
    println!("regional parents absorb most of what the edges miss either way.");
}
