//! Generates a complete markdown study report (all experiments) and
//! writes it next to the repository's EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example full_report [--full] [output.md]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::{markdown_report, ReportOptions, Study, StudyConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let path = std::env::args()
        .skip(1)
        .find(|a| a != "--full")
        .unwrap_or_else(|| "study_report.md".to_owned());
    let config = if full {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);

    let options = ReportOptions {
        with_caching: true,
        capacities: vec![0.01, 0.02, 0.05, 0.10],
        requests: if full { 200_000 } else { 80_000 },
        ..ReportOptions::default()
    };

    let report = markdown_report(&study, &options);
    std::fs::write(&path, &report).expect("write report file");
    println!("wrote {} bytes to {path}", report.len());
    println!();
    // Also echo the headline sections for immediate reading.
    for line in report.lines().take(40) {
        println!("{line}");
    }
}
