//! §1 — the regional traffic split the paper's introduction cites.
//!
//! > “in 2013 for instance, Youtube accounted for 18.69 % of overall
//! > network traffic in North America, 28.73 % in Europe, and up to
//! > 31.22 % in Asia [Sandvine].”
//!
//! The Sandvine figures are *YouTube's share of each region's
//! traffic*; what our model controls is the *regional split of
//! YouTube's own views*. The comparable shape is the ranking and
//! rough ratio of regions. This example prints the synthetic
//! platform's regional view split (ground truth, reconstruction, and
//! the Alexa-substitute prior) against that backdrop.
//!
//! ```text
//! cargo run --release --example regional_traffic [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::geo::{world, GeoDist, Region};
use tagdist::{Study, StudyConfig};

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);

    let true_traffic = study.platform().true_traffic();
    let implied = study.reconstruction().implied_traffic();
    let implied = GeoDist::from_counts(&implied).expect("reconstruction carries mass");
    let prior = study.traffic();

    println!("regional split of platform views (§1 backdrop)");
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "region", "ground truth", "reconstructed", "prior"
    );
    let truth_shares = true_traffic.regional_shares(world());
    let implied_shares = implied.regional_shares(world());
    let prior_shares = prior.regional_shares(world());
    for ((region, t), ((_, i), (_, p))) in truth_shares
        .iter()
        .zip(implied_shares.iter().zip(prior_shares.iter()))
    {
        println!(
            "{:<16} {:>11.1}% {:>11.1}% {:>11.1}%",
            region.to_string(),
            100.0 * t,
            100.0 * i,
            100.0 * p
        );
    }
    println!();

    // The §1 shape: Asia ≳ Europe > North America among the big three.
    let share_of = |r: Region| {
        truth_shares
            .iter()
            .find(|&&(region, _)| region == r)
            .map(|&(_, s)| s)
            .unwrap_or(0.0)
    };
    println!(
        "big-three ordering (paper: Asia 31.2% > Europe 28.7% > NA 18.7% of regional traffic):"
    );
    println!(
        "  ours: Europe {:.1}%, Asia {:.1}%, North America {:.1}%",
        100.0 * share_of(Region::Europe),
        100.0 * share_of(Region::Asia),
        100.0 * share_of(Region::NorthAmerica),
    );
    println!();
    println!("notes: (1) Sandvine measures YouTube's share of each region's ISP");
    println!("traffic, not the regional split of YouTube views, so only the shape");
    println!("is comparable; (2) the synthetic world over-weights South America");
    println!("because the built-in 'favela' exemplar topic (Fig. 3's subject)");
    println!("occupies a top popularity rank — the cost of guaranteeing that both");
    println!("of the paper's figure tags exist in every generated world.");
}
