//! E6 — the paper's conjecture, tested: do tags predict where a video
//! is viewed?
//!
//! For every retained video we predict its geographic view
//! distribution from its tags alone (leave-one-out mixture of the
//! tags' Eq. 3 aggregates) and compare against (a) the video's
//! reconstructed distribution — the paper's observable — and (b) the
//! generator's ground truth. Baseline: the traffic prior.
//!
//! ```text
//! cargo run --release --example tag_prediction [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::{Study, StudyConfig};

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);

    println!(
        "E6: tag-based prediction over {} videos",
        study.clean().len()
    );
    println!();

    println!("== scored against the reconstructed distributions (paper's observable) ==");
    let eval = study.prediction_evaluation();
    println!("{eval}");
    println!();

    println!("== by locality class of the dominant tag ==");
    print!("{}", study.prediction_by_locality());
    println!();

    println!("== scored against ground truth (synthetic substrate only) ==");
    let vs_truth = study.prediction_error_vs_truth();
    println!("tag prediction vs truth:\n{vs_truth}");
    println!();
    let prior = study.prior_error();
    println!("traffic prior vs truth:\n{prior}");
    println!();
    let recon = study.reconstruction_error();
    println!("reconstruction vs truth (upper reference):\n{recon}");
    println!();

    println!("expected shape:");
    println!("  JS(recon)  <  JS(tag prediction)  <  JS(prior)");
    println!(
        "  measured:   {:.4}  <  {:.4}  <  {:.4}   → {}",
        recon.js.mean,
        vs_truth.js.mean,
        prior.js.mean,
        if recon.js.mean < vs_truth.js.mean && vs_truth.js.mean < prior.js.mean {
            "holds"
        } else {
            "VIOLATED"
        }
    );
}
