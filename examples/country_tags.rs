//! E3/E4 inverse view — what is watched *where*: per-country tag
//! signatures from the inverted geographic index.
//!
//! For a sample of countries, prints the most-viewed tags (dominated
//! by global head tags, like any chart) and the highest-*lift* tags —
//! those over-represented relative to the country's traffic share,
//! i.e. its `favela`-style signatures. This is the query a cache
//! warmup job would run per site.
//!
//! ```text
//! cargo run --release --example country_tags [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::tags::GeoTagIndex;
use tagdist::{Study, StudyConfig};

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);
    let names = study.clean().tags();

    // Lift over tags with enough evidence to be trustworthy.
    let min_views = 50_000.0;
    let index = GeoTagIndex::build(study.tag_table(), study.traffic(), 6, min_views, 5);

    println!(
        "per-country tag signatures ({} tags; lift needs ≥ {:.0} views and ≥ 5 videos)",
        study.tag_table().populated_tags(),
        min_views
    );
    println!();
    for code in ["BR", "JP", "FR", "IN", "US", "RU"] {
        let country = study
            .world()
            .by_code(code)
            .expect("sample countries are registered");
        println!(
            "== {} ({}) — traffic share {:.1}% ==",
            country.name,
            code,
            100.0 * study.traffic().prob(country.id)
        );
        println!("  most viewed:");
        for s in index.top_by_views(country.id).iter().take(4) {
            println!("    {:<22} {:>14.0} views", names.name(s.tag), s.views);
        }
        println!("  highest lift (signature tags):");
        for s in index.top_by_lift(country.id).iter().take(4) {
            println!(
                "    {:<22} lift {:>6.1}x  ({:.0} views here)",
                names.name(s.tag),
                s.lift,
                s.views
            );
        }
        println!();
    }
    println!("expected shape: 'most viewed' lists are near-identical global head");
    println!("tags; 'highest lift' lists are country-specific topic tags.");
}
