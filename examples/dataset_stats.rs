//! E1 — the §2 dataset-statistics block, paper vs. reproduction.
//!
//! The paper reports: 1,063,844 crawled videos; 6,736 dropped for
//! missing tags; 691,349 kept after also dropping incorrect/empty
//! popularity vectors; 705,415 unique tags; 173,288,616,473 views.
//! Absolute counts scale with the synthetic world size; the *ratios*
//! are the reproduction target.
//!
//! ```text
//! cargo run --release --example dataset_stats [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::dataset::DatasetStats;
use tagdist::{Study, StudyConfig};

/// The paper's §2 constants.
const PAPER_CRAWLED: f64 = 1_063_844.0;
const PAPER_NO_TAGS: f64 = 6_736.0;
const PAPER_KEPT: f64 = 691_349.0;
const PAPER_UNIQUE_TAGS: f64 = 705_415.0;
const PAPER_TOTAL_VIEWS: f64 = 173_288_616_473.0;

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);
    let report = study.filter_report();
    let stats = study.dataset_stats();

    println!("E1: §2 dataset statistics — paper vs. reproduction");
    println!();
    println!(
        "{:<28} {:>16} {:>16} {:>10} {:>10}",
        "quantity", "paper", "ours", "paper %", "ours %"
    );
    let rows: Vec<(&str, f64, f64, f64, f64)> = vec![
        (
            "crawled videos",
            PAPER_CRAWLED,
            report.crawled as f64,
            100.0,
            100.0,
        ),
        (
            "dropped: no tags",
            PAPER_NO_TAGS,
            report.no_tags as f64,
            100.0 * PAPER_NO_TAGS / PAPER_CRAWLED,
            100.0 * report.no_tags as f64 / report.crawled as f64,
        ),
        (
            "dropped: bad popularity",
            PAPER_CRAWLED - PAPER_NO_TAGS - PAPER_KEPT,
            report.bad_popularity as f64,
            100.0 * (PAPER_CRAWLED - PAPER_NO_TAGS - PAPER_KEPT) / PAPER_CRAWLED,
            100.0 * report.bad_popularity as f64 / report.crawled as f64,
        ),
        (
            "kept (working set)",
            PAPER_KEPT,
            report.kept as f64,
            100.0 * PAPER_KEPT / PAPER_CRAWLED,
            100.0 * report.keep_ratio(),
        ),
    ];
    for (name, paper, ours, paper_pct, ours_pct) in rows {
        println!("{name:<28} {paper:>16.0} {ours:>16.0} {paper_pct:>9.2}% {ours_pct:>9.2}%");
    }
    println!();
    println!(
        "{:<28} {:>16.0} {:>16}",
        "unique tags", PAPER_UNIQUE_TAGS, stats.unique_tags
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "tags per kept video",
        format!("{:.2}", PAPER_UNIQUE_TAGS / PAPER_KEPT),
        format!("{:.2}", stats.unique_tags as f64 / report.kept as f64),
    );
    println!(
        "{:<28} {:>16.3e} {:>16.3e}",
        "total views", PAPER_TOTAL_VIEWS, stats.total_views as f64
    );
    println!(
        "{:<28} {:>16.0} {:>16.0}",
        "mean views per video",
        PAPER_TOTAL_VIEWS / PAPER_KEPT,
        stats.total_views as f64 / report.kept as f64
    );
    println!();
    println!("corpus shape diagnostics (ours):");
    println!("  mean tags/video:     {:.2}", stats.mean_tags_per_video);
    println!(
        "  singleton tag share: {:.1}%",
        100.0 * stats.singleton_tag_share
    );
    println!(
        "  top-1% view share:   {:.1}%",
        100.0 * stats.top1pct_view_share
    );
    println!("  max video views:     {}", stats.max_video_views);
    println!("  median video views:  {}", stats.median_video_views);
    println!();
    println!("tag rank-frequency (log-spaced; straight-ish on log-log = Zipf):");
    for (rank, videos) in DatasetStats::tag_rank_frequency(study.clean(), 9) {
        println!("  rank {rank:>8}: {videos:>7} videos");
    }
}
