//! E7 extension — byte-budget caching with heterogeneous video sizes.
//!
//! Edge caches are provisioned in bytes, and video sizes span two
//! orders of magnitude. This example compares, under an equal byte
//! budget per country:
//!
//! * size-aware tag-predictive placement (knapsack-greedy by
//!   predicted-local-views per byte),
//! * size-blind tag-predictive placement (top-K by score, as in the
//!   unit-size experiments, then translated to bytes), and
//! * geo-blind placement,
//!
//! reporting both request hit rate and byte hit rate.
//!
//! ```text
//! cargo run --release --example byte_budget [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::cache::{run_static_sized, RequestStream, SizedPlacement};
use tagdist::geo::GeoDist;
use tagdist::tags::Predictor;
use tagdist::{Study, StudyConfig};

fn main() {
    let (config, requests) = if std::env::args().any(|a| a == "--full") {
        (StudyConfig::default(), 300_000usize)
    } else {
        (StudyConfig::small(), 120_000usize)
    };
    let study = Study::run(config);
    let truth = study.true_distributions();
    let weights = study.view_weights();
    let stream = RequestStream::generate(&truth, &weights, requests, 23);

    // Sizes from the platform's ground truth (duration × bitrate).
    let sizes: Vec<f64> = study
        .clean()
        .iter()
        .map(|v| {
            study
                .platform()
                .ground_truth(v.key)
                .expect("crawled videos exist")
                .size_bytes()
        })
        .collect();
    let total_bytes: f64 = sizes.iter().sum();
    let mean_size = total_bytes / sizes.len() as f64;

    let predictor = Predictor::new(study.tag_table(), study.traffic());
    let predicted: Vec<GeoDist> = study
        .clean()
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, study.reconstruction().views(pos)))
        .collect();

    let countries = study.world().len();
    println!(
        "byte-budget caching: {} videos, {:.1} GiB catalogue, mean size {:.1} MiB",
        sizes.len(),
        total_bytes / (1u64 << 30) as f64,
        mean_size / (1u64 << 20) as f64
    );
    println!();
    println!("{:<24} {:>10} {:>10}", "placement", "req hits", "byte hits");
    for budget_pct in [0.5, 1.0, 2.0, 5.0] {
        let budget = total_bytes * budget_pct / 100.0;
        println!("-- budget {budget_pct}% of catalogue bytes per country --");
        let density = SizedPlacement::predictive_sized(
            "tags/size-aware",
            countries,
            budget,
            &predicted,
            &weights,
            &sizes,
        );
        // Size-blind: rank purely by predicted local views (density ×
        // size), i.e. the unit-size policy's ordering.
        let blind_to_size =
            SizedPlacement::greedy("tags/size-blind", countries, budget, &sizes, |c, v| {
                predicted[v].prob(c) * weights[v] * sizes[v]
            });
        let geo_blind =
            SizedPlacement::greedy("geo-blind/size-aware", countries, budget, &sizes, |_, v| {
                weights[v]
            });
        for placement in [&density, &blind_to_size, &geo_blind] {
            let report = run_static_sized(placement, &stream, &sizes);
            println!(
                "{:<24} {:>9.1}% {:>9.1}%",
                report.policy,
                100.0 * report.hit_rate(),
                100.0 * report.byte_hit_rate()
            );
        }
        println!();
    }
    println!("expected shape: size-aware tag placement wins request hit rate at");
    println!("every budget; size-blind placement trades some of it for byte hits.");
}
