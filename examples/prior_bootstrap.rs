//! E5c — bootstrapping the Alexa prior from the charts themselves.
//!
//! Eq. 2 exists because `ytube[c]` is unobservable and the paper had
//! to import an Alexa estimate. But the reconstruction *implies* a
//! traffic distribution (the sum of its outputs), and iterating
//! reconstruct → re-estimate converges to a fixed point. This example
//! starts from priors of varying quality — including the maximally
//! ignorant uniform — and shows how close the fixed point lands to the
//! platform's true traffic: the pipeline could have synthesized its
//! own Alexa — and how the quantization bias limits that claim.
//!
//! ```text
//! cargo run --release --example prior_bootstrap [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::crawler::{crawl_parallel, CrawlConfig};
use tagdist::dataset::filter;
use tagdist::geo::{GeoDist, TrafficModel};
use tagdist::reconstruct::{refine_prior, ErrorReport, Reconstruction};
use tagdist::ytsim::{Platform, WorldConfig};

fn main() {
    let world_cfg = if std::env::args().any(|a| a == "--full") {
        WorldConfig::default()
    } else {
        WorldConfig::small()
    };
    let platform = Platform::generate(world_cfg);
    let outcome = crawl_parallel(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    let true_traffic = platform.true_traffic();

    let truth_dists: Vec<GeoDist> = clean
        .iter()
        .map(|v| {
            platform
                .ground_truth(v.key)
                .expect("crawled videos exist")
                .view_distribution()
        })
        .collect();

    println!(
        "E5c: prior bootstrap over {} videos ({} countries)",
        clean.len(),
        true_traffic.len()
    );
    println!();
    println!(
        "{:<26} {:>10} {:>10} {:>6} {:>12}",
        "starting prior", "TV before", "TV after", "iters", "recon JS"
    );

    let reference = TrafficModel::reference(tagdist::geo::world());
    let starts: Vec<(&str, GeoDist)> = vec![
        (
            "uniform (no knowledge)",
            GeoDist::uniform(true_traffic.len()),
        ),
        ("reference table (Alexa)", reference.distribution().clone()),
        (
            "true traffic ±40%",
            TrafficModel::from_distribution(true_traffic.clone())
                .perturbed(0.4, 5)
                .distribution()
                .clone(),
        ),
    ];
    for (name, start) in starts {
        let before = start.total_variation(true_traffic).expect("same world");
        let refined = refine_prior(&clean, &start, 25, 1e-7).expect("refines");
        let after = refined
            .traffic
            .total_variation(true_traffic)
            .expect("same world");
        let estimates: Vec<GeoDist> = (0..clean.len())
            .map(|p| refined.reconstruction.distribution(p).expect("mass"))
            .collect();
        let report = ErrorReport::compare(&truth_dists, &estimates).expect("aligned");
        println!(
            "{name:<26} {before:>10.4} {after:>10.4} {:>6} {:>12.4}",
            refined.iterations(),
            report.js.mean
        );
    }

    // Reference row: reconstruction under the exact true prior.
    let exact = Reconstruction::compute(&clean, true_traffic).expect("reconstructs");
    let estimates: Vec<GeoDist> = (0..clean.len())
        .map(|p| exact.distribution(p).expect("mass"))
        .collect();
    let report = ErrorReport::compare(&truth_dists, &estimates).expect("aligned");
    println!(
        "{:<26} {:>10.4} {:>10.4} {:>6} {:>12.4}",
        "true prior (oracle)", 0.0, 0.0, 0, report.js.mean
    );
    println!();
    println!("expected shape: all starts converge toward a COMMON fixed point");
    println!("(uniform improves hugely; a very accurate prior actually degrades");
    println!("toward it), because quantization biases the implied traffic: 0-61");
    println!("charts truncate small countries to zero. Reading: bootstrap when no");
    println!("prior exists, but a decent external estimate still beats the fixed");
    println!("point — Eq. 2's reliance on Alexa was justified.");
}
