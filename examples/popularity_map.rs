//! E2 — Fig. 1: the popularity map of the most-viewed video.
//!
//! In the paper the most-viewed video is *Justin Bieber – Baby ft.
//! Ludacris*, whose map saturates (intensity 61) in both the USA and
//! Singapore — the observation that motivates interpreting `pop(v)` as
//! a per-country *intensity* rather than a view count. This example
//! reproduces the figure for the synthetic corpus and then shows the
//! §3 inversion at work on the same video.
//!
//! ```text
//! cargo run --release --example popularity_map [--full]
//! ```

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::geo::world;
use tagdist::{render_popularity_map, render_views, Study, StudyConfig};

fn main() {
    let config = if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    };
    let study = Study::run(config);
    let video = study.fig1_most_viewed();

    println!("E2 / Fig. 1: popularity map of the most-viewed video");
    println!();
    println!("video:       {} ({})", video.key, video.title);
    println!("total views: {}", video.total_views);
    println!();

    println!("popularity map (0-61 Map-Chart intensities, top 15):");
    print!("{}", render_popularity_map(video.popularity, 15));
    println!();

    let saturated = video.popularity.saturated();
    let codes: Vec<&str> = saturated
        .iter()
        .map(|&id| world().country(id).code)
        .collect();
    println!(
        "countries saturated at 61: {} ({})",
        saturated.len(),
        codes.join(", ")
    );
    println!(
        "countries with any signal: {}/{}",
        video.popularity.support_size(),
        world().len()
    );
    println!();

    // The paper's point: equal intensities do NOT mean equal views.
    let pos = study
        .clean()
        .iter()
        .position(|v| v.key == video.key)
        .expect("most-viewed video is in the clean set");
    let reconstructed = study
        .reconstruction()
        .views(pos)
        .expect("aligned reconstruction");
    println!("reconstructed views(v)[c] via Eqs. 1-2 (top 15):");
    print!("{}", render_views(reconstructed, 15));
    println!();

    if saturated.len() >= 2 {
        let a = saturated[0];
        let b = saturated[saturated.len() - 1];
        println!(
            "note: {} and {} share intensity 61 but get {:.0} vs {:.0} reconstructed views —",
            world().country(a).code,
            world().country(b).code,
            reconstructed[a.index()],
            reconstructed[b.index()]
        );
        println!("pop(v) is an intensity, not a view count (the paper's Fig. 1 argument).");
    }
}
