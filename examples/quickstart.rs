//! Quickstart: run the whole pipeline end to end and print the
//! paper's headline artifacts.
//!
//! ```text
//! cargo run --release --example quickstart [--full]
//! ```
//!
//! `--full` runs at the default world scale (120k videos, ~10 s);
//! otherwise a 20k-video world is used.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use tagdist::{render_distribution, Study, StudyConfig};

fn config_from_args() -> StudyConfig {
    if std::env::args().any(|a| a == "--full") {
        StudyConfig::default()
    } else {
        StudyConfig::small()
    }
}

fn main() {
    let study = Study::run(config_from_args());

    println!("== crawl (§2 methodology) ==");
    println!("{}", study.crawl_stats());
    println!();
    println!("== filtering (§2) ==");
    println!("{}", study.filter_report());
    println!();
    println!("== corpus statistics (§2) ==");
    println!("{}", study.dataset_stats());
    println!();

    println!("== top tags by aggregated views (Eq. 3) ==");
    let names = study.clean().tags();
    for (tag, views) in study.tag_table().top_by_views(10) {
        println!("{:>14.0} views  {}", views, names.name(tag));
    }
    println!();

    println!("== the paper's two archetypes ==");
    for name in ["pop", "favela"] {
        if let Some(profile) = study.tag_profile(name) {
            println!("--- {profile}");
            print!("{}", render_distribution(&profile.dist, 8));
        }
    }

    println!("== does the conjecture hold? (E6) ==");
    println!("{}", study.prediction_evaluation());
}
