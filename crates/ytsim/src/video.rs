//! Ground-truth video generation.
//!
//! Each synthetic video carries the *true* per-country view vector —
//! the quantity the paper can only approximate by inverting the
//! Map-Chart encoding. Keeping the truth alongside the observable
//! metadata is what lets this reproduction measure reconstruction
//! error (experiment E5) instead of merely eyeballing maps.

use std::sync::Arc;

use rand::Rng;
use tagdist_geo::{CountryId, CountryVec, GeoDist, TrafficModel, World};

use crate::config::WorldConfig;
use crate::sampling::LogNormal;
use crate::topic::{TopicId, TopicModel};

/// One video with full ground truth.
#[derive(Debug, Clone)]
pub struct GroundTruthVideo {
    /// Dense platform index.
    pub index: usize,
    /// External key in YouTube's spirit (`"yt000042"`).
    pub key: String,
    /// Display title.
    pub title: String,
    /// The video's topics (one or two; the first is primary).
    pub topics: Vec<TopicId>,
    /// Country the uploader lives in.
    pub upload_country: CountryId,
    /// Total worldwide views.
    pub total_views: u64,
    /// Video duration in seconds (drives storage size in byte-budget
    /// cache experiments).
    pub duration_secs: u32,
    /// Ground-truth per-country views; sums to `total_views` (up to
    /// floating-point rounding).
    pub views_by_country: CountryVec,
    /// Uploader-provided tags (pre-defect; the platform may hide them
    /// from crawlers to model incomplete metadata). Shared pointers
    /// into the topic vocabularies — interned at generation time.
    pub tags: Vec<Arc<str>>,
}

impl GroundTruthVideo {
    /// Approximate storage size in bytes at a 2011-typical 360p
    /// bitrate (~0.5 Mbit/s ≈ 64 KiB/s).
    pub fn size_bytes(&self) -> f64 {
        self.duration_secs as f64 * 64.0 * 1024.0
    }

    /// The true geographic view distribution of this video.
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "generated view vectors always carry mass"
    )]
    pub fn view_distribution(&self) -> GeoDist {
        GeoDist::from_counts(&self.views_by_country)
            .expect("generated view vectors always carry mass")
    }

    /// Primary topic.
    pub fn primary_topic(&self) -> TopicId {
        self.topics[0]
    }
}

/// Deterministic external key for a platform index.
pub fn key_for(index: usize) -> String {
    format!("yt{index:08}")
}

/// Generates one video.
///
/// The view distribution is the mixture the paper's world implies:
/// `topic affinity` (what the content is about), an
/// `uploader-locality` point mass (creators' home audiences), and a
/// `global` traffic-following tail, weighted by
/// [`WorldConfig::upload_locality`] and [`WorldConfig::global_mixing`].
pub fn generate_video<R: Rng + ?Sized>(
    index: usize,
    cfg: &WorldConfig,
    model: &TopicModel,
    world: &World,
    traffic: &TrafficModel,
    views: &LogNormal,
    rng: &mut R,
) -> GroundTruthVideo {
    // Topics: always a primary, sometimes a secondary.
    let primary = model.sample_topic(rng);
    let mut topics = vec![primary];
    if rng.gen::<f64>() < 0.3 {
        let second = model.sample_topic(rng);
        if second != primary {
            topics.push(second);
        }
    }

    // Content affinity: average of the topics' affinities.
    let mut affinity = model.topic(primary).affinity.as_vec().clone();
    if topics.len() == 2 {
        affinity = affinity.scaled(0.65);
        affinity += &model.topic(topics[1]).affinity.as_vec().scaled(0.35);
    }

    // Uploaders cluster where their topic's audience is.
    let upload_country = model.topic(primary).affinity.sample(rng);

    // Heavy-tailed views, boosted by topic popularity.
    let popularity = model.topic(primary).popularity;
    let total_views = ((views.sample_views(rng) as f64) * popularity)
        .round()
        .max(1.0) as u64;

    // Duration: lognormal around 4 minutes, clamped to 10 s – 2 h.
    let duration = (240.0 * (0.9 * (rng.gen::<f64>() * 2.0 - 1.0)).exp())
        .round()
        .clamp(10.0, 7_200.0) as u32;

    // Final mixture.
    let topic_weight = 1.0 - cfg.upload_locality - cfg.global_mixing;
    let mut mixture = affinity.scaled(topic_weight);
    let mut local = CountryVec::zeros(world.len());
    local[upload_country] = cfg.upload_locality;
    mixture += &local;
    mixture += &traffic.distribution().as_vec().scaled(cfg.global_mixing);
    let views_by_country = mixture.scaled(total_views as f64);

    // Tags: primary topic + optional secondary + shared + unique.
    let n_tags = rng.gen_range(cfg.min_tags_per_video..=cfg.max_tags_per_video);
    let n_secondary = if topics.len() == 2 { n_tags / 4 } else { 0 };
    let n_shared = (n_tags / 3).max(1);
    let n_primary = n_tags.saturating_sub(n_secondary + n_shared).max(1);
    let mut tags = model.draw_topic_tags(rng, primary, n_primary);
    if n_secondary > 0 {
        for t in model.draw_topic_tags(rng, topics[1], n_secondary) {
            if !tags.contains(&t) {
                tags.push(t);
            }
        }
    }
    for t in model.draw_shared_tags(rng, n_shared) {
        if !tags.contains(&t) {
            tags.push(t);
        }
    }
    if rng.gen::<f64>() < cfg.unique_tag_probability {
        tags.push(Arc::from(format!("u-{}", key_for(index))));
    }

    let title = format!(
        "{} #{index} ({})",
        model.topic(primary).name,
        world.country(upload_country).code
    );

    GroundTruthVideo {
        index,
        key: key_for(index),
        title,
        topics,
        upload_country,
        total_views,
        duration_secs: duration,
        views_by_country,
        tags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagdist_geo::world;

    fn make(seed: u64) -> GroundTruthVideo {
        let cfg = WorldConfig::tiny();
        let traffic = TrafficModel::reference(world());
        let model = TopicModel::generate(&cfg, world(), &traffic);
        let views = LogNormal::new(cfg.views_ln_mean, cfg.views_ln_sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        generate_video(7, &cfg, &model, world(), &traffic, &views, &mut rng)
    }

    #[test]
    fn keys_are_stable_and_padded() {
        assert_eq!(key_for(42), "yt00000042");
        assert_eq!(key_for(0), "yt00000000");
        assert_eq!(make(1).key, "yt00000007");
    }

    #[test]
    fn view_vector_sums_to_total() {
        let v = make(2);
        let sum = v.views_by_country.sum();
        let rel = (sum - v.total_views as f64).abs() / v.total_views as f64;
        assert!(
            rel < 1e-9,
            "Σ views_by_country = {sum} vs {}",
            v.total_views
        );
    }

    #[test]
    fn view_distribution_is_valid() {
        let v = make(3);
        let d = v.view_distribution();
        assert!((d.as_vec().sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tags_are_nonempty_and_unique() {
        for seed in 0..20 {
            let v = make(seed);
            assert!(!v.tags.is_empty());
            let mut t = v.tags.clone();
            t.sort();
            t.dedup();
            assert_eq!(t.len(), v.tags.len(), "duplicate tags in {:?}", v.tags);
        }
    }

    #[test]
    fn tag_count_respects_bounds_modulo_unique_tag() {
        let cfg = WorldConfig::tiny();
        for seed in 0..30 {
            let v = make(seed);
            assert!(v.tags.len() >= cfg.min_tags_per_video.min(2));
            assert!(
                v.tags.len() <= cfg.max_tags_per_video + 1,
                "{}",
                v.tags.len()
            );
        }
    }

    #[test]
    fn primary_topic_tag_bias_shows_up() {
        // Across many videos, the primary topic's own name should
        // appear frequently (it is the Zipf head of the vocabulary).
        let cfg = WorldConfig::tiny();
        let traffic = TrafficModel::reference(world());
        let model = TopicModel::generate(&cfg, world(), &traffic);
        let views = LogNormal::new(cfg.views_ln_mean, cfg.views_ln_sigma);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        let n = 200;
        for i in 0..n {
            let v = generate_video(i, &cfg, &model, world(), &traffic, &views, &mut rng);
            let name = &model.topic(v.primary_topic()).name;
            if v.tags.iter().any(|t| t.as_ref() == name.as_str()) {
                hits += 1;
            }
        }
        assert!(hits > n / 3, "topic-name tag hit rate {hits}/{n}");
    }

    #[test]
    fn upload_locality_shifts_mass_home() {
        let v = make(5);
        let cfg = WorldConfig::tiny();
        let d = v.view_distribution();
        assert!(
            d.prob(v.upload_country) >= cfg.upload_locality * 0.9,
            "home share {} below locality weight",
            d.prob(v.upload_country)
        );
    }

    #[test]
    fn views_are_positive() {
        for seed in 0..20 {
            assert!(make(seed).total_views >= 1);
        }
    }

    #[test]
    fn durations_and_sizes_are_plausible() {
        for seed in 0..30 {
            let v = make(seed);
            assert!(
                (10..=7_200).contains(&v.duration_secs),
                "{}",
                v.duration_secs
            );
            assert!(v.size_bytes() > 0.0);
            assert!((v.size_bytes() - v.duration_secs as f64 * 65_536.0).abs() < 1e-6);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = make(9);
        let b = make(9);
        assert_eq!(a.key, b.key);
        assert_eq!(a.total_views, b.total_views);
        assert_eq!(a.tags, b.tags);
        assert_eq!(a.views_by_country, b.views_by_country);
    }
}
