//! The related-videos graph.
//!
//! The paper's dataset was collected by "breadth-first snowball
//! sampling of the graph of related videos, as reported by Youtube"
//! (§2). YouTube's related list is driven by content similarity with
//! an exploration component; the synthetic graph reproduces that
//! shape: most edges point to videos of the same primary topic
//! (popularity-biased via tournament selection), a configurable
//! remainder to uniformly random videos.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::WorldConfig;
use crate::video::GroundTruthVideo;

/// Immutable adjacency: `related(v)` lists platform indices, most
/// similar first.
#[derive(Debug, Clone)]
pub struct RelatedGraph {
    adjacency: Vec<Vec<u32>>,
}

impl RelatedGraph {
    /// Builds the graph for a generated video set.
    ///
    /// Deterministic in `cfg.seed`.
    pub fn build(cfg: &WorldConfig, videos: &[GroundTruthVideo]) -> RelatedGraph {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xB5297A4D).wrapping_add(2));
        let n = videos.len();

        // Bucket videos by primary topic for similarity edges.
        let topic_count = videos
            .iter()
            .map(|v| v.primary_topic().index() + 1)
            .max()
            .unwrap_or(0);
        let mut by_topic: Vec<Vec<u32>> = vec![Vec::new(); topic_count];
        for v in videos {
            by_topic[v.primary_topic().index()].push(v.index as u32);
        }

        let mut adjacency = Vec::with_capacity(n);
        for v in videos {
            let peers = &by_topic[v.primary_topic().index()];
            let mut related = Vec::with_capacity(cfg.related_per_video);
            let mut guard = 0;
            while related.len() < cfg.related_per_video.min(n.saturating_sub(1))
                && guard < 30 * cfg.related_per_video + 30
            {
                guard += 1;
                let candidate = if rng.gen::<f64>() < cfg.related_random_share || peers.len() < 2 {
                    rng.gen_range(0..n) as u32
                } else {
                    // Tournament selection: of two random same-topic
                    // peers, link to the more viewed — popular videos
                    // accumulate in-links, as on the real platform.
                    let a = peers[rng.gen_range(0..peers.len())];
                    let b = peers[rng.gen_range(0..peers.len())];
                    if videos[a as usize].total_views >= videos[b as usize].total_views {
                        a
                    } else {
                        b
                    }
                };
                if candidate as usize != v.index && !related.contains(&candidate) {
                    related.push(candidate);
                }
            }
            adjacency.push(related);
        }
        RelatedGraph { adjacency }
    }

    /// Number of videos covered.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the graph covers no videos.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Related platform indices of video `index` (most similar first).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn related(&self, index: usize) -> &[u32] {
        &self.adjacency[index]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::LogNormal;
    use crate::topic::TopicModel;
    use crate::video::generate_video;
    use tagdist_geo::{world, TrafficModel};

    fn build_world(cfg: &WorldConfig) -> (Vec<GroundTruthVideo>, RelatedGraph) {
        let traffic = TrafficModel::reference(world());
        let model = TopicModel::generate(cfg, world(), &traffic);
        let views = LogNormal::new(cfg.views_ln_mean, cfg.views_ln_sigma);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let videos: Vec<GroundTruthVideo> = (0..500)
            .map(|i| generate_video(i, cfg, &model, world(), &traffic, &views, &mut rng))
            .collect();
        let graph = RelatedGraph::build(cfg, &videos);
        (videos, graph)
    }

    #[test]
    fn every_video_gets_neighbours() {
        let cfg = WorldConfig::tiny();
        let (videos, graph) = build_world(&cfg);
        assert_eq!(graph.len(), videos.len());
        for i in 0..videos.len() {
            let related = graph.related(i);
            assert!(!related.is_empty(), "video {i} has no related videos");
            assert!(related.len() <= cfg.related_per_video);
        }
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = WorldConfig::tiny();
        let (_, graph) = build_world(&cfg);
        for i in 0..graph.len() {
            let related = graph.related(i);
            assert!(!related.contains(&(i as u32)), "self-loop at {i}");
            let mut sorted = related.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), related.len(), "duplicate edge at {i}");
        }
    }

    #[test]
    fn most_edges_stay_within_topic() {
        let cfg = WorldConfig::tiny();
        let (videos, graph) = build_world(&cfg);
        let mut same = 0usize;
        let mut total = 0usize;
        for v in &videos {
            for &r in graph.related(v.index) {
                total += 1;
                if videos[r as usize].primary_topic() == v.primary_topic() {
                    same += 1;
                }
            }
        }
        let share = same as f64 / total as f64;
        assert!(share > 0.6, "same-topic edge share {share}");
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = WorldConfig::tiny();
        let (_, a) = build_world(&cfg);
        let (_, b) = build_world(&cfg);
        for i in 0..a.len() {
            assert_eq!(a.related(i), b.related(i));
        }
    }

    #[test]
    fn edge_count_sums_adjacency() {
        let cfg = WorldConfig::tiny();
        let (_, graph) = build_world(&cfg);
        let manual: usize = (0..graph.len()).map(|i| graph.related(i).len()).sum();
        assert_eq!(graph.edge_count(), manual);
    }

    #[test]
    fn empty_video_set_builds_empty_graph() {
        let cfg = WorldConfig::tiny();
        let graph = RelatedGraph::build(&cfg, &[]);
        assert!(graph.is_empty());
        assert_eq!(graph.edge_count(), 0);
    }
}
