//! The generative topic model.
//!
//! Every synthetic video belongs to one or two *topics*. A topic
//! carries the two properties the paper's analysis hinges on:
//!
//! * a **geographic affinity** — the per-country distribution its
//!   videos' views follow. Global topics track the world traffic
//!   distribution (Fig. 2's `pop`); local topics concentrate on an
//!   anchor country and its language group (Fig. 3's `favela`), and
//! * a **tag vocabulary** — Zipf-weighted tags from which videos draw,
//!   with the topic's own name as the most likely tag. This is what
//!   makes tags *predictive markers* of geography, the paper's central
//!   conjecture.
//!
//! The first two topics are always the paper's exemplars: topic 0 is
//! the global music topic `pop`, topic 1 the Brazil-anchored `favela`.

use core::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::{CountryId, CountryVec, GeoDist, TrafficModel, World};

use crate::config::WorldConfig;
use crate::sampling::Zipf;

/// Dense topic identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(u16);

impl TopicId {
    /// Creates a topic id from a raw dense index.
    pub fn from_index(index: usize) -> TopicId {
        TopicId(index as u16)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topic{}", self.0)
    }
}

/// Whether a topic's audience is worldwide or anchored to a country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopicKind {
    /// Audience follows the world traffic distribution (Fig. 2).
    Global,
    /// Audience concentrates on an anchor country and spills over into
    /// its language group and region (Fig. 3).
    Local(CountryId),
}

/// One topic of the generative model.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Dense id.
    pub id: TopicId,
    /// Human-readable name; also the topic's most likely tag.
    pub name: String,
    /// Global or country-anchored.
    pub kind: TopicKind,
    /// Per-country distribution of the views of this topic's videos.
    pub affinity: GeoDist,
    /// Relative popularity multiplier applied to view counts of videos
    /// in this topic (Zipf over topic rank, so a few topics — `pop`
    /// among them — dominate worldwide views).
    pub popularity: f64,
    /// The topic's tag vocabulary, most-likely first. Entries are
    /// refcounted so drawing a tag is a pointer bump, not a string
    /// copy — generation-time interning for the dataset builder.
    pub vocabulary: Vec<Arc<str>>,
}

impl Topic {
    /// Draws `k` distinct tags from the vocabulary, Zipf-weighted.
    /// Returned tags are shared pointers into the vocabulary — no
    /// string bytes are copied.
    pub fn draw_tags<R: Rng + ?Sized>(&self, rng: &mut R, zipf: &Zipf, k: usize) -> Vec<Arc<str>> {
        debug_assert_eq!(zipf.len(), self.vocabulary.len());
        let mut out: Vec<Arc<str>> = Vec::with_capacity(k);
        let mut guard = 0;
        while out.len() < k.min(self.vocabulary.len()) && guard < 50 * k + 50 {
            guard += 1;
            let tag = &self.vocabulary[zipf.sample(rng)];
            if !out.iter().any(|t| t == tag) {
                out.push(Arc::clone(tag));
            }
        }
        out
    }
}

/// The full topic model: all topics plus shared vocabulary.
#[derive(Debug, Clone)]
pub struct TopicModel {
    topics: Vec<Topic>,
    shared_vocabulary: Vec<Arc<str>>,
    topic_sampler: Zipf,
    tag_sampler: Zipf,
    shared_sampler: Zipf,
}

/// Names seeding the generated topic list, cycled with numeric
/// suffixes when the configuration asks for more topics. The first two
/// are fixed by construction (`pop`, `favela`).
const TOPIC_THEMES: &[&str] = &[
    "rock",
    "gaming",
    "football",
    "anime",
    "cricket",
    "telenovela",
    "kpop",
    "bollywood",
    "schlager",
    "chanson",
    "samba",
    "manga",
    "rap",
    "tutorial",
    "comedy",
    "news",
    "cooking",
    "travel",
    "fitness",
    "tech",
    "cars",
    "fashion",
    "diy",
    "pets",
    "science",
    "history",
    "politics",
    "movies",
    "trailer",
    "vlog",
    "dance",
    "karaoke",
    "wrestling",
    "rugby",
    "sumo",
    "flamenco",
    "tango",
    "polka",
    "klezmer",
    "highlife",
];

/// Shared topic-agnostic tags every uploader sprinkles on videos.
const SHARED_THEMES: &[&str] = &[
    "video", "music", "live", "official", "hd", "new", "2011", "funny", "best", "tv", "show",
    "full", "original", "clip", "world", "top", "free", "amazing", "epic", "fail",
];

impl TopicModel {
    /// Generates the topic model for a configuration.
    ///
    /// Deterministic in `cfg.seed`. Topic 0 is always the global
    /// `pop` topic and topic 1 the Brazil-anchored `favela` topic, so
    /// the paper's Figs. 2–3 have direct analogues in every world.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`WorldConfig::validate`].
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract; Brazil is in the built-in registry"
    )]
    pub fn generate(cfg: &WorldConfig, world: &World, traffic: &TrafficModel) -> TopicModel {
        cfg.validate().expect("invalid world configuration");
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let popularity = Zipf::new(cfg.topics, 1.0);

        let br = world.by_code("BR").expect("registry contains Brazil").id;
        let mut topics = Vec::with_capacity(cfg.topics);
        for index in 0..cfg.topics {
            let (name, kind) = match index {
                0 => ("pop".to_owned(), TopicKind::Global),
                1 => ("favela".to_owned(), TopicKind::Local(br)),
                _ => {
                    let theme = TOPIC_THEMES[(index - 2) % TOPIC_THEMES.len()];
                    let name = if index - 2 < TOPIC_THEMES.len() {
                        theme.to_owned()
                    } else {
                        format!("{theme}{}", (index - 2) / TOPIC_THEMES.len())
                    };
                    let is_global = rng.gen::<f64>() < cfg.global_topic_share;
                    if is_global {
                        (name, TopicKind::Global)
                    } else {
                        let anchor = traffic.distribution().sample(&mut rng);
                        (name, TopicKind::Local(anchor))
                    }
                }
            };
            let affinity = Self::affinity_for(kind, world, traffic, &mut rng);
            let vocabulary = Self::vocabulary_for(&name, cfg.tags_per_topic);
            topics.push(Topic {
                id: TopicId::from_index(index),
                name,
                kind,
                affinity,
                // Rank-based Zipf popularity; `pop` (rank 0) dominates,
                // matching its "second most viewed tag" status in the
                // paper (first place goes to the shared tag `music`).
                popularity: popularity.pmf(index) * cfg.topics as f64,
                vocabulary,
            });
        }

        let shared_vocabulary = (0..cfg.shared_tags)
            .map(|i| {
                let theme = SHARED_THEMES[i % SHARED_THEMES.len()];
                if i < SHARED_THEMES.len() {
                    Arc::from(theme)
                } else {
                    Arc::from(format!("{theme}{}", i / SHARED_THEMES.len()))
                }
            })
            .collect::<Vec<Arc<str>>>();

        TopicModel {
            topic_sampler: Zipf::new(cfg.topics, 0.8),
            tag_sampler: Zipf::new(cfg.tags_per_topic, cfg.tag_zipf_exponent),
            shared_sampler: Zipf::new(cfg.shared_tags, cfg.tag_zipf_exponent),
            topics,
            shared_vocabulary,
        }
    }

    #[expect(
        clippy::expect_used,
        reason = "affinity weights are positive by construction"
    )]
    fn affinity_for(
        kind: TopicKind,
        world: &World,
        traffic: &TrafficModel,
        rng: &mut StdRng,
    ) -> GeoDist {
        match kind {
            TopicKind::Global => {
                // Traffic-following with mild multiplicative jitter so
                // global topics are not all identical.
                let jittered: CountryVec = traffic
                    .distribution()
                    .as_vec()
                    .as_slice()
                    .iter()
                    .map(|&p| p * (0.7 + 0.6 * rng.gen::<f64>()))
                    .collect();
                GeoDist::from_counts(&jittered).expect("jittered traffic keeps mass")
            }
            TopicKind::Local(anchor) => {
                let anchor_country = world.country(anchor);
                let mut w = CountryVec::zeros(world.len());
                // 55–80 % of the audience in the anchor country…
                let anchor_mass = 0.55 + 0.25 * rng.gen::<f64>();
                w[anchor] = anchor_mass;
                // …a language-group spillover…
                let peers = world.speaking(anchor_country.language);
                let lang_mass = 0.6 * (1.0 - anchor_mass);
                if peers.len() > 1 {
                    let share = lang_mass / (peers.len() - 1) as f64;
                    for peer in peers {
                        if peer != anchor {
                            w[peer] += share;
                        }
                    }
                } else {
                    w[anchor] += lang_mass;
                }
                // …and a thin global tail following traffic.
                let tail = 1.0 - w.sum();
                let tail_vec = traffic.distribution().as_vec().scaled(tail);
                w += &tail_vec;
                GeoDist::from_counts(&w).expect("local affinity keeps mass")
            }
        }
    }

    fn vocabulary_for(name: &str, size: usize) -> Vec<Arc<str>> {
        let mut vocab: Vec<Arc<str>> = Vec::with_capacity(size);
        vocab.push(Arc::from(name));
        for i in 1..size {
            vocab.push(Arc::from(format!("{name}-{i}")));
        }
        vocab
    }

    /// All topics in id order.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// Returns the topic with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn topic(&self, id: TopicId) -> &Topic {
        &self.topics[id.index()]
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Returns `true` if the model has no topics (unreachable via the
    /// public constructor; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Samples a topic id, Zipf-weighted so early topics host more
    /// videos.
    pub fn sample_topic<R: Rng + ?Sized>(&self, rng: &mut R) -> TopicId {
        TopicId::from_index(self.topic_sampler.sample(rng))
    }

    /// Draws `k` distinct topic tags for a video of topic `id`.
    pub fn draw_topic_tags<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        id: TopicId,
        k: usize,
    ) -> Vec<Arc<str>> {
        self.topic(id).draw_tags(rng, &self.tag_sampler, k)
    }

    /// Draws `k` distinct shared (topic-agnostic) tags.
    pub fn draw_shared_tags<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<Arc<str>> {
        let mut out: Vec<Arc<str>> = Vec::with_capacity(k);
        let mut guard = 0;
        while out.len() < k.min(self.shared_vocabulary.len()) && guard < 50 * k + 50 {
            guard += 1;
            let tag = &self.shared_vocabulary[self.shared_sampler.sample(rng)];
            if !out.iter().any(|t| t == tag) {
                out.push(Arc::clone(tag));
            }
        }
        out
    }

    /// The shared vocabulary, most-likely first.
    pub fn shared_vocabulary(&self) -> &[Arc<str>] {
        &self.shared_vocabulary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::world;

    fn model() -> TopicModel {
        let cfg = WorldConfig::tiny();
        let traffic = TrafficModel::reference(world());
        TopicModel::generate(&cfg, world(), &traffic)
    }

    #[test]
    fn builtin_topics_match_the_paper_exemplars() {
        let m = model();
        assert_eq!(m.topic(TopicId::from_index(0)).name, "pop");
        assert_eq!(m.topic(TopicId::from_index(0)).kind, TopicKind::Global);
        let favela = m.topic(TopicId::from_index(1));
        assert_eq!(favela.name, "favela");
        let br = world().by_code("BR").unwrap().id;
        assert_eq!(favela.kind, TopicKind::Local(br));
    }

    #[test]
    fn local_affinity_concentrates_on_anchor() {
        let m = model();
        let favela = m.topic(TopicId::from_index(1));
        let br = world().by_code("BR").unwrap().id;
        assert_eq!(favela.affinity.top_country(), Some(br));
        assert!(favela.affinity.top_share() >= 0.5);
        // Language spillover: Portugal receives some mass.
        let pt = world().by_code("PT").unwrap().id;
        assert!(favela.affinity.prob(pt) > 0.0);
    }

    #[test]
    fn global_affinity_tracks_traffic() {
        let m = model();
        let traffic = TrafficModel::reference(world());
        let pop = m.topic(TopicId::from_index(0));
        let js = pop.affinity.js_divergence(traffic.distribution()).unwrap();
        assert!(js < 0.08, "global topic far from traffic: JS = {js}");
    }

    #[test]
    fn local_topics_diverge_from_traffic() {
        let m = model();
        let traffic = TrafficModel::reference(world());
        let favela = m.topic(TopicId::from_index(1));
        let js = favela
            .affinity
            .js_divergence(traffic.distribution())
            .unwrap();
        assert!(js > 0.3, "local topic too close to traffic: JS = {js}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorldConfig::tiny();
        let traffic = TrafficModel::reference(world());
        let a = TopicModel::generate(&cfg, world(), &traffic);
        let b = TopicModel::generate(&cfg, world(), &traffic);
        for (x, y) in a.topics().iter().zip(b.topics()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.affinity, y.affinity);
        }
    }

    #[test]
    fn vocabularies_start_with_the_topic_name() {
        let m = model();
        for topic in m.topics() {
            assert_eq!(topic.vocabulary[0].as_ref(), topic.name);
            assert_eq!(topic.vocabulary.len(), WorldConfig::tiny().tags_per_topic);
        }
    }

    #[test]
    fn drawn_tags_are_distinct_and_from_the_vocabulary() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let tags = m.draw_topic_tags(&mut rng, TopicId::from_index(0), 5);
        assert_eq!(tags.len(), 5);
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        let vocab = &m.topic(TopicId::from_index(0)).vocabulary;
        for t in &tags {
            assert!(vocab.contains(t));
        }
    }

    #[test]
    fn shared_tags_are_distinct() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let tags = m.draw_shared_tags(&mut rng, 4);
        assert_eq!(tags.len(), 4);
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn pop_topic_has_the_largest_popularity_multiplier() {
        let m = model();
        let pop = m.topic(TopicId::from_index(0)).popularity;
        for t in m.topics().iter().skip(1) {
            assert!(pop >= t.popularity, "{} out-populars pop", t.name);
        }
    }

    #[test]
    fn topic_sampling_prefers_early_topics() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; m.len()];
        for _ in 0..10_000 {
            counts[m.sample_topic(&mut rng).index()] += 1;
        }
        assert!(counts[0] > counts[m.len() - 1]);
    }

    #[test]
    fn affinities_are_valid_distributions() {
        let m = model();
        for t in m.topics() {
            let sum = t.affinity.as_vec().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: Σ = {sum}", t.name);
            assert!(t.affinity.as_vec().is_nonnegative());
        }
    }
}
