//! The assembled synthetic platform.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::{world, CountryId, CountryVec, GeoDist, PopularityVector, TrafficModel, World};

use crate::api::{FetchError, PlatformApi, VideoMetadata};
use crate::config::WorldConfig;
use crate::graph::RelatedGraph;
use crate::sampling::LogNormal;
use crate::topic::TopicModel;
use crate::video::{generate_video, GroundTruthVideo};

/// How many chart positions are materialized per country.
const CHART_DEPTH: usize = 100;

/// Crawler-visible state of one video after defect injection.
#[derive(Debug, Clone)]
struct Observed {
    /// Tags served to crawlers (empty when metadata is incomplete).
    /// Refcounted pointers into the topic vocabularies.
    tags: Vec<Arc<str>>,
    /// Scraped chart intensities (`None` = chart missing).
    popularity: Option<Vec<u8>>,
}

/// A fully generated synthetic YouTube.
///
/// The platform is immutable after [`Platform::generate`] and `Sync`,
/// so crawler threads can share it freely. Crawlers must go through
/// the [`PlatformApi`] impl; experiment harnesses may additionally
/// read the ground truth (`video`, [`Platform::true_traffic`]) to
/// score reconstructions.
#[derive(Debug)]
pub struct Platform {
    cfg: WorldConfig,
    videos: Vec<GroundTruthVideo>,
    observed: Vec<Observed>,
    graph: RelatedGraph,
    charts: Vec<Vec<u32>>,
    key_index: HashMap<String, u32>,
    ytube: CountryVec,
    true_traffic: GeoDist,
    topics: TopicModel,
}

impl Platform {
    /// Generates a platform; deterministic in `cfg.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`WorldConfig::validate`].
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract on invalid configs"
    )]
    pub fn generate(cfg: WorldConfig) -> Platform {
        cfg.validate().expect("invalid world configuration");
        let world = world();
        let traffic = TrafficModel::reference(world);
        let topics = TopicModel::generate(&cfg, world, &traffic);
        let views = LogNormal::new(cfg.views_ln_mean, cfg.views_ln_sigma);

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x85EB_CA6B).wrapping_add(3));
        let videos: Vec<GroundTruthVideo> = (0..cfg.videos)
            .map(|i| generate_video(i, &cfg, &topics, world, &traffic, &views, &mut rng))
            .collect();

        // Ground-truth per-country platform traffic: ytube[c] of Eq. 1.
        let mut ytube = CountryVec::zeros(world.len());
        for v in &videos {
            ytube += &v.views_by_country;
        }
        #[expect(
            clippy::expect_used,
            reason = "every generated video has positive views"
        )]
        let true_traffic = GeoDist::from_counts(&ytube).expect("platform views carry mass");

        let observed = Self::render_observed(&cfg, world, &videos, &ytube);
        let graph = RelatedGraph::build(&cfg, &videos);
        let charts = Self::build_charts(world, &videos);
        let key_index = videos
            .iter()
            .map(|v| (v.key.clone(), v.index as u32))
            .collect();

        Platform {
            cfg,
            videos,
            observed,
            graph,
            charts,
            key_index,
            ytube,
            true_traffic,
            topics,
        }
    }

    /// Renders each video's Map-Chart popularity (Eq. 1 forward model)
    /// and injects the §2 metadata defects.
    fn render_observed(
        cfg: &WorldConfig,
        world: &World,
        videos: &[GroundTruthVideo],
        ytube: &CountryVec,
    ) -> Vec<Observed> {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xC2B2_AE35).wrapping_add(4));
        videos
            .iter()
            .map(|v| {
                // pop(v)[c] ∝ views(v)[c] / ytube[c]  (Eq. 1), rescaled
                // and quantized by the chart service.
                #[expect(clippy::expect_used, reason = "both vectors span the same registry")]
                let intensity = v
                    .views_by_country
                    .hadamard_div(ytube)
                    .expect("equal world sizes");
                #[expect(
                    clippy::expect_used,
                    reason = "every generated video has positive views"
                )]
                let rendered = PopularityVector::quantize(&intensity)
                    .expect("generated videos have positive views")
                    .as_slice()
                    .to_vec();

                let u: f64 = rng.gen();
                let popularity = if u < cfg.defect_missing_pop {
                    None
                } else if u < cfg.defect_missing_pop + cfg.defect_corrupt_pop {
                    // Two corruption modes seen in chart scraping:
                    // truncated vectors and out-of-range colour values.
                    if rng.gen::<bool>() && rendered.len() > 1 {
                        Some(rendered[..rendered.len() / 2].to_vec())
                    } else {
                        let mut bad = rendered.clone();
                        let slot = rng.gen_range(0..bad.len());
                        bad[slot] = 62 + (rng.gen::<u8>() % 190);
                        Some(bad)
                    }
                } else if u < cfg.defect_missing_pop + cfg.defect_corrupt_pop + cfg.defect_empty_pop
                {
                    Some(vec![0u8; world.len()])
                } else {
                    Some(rendered)
                };

                let tags = if rng.gen::<f64>() < cfg.defect_no_tags {
                    Vec::new()
                } else {
                    v.tags.clone()
                };
                Observed { tags, popularity }
            })
            .collect()
    }

    /// Builds per-country top-[`CHART_DEPTH`] charts by true
    /// in-country views.
    fn build_charts(world: &World, videos: &[GroundTruthVideo]) -> Vec<Vec<u32>> {
        (0..world.len())
            .map(|c| {
                let country = CountryId::from_index(c);
                let mut ranked: Vec<u32> = (0..videos.len() as u32).collect();
                let depth = CHART_DEPTH.min(videos.len());
                if depth == 0 {
                    return Vec::new();
                }
                if depth < ranked.len() {
                    ranked.select_nth_unstable_by(depth - 1, |&a, &b| {
                        let va = videos[a as usize].views_by_country[country];
                        let vb = videos[b as usize].views_by_country[country];
                        vb.total_cmp(&va)
                    });
                    ranked.truncate(depth);
                }
                ranked.sort_by(|&a, &b| {
                    let va = videos[a as usize].views_by_country[country];
                    let vb = videos[b as usize].views_by_country[country];
                    vb.total_cmp(&va)
                });
                ranked
            })
            .collect()
    }

    /// The configuration the platform was generated from.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Ground truth of video `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn video(&self, index: usize) -> &GroundTruthVideo {
        &self.videos[index]
    }

    /// All ground-truth videos, in platform order.
    pub fn videos(&self) -> &[GroundTruthVideo] {
        &self.videos
    }

    /// Ground truth looked up by external key.
    pub fn ground_truth(&self, key: &str) -> Option<&GroundTruthVideo> {
        self.key_index.get(key).map(|&i| &self.videos[i as usize])
    }

    /// True total views per country — the `ytube[c]` of Eq. 1 that the
    /// paper had to approximate with Alexa data.
    pub fn ytube(&self) -> &CountryVec {
        &self.ytube
    }

    /// `ytube` normalized to a distribution (the true `pyt` of Eq. 2).
    pub fn true_traffic(&self) -> &GeoDist {
        &self.true_traffic
    }

    /// The topic model behind the catalogue.
    pub fn topics(&self) -> &TopicModel {
        &self.topics
    }
}

impl PlatformApi for Platform {
    fn top_videos(&self, country: CountryId, k: usize) -> Vec<String> {
        self.charts
            .get(country.index())
            .map(|chart| {
                chart
                    .iter()
                    .take(k)
                    .map(|&i| self.videos[i as usize].key.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The healthy backend: every known key fetches on the first try;
    /// unknown keys are permanent 404s. Layer [`crate::FlakyPlatform`]
    /// on top to inject transient faults.
    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
        let &index = self.key_index.get(key).ok_or(FetchError::NotFound)?;
        let video = &self.videos[index as usize];
        let observed = &self.observed[index as usize];
        Ok(VideoMetadata {
            key: video.key.clone(),
            title: video.title.clone(),
            total_views: video.total_views,
            duration_secs: video.duration_secs,
            tags: observed.tags.clone(),
            popularity: observed.popularity.clone(),
        })
    }

    fn related(&self, key: &str, k: usize) -> Result<Vec<String>, FetchError> {
        let Some(&index) = self.key_index.get(key) else {
            return Ok(Vec::new());
        };
        Ok(self
            .graph
            .related(index as usize)
            .iter()
            .take(k)
            .map(|&i| self.videos[i as usize].key.clone())
            .collect())
    }

    fn catalogue_size(&self) -> usize {
        self.videos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_seed(2011);
        Platform::generate(cfg)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = platform();
        let b = platform();
        assert_eq!(a.catalogue_size(), b.catalogue_size());
        for i in (0..a.catalogue_size()).step_by(97) {
            assert_eq!(a.video(i).total_views, b.video(i).total_views);
            assert_eq!(a.fetch(&a.video(i).key), b.fetch(&b.video(i).key));
        }
    }

    #[test]
    fn charts_are_sorted_by_in_country_views() {
        let p = platform();
        let us = world().by_code("US").unwrap().id;
        let chart = p.top_videos(us, 10);
        assert_eq!(chart.len(), 10);
        let views: Vec<f64> = chart
            .iter()
            .map(|k| p.ground_truth(k).unwrap().views_by_country[us])
            .collect();
        for w in views.windows(2) {
            assert!(w[0] >= w[1], "chart not sorted: {views:?}");
        }
        // Chart head must dominate a random video.
        let some = p.video(1234).views_by_country[us];
        assert!(views[0] >= some);
    }

    #[test]
    fn fetch_round_trips_keys() {
        let p = platform();
        let meta = p.fetch("yt00000000").unwrap();
        assert_eq!(meta.key, "yt00000000");
        assert_eq!(p.fetch("nope"), Err(FetchError::NotFound));
    }

    #[test]
    fn related_returns_known_keys() {
        let p = platform();
        let related = p.related("yt00000001", 5).unwrap();
        assert!(!related.is_empty());
        for key in &related {
            assert!(p.fetch(key).is_ok());
        }
        assert!(p.related("nope", 5).unwrap().is_empty());
    }

    #[test]
    fn defect_rates_materialize() {
        let p = platform();
        let n = p.catalogue_size() as f64;
        let mut missing = 0.0;
        let mut corrupt = 0.0;
        let mut empty = 0.0;
        let mut tagless = 0.0;
        for i in 0..p.catalogue_size() {
            let meta = p.fetch(&p.video(i).key).unwrap();
            match &meta.popularity {
                None => missing += 1.0,
                Some(raw) if raw.len() != world().len() || raw.iter().any(|&b| b > 61) => {
                    corrupt += 1.0
                }
                Some(raw) if raw.iter().all(|&b| b == 0) => empty += 1.0,
                Some(_) => {}
            }
            if meta.tags.is_empty() {
                tagless += 1.0;
            }
        }
        let cfg = p.config();
        assert!((missing / n - cfg.defect_missing_pop).abs() < 0.03);
        assert!((corrupt / n - cfg.defect_corrupt_pop).abs() < 0.03);
        assert!((empty / n - cfg.defect_empty_pop).abs() < 0.03);
        assert!(tagless / n < 0.03);
    }

    #[test]
    fn served_charts_obey_eq1_forward_model() {
        let p = platform();
        // Find a video served with a clean chart and check one entry
        // against a manual Eq. 1 computation.
        let world = world();
        for i in 0..p.catalogue_size() {
            let v = p.video(i);
            let meta = p.fetch(&v.key).unwrap();
            let Some(raw) = &meta.popularity else {
                continue;
            };
            if raw.len() != world.len()
                || raw.iter().any(|&b| b > 61)
                || raw.iter().all(|&b| b == 0)
            {
                continue;
            }
            let intensity = v.views_by_country.hadamard_div(p.ytube()).unwrap();
            let expected = PopularityVector::quantize(&intensity).unwrap();
            assert_eq!(raw.as_slice(), expected.as_slice());
            return;
        }
        panic!("no cleanly served video found");
    }

    #[test]
    fn ytube_sums_video_views() {
        let p = platform();
        let total: f64 = p.ytube().sum();
        let expected: f64 = p.videos().iter().map(|v| v.views_by_country.sum()).sum();
        assert!((total - expected).abs() / expected < 1e-12);
        assert!((p.true_traffic().as_vec().sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn without_defects_serves_everything_clean() {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(300).without_defects();
        let p = Platform::generate(cfg);
        for i in 0..p.catalogue_size() {
            let meta = p.fetch(&p.video(i).key).unwrap();
            assert!(!meta.tags.is_empty());
            let raw = meta.popularity.expect("chart present");
            assert_eq!(raw.len(), world().len());
            assert!(raw.iter().any(|&b| b > 0));
        }
    }

    /// Growing the world (same seed, more videos) is append-only for
    /// *ground truth*: the per-video generator streams PRNG draws
    /// sequentially, so the first N videos keep their identity, tags
    /// and view vectors. This is the platform's "time passes, new
    /// uploads appear" model, which `tagdist-crawler`'s recrawl
    /// exploits. Served charts may shift by quantization levels —
    /// intensities are relative to total platform traffic, which the
    /// new uploads change (exactly as on the real platform).
    #[test]
    fn growing_the_world_preserves_existing_videos() {
        let mut small_cfg = WorldConfig::tiny();
        small_cfg.with_videos(300);
        let mut big_cfg = WorldConfig::tiny();
        big_cfg.with_videos(400);
        let small = Platform::generate(small_cfg);
        let big = Platform::generate(big_cfg);
        for i in 0..300 {
            assert_eq!(small.video(i).total_views, big.video(i).total_views);
            assert_eq!(small.video(i).tags, big.video(i).tags);
            assert_eq!(
                small.video(i).views_by_country,
                big.video(i).views_by_country
            );
            // Served tag/view metadata is stable too (defect draws are
            // per-video in order); only the chart intensities may move.
            let key = &small.video(i).key;
            let a = small.fetch(key).unwrap();
            let b = big.fetch(key).unwrap();
            assert_eq!(a.tags, b.tags);
            assert_eq!(a.total_views, b.total_views);
            assert_eq!(a.popularity.is_some(), b.popularity.is_some());
        }
        assert_eq!(big.catalogue_size(), 400);
    }

    #[test]
    fn seed_changes_the_world() {
        let mut cfg_a = WorldConfig::tiny();
        cfg_a.with_videos(200).with_seed(1);
        let mut cfg_b = WorldConfig::tiny();
        cfg_b.with_videos(200).with_seed(2);
        let a = Platform::generate(cfg_a);
        let b = Platform::generate(cfg_b);
        let differs = (0..200).any(|i| a.video(i).total_views != b.video(i).total_views);
        assert!(differs);
    }
}
