//! The crawlable platform API.
//!
//! The paper's crawl consumed three endpoints of YouTube's 2011 public
//! API: per-country top-10 charts (the seeds), per-video metadata
//! (tags, views, and the scraped Map-Chart popularity image), and the
//! related-videos list (the snowball edges). [`PlatformApi`] is that
//! surface and nothing more — crawlers cannot see ground truth.

use tagdist_geo::CountryId;

/// Video metadata as served to a crawler.
///
/// `popularity` carries the intensities scraped from the Map-Chart
/// image: `None` when no chart was served, and possibly corrupt bytes
/// (wrong length or out-of-range values) when scraping went wrong —
/// the §2 defects the dataset filter has to deal with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoMetadata {
    /// External video key.
    pub key: String,
    /// Display title.
    pub title: String,
    /// Total worldwide view count.
    pub total_views: u64,
    /// Duration in seconds.
    pub duration_secs: u32,
    /// Uploader tags; may be empty when metadata is incomplete.
    pub tags: Vec<String>,
    /// Scraped per-country intensities, if a chart was served.
    pub popularity: Option<Vec<u8>>,
}

/// The public surface of a UGC platform, as seen by a crawler.
///
/// The trait is object-safe so crawlers can be written against
/// `&dyn PlatformApi`.
pub trait PlatformApi {
    /// The `k` most popular videos in `country`, most popular first
    /// (YouTube's per-country chart; the paper seeds with `k = 10`
    /// across 25 countries).
    fn top_videos(&self, country: CountryId, k: usize) -> Vec<String>;

    /// Fetches a video's crawler-visible metadata, or `None` for an
    /// unknown key.
    fn fetch(&self, key: &str) -> Option<VideoMetadata>;

    /// Keys of up to `k` videos related to `key` (the snowball edges);
    /// empty for an unknown key.
    fn related(&self, key: &str, k: usize) -> Vec<String>;

    /// Number of videos hosted (not part of the 2011 API, but handy
    /// for sizing crawl budgets in experiments).
    fn catalogue_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must remain object-safe: the crawler holds a
    /// `&dyn PlatformApi`.
    #[test]
    fn platform_api_is_object_safe() {
        struct Stub;
        impl PlatformApi for Stub {
            fn top_videos(&self, _country: CountryId, _k: usize) -> Vec<String> {
                Vec::new()
            }
            fn fetch(&self, _key: &str) -> Option<VideoMetadata> {
                None
            }
            fn related(&self, _key: &str, _k: usize) -> Vec<String> {
                Vec::new()
            }
            fn catalogue_size(&self) -> usize {
                0
            }
        }
        let stub = Stub;
        let dyn_api: &dyn PlatformApi = &stub;
        assert_eq!(dyn_api.catalogue_size(), 0);
        assert!(dyn_api.fetch("x").is_none());
    }
}
