//! The crawlable platform API.
//!
//! The paper's crawl consumed three endpoints of YouTube's 2011 public
//! API: per-country top-10 charts (the seeds), per-video metadata
//! (tags, views, and the scraped Map-Chart popularity image), and the
//! related-videos list (the snowball edges). [`PlatformApi`] is that
//! surface and nothing more — crawlers cannot see ground truth.
//!
//! Since PR 5 the two per-video endpoints are *fallible*: they return
//! [`FetchError`] values that distinguish permanent failures (a 404 on
//! a deleted or never-existing key) from transient ones (5xx errors,
//! 429 rate limits, timeouts, truncated response bodies). A crawler is
//! expected to retry transient errors and absorb permanent ones — see
//! `tagdist-crawler`'s retry/backoff layer.

use core::fmt;
use std::sync::Arc;

use tagdist_geo::CountryId;

/// Why a platform request failed.
///
/// The split mirrors HTTP semantics: [`FetchError::NotFound`] is the
/// only *permanent* failure (retrying cannot help); every other
/// variant is *transient* and expected to succeed on a later attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchError {
    /// The key does not exist or is no longer served (HTTP 404/403):
    /// a dangling reference from a chart or related list.
    NotFound,
    /// A transient server-side error (HTTP 5xx).
    Transient,
    /// The request was rejected by rate limiting (HTTP 429).
    RateLimited,
    /// The request exceeded its deadline (injected latency blew the
    /// client timeout).
    Timeout,
    /// The response body was cut off mid-transfer; the partial payload
    /// was discarded (seen on related-list endpoints).
    Truncated,
}

impl FetchError {
    /// `true` when retrying the request may succeed.
    #[must_use]
    pub fn is_transient(self) -> bool {
        !matches!(self, FetchError::NotFound)
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::NotFound => write!(f, "not found (permanent)"),
            FetchError::Transient => write!(f, "transient server error"),
            FetchError::RateLimited => write!(f, "rate limited"),
            FetchError::Timeout => write!(f, "request timed out"),
            FetchError::Truncated => write!(f, "response truncated"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Video metadata as served to a crawler.
///
/// `popularity` carries the intensities scraped from the Map-Chart
/// image: `None` when no chart was served, and possibly corrupt bytes
/// (wrong length or out-of-range values) when scraping went wrong —
/// the §2 defects the dataset filter has to deal with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoMetadata {
    /// External video key.
    pub key: String,
    /// Display title.
    pub title: String,
    /// Total worldwide view count.
    pub total_views: u64,
    /// Duration in seconds.
    pub duration_secs: u32,
    /// Uploader tags; may be empty when metadata is incomplete.
    ///
    /// Interned as `Arc<str>`: the platform hands out refcounted
    /// pointers into the topic vocabularies, so fetching a video never
    /// copies tag bytes (the paper-scale corpora share ~10⁵ distinct
    /// tags across 10⁶ videos).
    pub tags: Vec<Arc<str>>,
    /// Scraped per-country intensities, if a chart was served.
    pub popularity: Option<Vec<u8>>,
}

/// The public surface of a UGC platform, as seen by a crawler.
///
/// The trait is object-safe so crawlers can be written against
/// `&dyn PlatformApi`.
pub trait PlatformApi {
    /// The `k` most popular videos in `country`, most popular first
    /// (YouTube's per-country chart; the paper seeds with `k = 10`
    /// across 25 countries). Charts are served from a pre-computed
    /// index and modelled as reliable.
    fn top_videos(&self, country: CountryId, k: usize) -> Vec<String>;

    /// Fetches a video's crawler-visible metadata.
    ///
    /// # Errors
    ///
    /// [`FetchError::NotFound`] for an unknown or deleted key; any
    /// transient variant when the backend is degraded (retryable).
    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError>;

    /// Keys of up to `k` videos related to `key` (the snowball edges);
    /// `Ok(vec![])` for an unknown key.
    ///
    /// # Errors
    ///
    /// A transient [`FetchError`] when the backend is degraded — in
    /// particular [`FetchError::Truncated`] when the response body was
    /// cut off (the partial list is discarded, as a real crawler
    /// discards a half-transferred response).
    fn related(&self, key: &str, k: usize) -> Result<Vec<String>, FetchError>;

    /// Number of videos hosted (not part of the 2011 API, but handy
    /// for sizing crawl budgets in experiments).
    fn catalogue_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must remain object-safe: the crawler holds a
    /// `&dyn PlatformApi`.
    #[test]
    fn platform_api_is_object_safe() {
        struct Stub;
        impl PlatformApi for Stub {
            fn top_videos(&self, _country: CountryId, _k: usize) -> Vec<String> {
                Vec::new()
            }
            fn fetch(&self, _key: &str) -> Result<VideoMetadata, FetchError> {
                Err(FetchError::NotFound)
            }
            fn related(&self, _key: &str, _k: usize) -> Result<Vec<String>, FetchError> {
                Ok(Vec::new())
            }
            fn catalogue_size(&self) -> usize {
                0
            }
        }
        let stub = Stub;
        let dyn_api: &dyn PlatformApi = &stub;
        assert_eq!(dyn_api.catalogue_size(), 0);
        assert_eq!(dyn_api.fetch("x"), Err(FetchError::NotFound));
    }

    #[test]
    fn transient_classification_matches_http_semantics() {
        assert!(!FetchError::NotFound.is_transient());
        for e in [
            FetchError::Transient,
            FetchError::RateLimited,
            FetchError::Timeout,
            FetchError::Truncated,
        ] {
            assert!(e.is_transient(), "{e} must be retryable");
        }
    }

    #[test]
    fn errors_render_for_humans() {
        assert!(FetchError::NotFound.to_string().contains("permanent"));
        assert!(FetchError::RateLimited.to_string().contains("rate"));
    }
}
