//! Generation parameters for the synthetic platform.

/// Configuration of the synthetic world (non-consuming builder).
///
/// The defaults are calibrated so that a crawl over the generated
/// platform reproduces the *ratios* of the paper's §2 accounting:
/// ≈ 0.63 % of crawled videos carry no tags and ≈ 35 % carry a
/// missing/corrupt/empty popularity vector, leaving ≈ 65 % usable.
///
/// # Example
///
/// ```
/// use tagdist_ytsim::WorldConfig;
///
/// let mut cfg = WorldConfig::default();
/// cfg.with_videos(10_000).with_seed(42);
/// assert_eq!(cfg.videos, 10_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// PRNG seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Number of videos hosted by the platform.
    pub videos: usize,
    /// Number of topics. Must be ≥ 2 (the built-in `pop` and `favela`
    /// topics occupy the first two slots).
    pub topics: usize,
    /// Fraction of topics (beyond the built-ins) that are global
    /// rather than country-anchored.
    pub global_topic_share: f64,
    /// Size of the per-topic tag vocabulary.
    pub tags_per_topic: usize,
    /// Size of the shared, topic-agnostic tag vocabulary
    /// ("video", "2011", "hd", …).
    pub shared_tags: usize,
    /// Zipf exponent for tag selection inside a vocabulary.
    pub tag_zipf_exponent: f64,
    /// Minimum tags drawn per video (before defect injection).
    pub min_tags_per_video: usize,
    /// Maximum tags drawn per video.
    pub max_tags_per_video: usize,
    /// Probability that a video also carries a one-off tag unique to
    /// it, producing the folksonomy's singleton-heavy vocabulary.
    pub unique_tag_probability: f64,
    /// ln-space mean of the per-video view count (lognormal).
    pub views_ln_mean: f64,
    /// ln-space standard deviation of the per-video view count.
    pub views_ln_sigma: f64,
    /// Weight of the uploader country in a video's view distribution.
    pub upload_locality: f64,
    /// Weight of the world traffic prior in a video's view
    /// distribution (the remainder goes to its topic affinity).
    pub global_mixing: f64,
    /// Probability that a video's metadata lists no tags (§2: 6,736 of
    /// 1,063,844 ≈ 0.63 %).
    pub defect_no_tags: f64,
    /// Probability that the popularity chart is missing entirely.
    pub defect_missing_pop: f64,
    /// Probability that the popularity chart decodes to garbage.
    pub defect_corrupt_pop: f64,
    /// Probability that the popularity chart is served all-zero
    /// ("empty" in the paper's wording).
    pub defect_empty_pop: f64,
    /// Out-degree of the related-videos graph.
    pub related_per_video: usize,
    /// Fraction of related links drawn at random rather than from the
    /// same topic (YouTube's exploration component).
    pub related_random_share: f64,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            seed: 2011,
            videos: 120_000,
            topics: 48,
            global_topic_share: 0.3,
            tags_per_topic: 400,
            shared_tags: 250,
            tag_zipf_exponent: 1.1,
            min_tags_per_video: 3,
            max_tags_per_video: 14,
            unique_tag_probability: 0.55,
            views_ln_mean: 8.6,
            views_ln_sigma: 2.2,
            upload_locality: 0.25,
            global_mixing: 0.15,
            defect_no_tags: 0.0063,
            defect_missing_pop: 0.15,
            defect_corrupt_pop: 0.09,
            defect_empty_pop: 0.11,
            related_per_video: 20,
            related_random_share: 0.1,
        }
    }
}

impl WorldConfig {
    /// A small world for unit tests and doctests (2,000 videos).
    pub fn tiny() -> WorldConfig {
        WorldConfig {
            videos: 2_000,
            topics: 12,
            tags_per_topic: 60,
            shared_tags: 40,
            related_per_video: 12,
            ..WorldConfig::default()
        }
    }

    /// A mid-size world for integration tests and benches
    /// (20,000 videos).
    pub fn small() -> WorldConfig {
        WorldConfig {
            videos: 20_000,
            topics: 24,
            tags_per_topic: 150,
            shared_tags: 120,
            ..WorldConfig::default()
        }
    }

    /// Sets the PRNG seed.
    pub fn with_seed(&mut self, seed: u64) -> &mut WorldConfig {
        self.seed = seed;
        self
    }

    /// Sets the number of videos.
    pub fn with_videos(&mut self, videos: usize) -> &mut WorldConfig {
        self.videos = videos;
        self
    }

    /// Sets the number of topics.
    pub fn with_topics(&mut self, topics: usize) -> &mut WorldConfig {
        self.topics = topics;
        self
    }

    /// Disables all metadata defects (every crawled record is clean);
    /// useful for experiments isolating reconstruction error.
    pub fn without_defects(&mut self) -> &mut WorldConfig {
        self.defect_no_tags = 0.0;
        self.defect_missing_pop = 0.0;
        self.defect_corrupt_pop = 0.0;
        self.defect_empty_pop = 0.0;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.videos == 0 {
            return Err("videos must be > 0".into());
        }
        if self.topics < 2 {
            return Err("topics must be >= 2 (pop and favela are built in)".into());
        }
        if !(0.0..=1.0).contains(&self.global_topic_share) {
            return Err("global_topic_share must be in [0, 1]".into());
        }
        if self.min_tags_per_video == 0 || self.min_tags_per_video > self.max_tags_per_video {
            return Err("need 0 < min_tags_per_video <= max_tags_per_video".into());
        }
        if self.tag_zipf_exponent <= 0.0 {
            return Err("tag_zipf_exponent must be positive".into());
        }
        let defect_total =
            self.defect_missing_pop + self.defect_corrupt_pop + self.defect_empty_pop;
        if !(0.0..=1.0).contains(&defect_total) {
            return Err("popularity defect probabilities must sum to <= 1".into());
        }
        for (name, p) in [
            ("defect_no_tags", self.defect_no_tags),
            ("unique_tag_probability", self.unique_tag_probability),
            ("upload_locality", self.upload_locality),
            ("global_mixing", self.global_mixing),
            ("related_random_share", self.related_random_share),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1]"));
            }
        }
        if self.upload_locality + self.global_mixing > 1.0 {
            return Err("upload_locality + global_mixing must be <= 1".into());
        }
        if self.views_ln_sigma < 0.0 {
            return Err("views_ln_sigma must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        WorldConfig::default().validate().unwrap();
        WorldConfig::tiny().validate().unwrap();
        WorldConfig::small().validate().unwrap();
    }

    #[test]
    fn default_defect_rates_match_paper_ratios() {
        let c = WorldConfig::default();
        let bad_pop = c.defect_missing_pop + c.defect_corrupt_pop + c.defect_empty_pop;
        // Paper: (1,063,844 − 6,736 − 691,349) / 1,063,844 ≈ 34.4 % bad
        // vectors and 0.63 % tagless.
        assert!((bad_pop - 0.344).abs() < 0.02, "bad-pop share {bad_pop}");
        assert!((c.defect_no_tags - 0.0063).abs() < 0.001);
    }

    #[test]
    fn builder_methods_chain() {
        let mut c = WorldConfig::tiny();
        c.with_seed(1).with_videos(5).with_topics(3);
        assert_eq!((c.seed, c.videos, c.topics), (1, 5, 3));
    }

    #[test]
    fn validation_catches_violations() {
        let mut c = WorldConfig::tiny();
        c.videos = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny();
        c.topics = 1;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny();
        c.min_tags_per_video = 9;
        c.max_tags_per_video = 3;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny();
        c.defect_missing_pop = 0.7;
        c.defect_corrupt_pop = 0.7;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny();
        c.upload_locality = 0.8;
        c.global_mixing = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn without_defects_zeroes_everything() {
        let mut c = WorldConfig::tiny();
        c.without_defects();
        assert_eq!(c.defect_no_tags, 0.0);
        assert_eq!(c.defect_missing_pop, 0.0);
        assert_eq!(c.defect_corrupt_pop, 0.0);
        assert_eq!(c.defect_empty_pop, 0.0);
    }
}
