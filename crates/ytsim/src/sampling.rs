//! Heavy-tailed samplers built on `rand` uniforms.
//!
//! The study's corpus statistics are dominated by two heavy tails:
//! Zipfian tag usage (705,415 unique tags, most used once) and the
//! lognormal-ish spread of video view counts (from single digits to
//! *Justin Bieber – Baby*'s hundreds of millions). Rather than pull in
//! a distributions crate, both samplers are implemented here from
//! first principles and property-tested.

use rand::Rng;

/// Zipf-distributed sampler over ranks `0..n`.
///
/// `P(rank = r) ∝ 1 / (r + 1)^s`. Sampling is O(log n) via binary
/// search over the precomputed CDF.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use tagdist_ytsim::Zipf;
///
/// let zipf = Zipf::new(100, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is not positive and finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler covers no ranks (unreachable via
    /// the public constructor; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws a rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Lognormal sampler: `exp(μ + σ·Z)` with `Z` standard normal via
/// Box–Muller.
///
/// With the default world configuration (`μ = 8.6, σ = 2.2`) the
/// median video has ≈ 5,400 views while the tail reaches hundreds of
/// millions — matching the corpus shape the paper describes (most
/// videos serve "niche audiences", a few are global hits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a sampler with ln-space mean `mu` and standard
    /// deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not
    /// finite.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// ln-space mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// ln-space standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median of the distribution (`exp(μ)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; guard the log against u1 == 0.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Draws one value and rounds it to a view count of at least 1.
    pub fn sample_views<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.sample(rng).round().max(1.0).min(u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(99));
    }

    #[test]
    fn zipf_empirical_frequencies_track_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(r)).abs() < 0.01,
                "rank {r}: empirical {emp} vs pmf {}",
                z.pmf(r)
            );
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn zipf_rejects_nonpositive_exponent() {
        let _ = Zipf::new(5, 0.0);
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let ln = LogNormal::new(3.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let mut samples: Vec<f64> = (0..n).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!(
            (median.ln() - 3.0).abs() < 0.05,
            "ln(median) = {}",
            median.ln()
        );
        assert_eq!(ln.median(), 3.0f64.exp());
    }

    #[test]
    fn lognormal_views_are_at_least_one() {
        let ln = LogNormal::new(0.0, 3.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            assert!(ln.sample_views(&mut rng) >= 1);
        }
    }

    #[test]
    fn lognormal_zero_sigma_is_deterministic() {
        let ln = LogNormal::new(2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let v = ln.sample(&mut rng);
        assert!((v - 2.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn lognormal_rejects_negative_sigma() {
        let _ = LogNormal::new(0.0, -1.0);
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        let ln = LogNormal::new(8.6, 2.2);
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..20_000).map(|_| ln.sample_views(&mut rng)).collect();
        let max = *samples.iter().max().unwrap();
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        let mean = sum as f64 / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[samples.len() / 2] as f64;
        assert!(mean > 4.0 * median, "mean {mean} vs median {median}");
        assert!(max as f64 > 100.0 * mean, "max {max} vs mean {mean}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn zipf_samples_in_range(
            n in 1usize..500, s in 0.2f64..3.0, seed in 0u64..500
        ) {
            let z = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn zipf_pmf_is_monotone_decreasing(n in 2usize..200, s in 0.2f64..3.0) {
            let z = Zipf::new(n, s);
            for r in 1..n {
                prop_assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
            }
        }

        #[test]
        fn lognormal_is_positive(
            mu in -3.0f64..12.0, sigma in 0.0f64..4.0, seed in 0u64..500
        ) {
            let ln = LogNormal::new(mu, sigma);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let v = ln.sample(&mut rng);
                prop_assert!(v > 0.0 && v.is_finite());
            }
        }
    }
}
