//! Seeded transient-fault injection.
//!
//! A weeks-long crawl of a live platform sees 5xx errors, 429 rate
//! limits, timed-out requests and half-transferred response bodies —
//! none of which the clean [`Platform`](crate::Platform) model emits.
//! [`FlakyPlatform`] layers a seeded, deterministic fault profile over
//! any [`PlatformApi`], so the crawler's retry/backoff machinery can
//! be exercised — and its outputs proven byte-identical to the
//! fault-free run — without any real nondeterminism.
//!
//! # Determinism contract
//!
//! Whether attempt `a` on key `k` faults, and with which error, is a
//! pure function of `(profile.seed, k, a, endpoint)`. The adapter
//! tracks per-key attempt counters, so the *sequence* of outcomes each
//! key observes is fixed regardless of how crawl threads interleave
//! across keys. Attempts numbered `>= max_faults_per_key` always reach
//! the backend: any retry budget larger than `max_faults_per_key` is
//! guaranteed to mask every injected fault.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use tagdist_geo::CountryId;

use crate::api::{FetchError, PlatformApi, VideoMetadata};

/// Environment variable selecting a named fault profile
/// (`off` | `flaky` | `hostile`) — used by the CI fault matrix.
pub const FAULT_PROFILE_ENV: &str = "TAGDIST_FAULT_PROFILE";

/// Which endpoint an injected fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    /// Per-video metadata fetch.
    Metadata,
    /// Related-videos list.
    Related,
}

/// A seeded description of how unreliable the backend is.
///
/// Rates are per-mille probabilities per attempt (integer, so the
/// profile stays `Eq` and checkpoint-serializable). A key's first
/// `max_faults_per_key` attempts on each endpoint are eligible for
/// injection; later attempts always pass through, which bounds the
/// faults any single request sequence can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultProfile {
    /// Seed for the fault draws; independent of the world seed.
    pub seed: u64,
    /// Per-mille rate of transient 5xx errors.
    pub transient_milli: u32,
    /// Per-mille rate of 429 rate-limit responses.
    pub rate_limit_milli: u32,
    /// Per-mille rate of injected-latency timeouts.
    pub timeout_milli: u32,
    /// Per-mille rate of truncated related-list responses
    /// (related endpoint only).
    pub truncate_milli: u32,
    /// Upper bound on injected faults per key per endpoint.
    pub max_faults_per_key: u32,
}

impl FaultProfile {
    /// No injection at all; [`FlakyPlatform`] becomes a transparent
    /// pass-through.
    #[must_use]
    pub fn off() -> FaultProfile {
        FaultProfile {
            seed: 0,
            transient_milli: 0,
            rate_limit_milli: 0,
            timeout_milli: 0,
            truncate_milli: 0,
            max_faults_per_key: 0,
        }
    }

    /// A realistic degraded backend: ~33% of eligible attempts fault,
    /// at most 3 faults per key — fully masked by the default retry
    /// budget.
    #[must_use]
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            seed: 0x5EED_F00D,
            transient_milli: 150,
            rate_limit_milli: 80,
            timeout_milli: 50,
            truncate_milli: 50,
            max_faults_per_key: 3,
        }
    }

    /// An adversarial backend: ~70% of eligible attempts fault, up to
    /// 9 faults per key — deliberately deeper than the default retry
    /// budget, so some videos exhaust their retries and the crawl must
    /// degrade gracefully.
    #[must_use]
    pub fn hostile() -> FaultProfile {
        FaultProfile {
            seed: 0x5EED_F00D,
            transient_milli: 350,
            rate_limit_milli: 150,
            timeout_milli: 100,
            truncate_milli: 100,
            max_faults_per_key: 9,
        }
    }

    /// Resolves a profile by CI-matrix name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names when `name` is not
    /// one of `off`, `flaky`, `hostile`.
    pub fn by_name(name: &str) -> Result<FaultProfile, String> {
        match name {
            "off" => Ok(FaultProfile::off()),
            "flaky" => Ok(FaultProfile::flaky()),
            "hostile" => Ok(FaultProfile::hostile()),
            other => Err(format!(
                "unknown fault profile {other:?}; expected off, flaky or hostile"
            )),
        }
    }

    /// Reads [`FAULT_PROFILE_ENV`]; unset or empty means `off`.
    ///
    /// # Errors
    ///
    /// As for [`FaultProfile::by_name`] when the variable holds an
    /// unknown name.
    pub fn from_env() -> Result<FaultProfile, String> {
        match std::env::var(FAULT_PROFILE_ENV) {
            Ok(name) if !name.is_empty() => FaultProfile::by_name(&name),
            _ => Ok(FaultProfile::off()),
        }
    }

    /// Replaces the fault seed (builder style).
    pub fn with_seed(&mut self, seed: u64) -> &mut FaultProfile {
        self.seed = seed;
        self
    }

    /// Whether this profile can inject anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.max_faults_per_key > 0 && self.fault_milli_total() > 0
    }

    /// Combined per-mille fault rate across all modes.
    #[must_use]
    pub fn fault_milli_total(&self) -> u32 {
        self.transient_milli + self.rate_limit_milli + self.timeout_milli + self.truncate_milli
    }

    /// The fault (if any) injected for attempt `attempt` on `key`; a
    /// pure function of its arguments and the profile.
    fn fault_for(&self, key: &str, attempt: u32, endpoint: Endpoint) -> Option<FetchError> {
        if attempt >= self.max_faults_per_key {
            return None;
        }
        let salt = match endpoint {
            Endpoint::Metadata => 0x11,
            Endpoint::Related => 0x22,
        };
        let draw = mix64(self.seed ^ fnv1a(key) ^ (u64::from(attempt) << 32) ^ (salt << 56)) % 1000;
        let draw = u32::try_from(draw).unwrap_or(999);
        let mut bound = self.transient_milli;
        if draw < bound {
            return Some(FetchError::Transient);
        }
        bound += self.rate_limit_milli;
        if draw < bound {
            return Some(FetchError::RateLimited);
        }
        bound += self.timeout_milli;
        if draw < bound {
            return Some(FetchError::Timeout);
        }
        if endpoint == Endpoint::Related {
            bound += self.truncate_milli;
            if draw < bound {
                return Some(FetchError::Truncated);
            }
        }
        None
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::off()
    }
}

/// FNV-1a over the key bytes: stable across platforms and runs,
/// unlike `DefaultHasher`.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A splitmix64 finalizer: decorrelates the structured inputs.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-endpoint attempt counters for one key.
type AttemptCounters = [u32; 2];

/// A fault-injecting decorator over any platform.
///
/// Thread-safe: crawl workers may call it concurrently. The per-key
/// attempt counters live behind a mutex; the injected-fault tallies
/// are atomics read back by tests and reports.
#[derive(Debug)]
pub struct FlakyPlatform<'a, P: PlatformApi + ?Sized> {
    inner: &'a P,
    profile: FaultProfile,
    attempts: Mutex<HashMap<String, AttemptCounters>>,
    injected: AtomicU64,
}

impl<'a, P: PlatformApi + ?Sized> FlakyPlatform<'a, P> {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: &'a P, profile: FaultProfile) -> FlakyPlatform<'a, P> {
        FlakyPlatform {
            inner,
            profile,
            attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// The active fault profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Total faults injected so far (all endpoints).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Claims the next attempt number for `key` on `endpoint`.
    fn next_attempt(&self, key: &str, endpoint: Endpoint) -> u32 {
        let slot = match endpoint {
            Endpoint::Metadata => 0,
            Endpoint::Related => 1,
        };
        let mut map = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
        let counters = map.entry(key.to_owned()).or_insert([0, 0]);
        let attempt = counters[slot];
        counters[slot] = counters[slot].saturating_add(1);
        attempt
    }

    /// Runs the injection decision for one request.
    fn inject(&self, key: &str, endpoint: Endpoint) -> Option<FetchError> {
        if !self.profile.is_enabled() {
            return None;
        }
        let attempt = self.next_attempt(key, endpoint);
        let fault = self.profile.fault_for(key, attempt, endpoint);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

impl<P: PlatformApi + ?Sized> PlatformApi for FlakyPlatform<'_, P> {
    /// Charts are served from a pre-computed index and stay reliable.
    fn top_videos(&self, country: CountryId, k: usize) -> Vec<String> {
        self.inner.top_videos(country, k)
    }

    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
        if let Some(fault) = self.inject(key, Endpoint::Metadata) {
            return Err(fault);
        }
        self.inner.fetch(key)
    }

    fn related(&self, key: &str, k: usize) -> Result<Vec<String>, FetchError> {
        if let Some(fault) = self.inject(key, Endpoint::Related) {
            return Err(fault);
        }
        self.inner.related(key, k)
    }

    fn catalogue_size(&self) -> usize {
        self.inner.catalogue_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::platform::Platform;

    fn platform() -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(300);
        Platform::generate(cfg)
    }

    #[test]
    fn off_profile_is_transparent() {
        let p = platform();
        let flaky = FlakyPlatform::new(&p, FaultProfile::off());
        for i in 0..30 {
            let key = &p.video(i).key;
            assert_eq!(flaky.fetch(key), p.fetch(key));
            assert_eq!(flaky.related(key, 5), p.related(key, 5));
        }
        assert_eq!(flaky.injected_faults(), 0);
    }

    #[test]
    fn faults_are_bounded_and_eventually_succeed() {
        let p = platform();
        let flaky = FlakyPlatform::new(&p, FaultProfile::hostile());
        let budget = FaultProfile::hostile().max_faults_per_key + 1;
        for i in 0..100 {
            let key = &p.video(i).key;
            let mut ok = false;
            for _ in 0..budget {
                match flaky.fetch(key) {
                    Ok(meta) => {
                        assert_eq!(&meta.key, key);
                        ok = true;
                        break;
                    }
                    Err(e) => assert!(e.is_transient(), "known key never 404s"),
                }
            }
            assert!(ok, "key {key} did not succeed within {budget} attempts");
        }
        assert!(flaky.injected_faults() > 0, "hostile profile injects");
    }

    #[test]
    fn fault_sequences_are_seeded_and_per_key() {
        let p = platform();
        let observe = |profile: FaultProfile| -> Vec<Vec<Result<(), FetchError>>> {
            let flaky = FlakyPlatform::new(&p, profile);
            (0..40)
                .map(|i| {
                    let key = &p.video(i).key;
                    (0..6).map(|_| flaky.fetch(key).map(|_| ())).collect()
                })
                .collect()
        };
        let a = observe(FaultProfile::flaky());
        let b = observe(FaultProfile::flaky());
        assert_eq!(a, b, "same seed, same fault sequences");
        let mut other = FaultProfile::flaky();
        other.with_seed(99);
        let c = observe(other);
        assert_ne!(a, c, "seed change must move the faults");
    }

    #[test]
    fn related_lists_can_be_truncated() {
        let p = platform();
        let mut profile = FaultProfile::off();
        profile.truncate_milli = 1000;
        profile.max_faults_per_key = 1;
        let flaky = FlakyPlatform::new(&p, profile);
        let key = &p.video(0).key;
        assert_eq!(flaky.related(key, 5), Err(FetchError::Truncated));
        // The retry reaches the backend and gets the full list.
        assert_eq!(flaky.related(key, 5), p.related(key, 5));
        // Metadata fetches are untouched by a truncate-only profile.
        assert_eq!(flaky.fetch(key), p.fetch(key));
    }

    #[test]
    fn named_profiles_resolve() {
        assert_eq!(FaultProfile::by_name("off").unwrap(), FaultProfile::off());
        assert_eq!(
            FaultProfile::by_name("flaky").unwrap(),
            FaultProfile::flaky()
        );
        assert_eq!(
            FaultProfile::by_name("hostile").unwrap(),
            FaultProfile::hostile()
        );
        assert!(FaultProfile::by_name("chaotic").is_err());
        assert!(!FaultProfile::off().is_enabled());
        assert!(FaultProfile::flaky().is_enabled());
    }
}
