//! Synthetic YouTube platform — the data substrate of the `tagdist`
//! reproduction.
//!
//! The paper's corpus (a March-2011 YouTube crawl) is no longer
//! obtainable: YouTube removed per-country popularity maps, the IRISA
//! dataset is not public, and Alexa Internet is gone. This crate
//! substitutes the *closest synthetic equivalent that exercises the
//! same code paths* (see DESIGN.md §2):
//!
//! * a generative **topic model** ([`topic`]) in which some topics are
//!   geographically global (like the paper's `pop` tag, Fig. 2) and
//!   others anchored to a country or language group (like `favela` →
//!   Brazil, Fig. 3),
//! * **videos** ([`video`]) with Zipf/lognormal heavy-tailed view
//!   counts, uploader countries, tag sets drawn from their topics, and
//!   a *ground-truth per-country view vector* — the quantity the
//!   paper's pipeline can only estimate,
//! * the **Map-Chart rendering** of each video's popularity map via
//!   Eq. 1's forward model (true per-country intensity, rescaled and
//!   quantized to 0–61), including the metadata defects the paper
//!   filters out (§2): missing charts, corrupt charts, all-zero charts
//!   and missing tags,
//! * a **related-videos graph** ([`graph`]) biased towards same-topic
//!   videos, and per-country **top charts** — the two API surfaces the
//!   paper's snowball crawl consumed,
//! * the [`PlatformApi`] trait: the *only* window a crawler gets onto
//!   the platform, mirroring what YouTube's public API exposed,
//! * two failure decorators: [`ChurnedPlatform`] (permanent deletions
//!   → dangling references) and [`FlakyPlatform`] (seeded transient
//!   faults: 5xx, 429, timeouts, truncated related lists) — the
//!   failure model a week-long crawl of a live platform must absorb.
//!
//! # Example
//!
//! ```
//! use tagdist_ytsim::{Platform, PlatformApi, WorldConfig};
//!
//! let mut cfg = WorldConfig::tiny();
//! cfg.with_seed(7);
//! let platform = Platform::generate(cfg);
//! let world = tagdist_geo::world();
//! let us = world.by_code("US").unwrap().id;
//! let chart = platform.top_videos(us, 10);
//! assert_eq!(chart.len(), 10);
//! let meta = platform.fetch(&chart[0]).expect("charted videos exist");
//! assert!(meta.total_views > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod api;
pub mod churn;
pub mod config;
pub mod flaky;
pub mod graph;
pub mod platform;
pub mod sampling;
pub mod topic;
pub mod video;

pub use api::{FetchError, PlatformApi, VideoMetadata};
pub use churn::ChurnedPlatform;
pub use config::WorldConfig;
pub use flaky::{FaultProfile, FlakyPlatform, FAULT_PROFILE_ENV};
pub use platform::Platform;
pub use sampling::{LogNormal, Zipf};
pub use topic::{Topic, TopicId, TopicKind};
pub use video::GroundTruthVideo;
