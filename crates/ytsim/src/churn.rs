//! Catalogue churn: deleted and private videos.
//!
//! Real crawls constantly hit dangling references — charts and related
//! lists mention videos that have been deleted or made private between
//! indexing and fetching. (The paper's crawl predates YouTube's bulk
//! takedown waves, but any reproduction run against a live platform
//! would face this.) [`ChurnedPlatform`] wraps a platform and hides a
//! seeded fraction of its catalogue from `fetch` while still *listing*
//! those videos in charts and related lists — exactly the dangling-
//! reference behaviour a crawler must absorb.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::CountryId;

use crate::api::{FetchError, PlatformApi, VideoMetadata};
use crate::platform::Platform;

/// A view of a platform where a fraction of videos is unavailable.
#[derive(Debug)]
pub struct ChurnedPlatform<'a> {
    inner: &'a Platform,
    deleted: HashSet<usize>,
}

impl<'a> ChurnedPlatform<'a> {
    /// Hides a seeded `fraction` of the catalogue (deterministic in
    /// `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn new(inner: &'a Platform, fraction: f64, seed: u64) -> ChurnedPlatform<'a> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "deleted fraction must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let deleted = (0..inner.catalogue_size())
            .filter(|_| rng.gen::<f64>() < fraction)
            .collect();
        ChurnedPlatform { inner, deleted }
    }

    /// Number of hidden videos.
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }

    /// Returns `true` if the video at `index` is hidden.
    pub fn is_deleted(&self, index: usize) -> bool {
        self.deleted.contains(&index)
    }
}

impl PlatformApi for ChurnedPlatform<'_> {
    /// Charts still list deleted videos (indexes lag deletions).
    fn top_videos(&self, country: CountryId, k: usize) -> Vec<String> {
        self.inner.top_videos(country, k)
    }

    /// Deleted videos are permanent 404s, like the real API.
    fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
        let truth = self.inner.ground_truth(key).ok_or(FetchError::NotFound)?;
        if self.deleted.contains(&truth.index) {
            return Err(FetchError::NotFound);
        }
        self.inner.fetch(key)
    }

    /// Related lists still reference deleted videos.
    fn related(&self, key: &str, k: usize) -> Result<Vec<String>, FetchError> {
        self.inner.related(key, k)
    }

    fn catalogue_size(&self) -> usize {
        self.inner.catalogue_size() - self.deleted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn platform() -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(1_000);
        Platform::generate(cfg)
    }

    #[test]
    fn deletion_rate_materializes() {
        let p = platform();
        let churned = ChurnedPlatform::new(&p, 0.2, 9);
        let share = churned.deleted_count() as f64 / 1_000.0;
        assert!((share - 0.2).abs() < 0.05, "deleted share {share}");
        assert_eq!(churned.catalogue_size(), 1_000 - churned.deleted_count());
    }

    #[test]
    fn deleted_videos_404_but_stay_listed() {
        let p = platform();
        let churned = ChurnedPlatform::new(&p, 0.3, 1);
        let deleted_idx = (0..1_000)
            .find(|&i| churned.is_deleted(i))
            .expect("30% deleted");
        let key = &p.video(deleted_idx).key;
        assert_eq!(
            churned.fetch(key),
            Err(FetchError::NotFound),
            "deleted video 404s"
        );
        assert!(p.fetch(key).is_ok(), "the base platform still has it");
        // Live videos fetch normally.
        let live_idx = (0..1_000)
            .find(|&i| !churned.is_deleted(i))
            .expect("some survive");
        assert!(churned.fetch(&p.video(live_idx).key).is_ok());
    }

    #[test]
    fn churn_is_seeded() {
        let p = platform();
        let a = ChurnedPlatform::new(&p, 0.1, 5);
        let b = ChurnedPlatform::new(&p, 0.1, 5);
        assert_eq!(a.deleted_count(), b.deleted_count());
        for i in 0..1_000 {
            assert_eq!(a.is_deleted(i), b.is_deleted(i));
        }
        let c = ChurnedPlatform::new(&p, 0.1, 6);
        let differs = (0..1_000).any(|i| a.is_deleted(i) != c.is_deleted(i));
        assert!(differs);
    }

    #[test]
    fn zero_churn_is_transparent() {
        let p = platform();
        let churned = ChurnedPlatform::new(&p, 0.0, 1);
        assert_eq!(churned.deleted_count(), 0);
        assert_eq!(churned.catalogue_size(), 1_000);
        assert!(churned.fetch(&p.video(0).key).is_ok());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_fraction_panics() {
        let p = platform();
        let _ = ChurnedPlatform::new(&p, 1.5, 1);
    }
}
