//! Inverted geographic index: what is watched *where*.
//!
//! The per-tag analysis answers "where is this tag viewed?"; a cache
//! operator asks the inverse: "which tags characterize this country?"
//! [`GeoTagIndex`] materializes both rankings per country:
//!
//! * **by views** — the tags with the most reconstructed views in the
//!   country (dominated by global tags, like the head of any chart),
//! * **by lift** — the tags most *over-represented* relative to the
//!   world traffic share (`share_in_country / country_traffic_share`),
//!   which surfaces the `favela`-like local signature tags.

use tagdist_dataset::TagId;
use tagdist_geo::{kernel, top_k_by, CountryId, GeoDist};
use tagdist_reconstruct::TagViewTable;

/// One scored tag in a country ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredTag {
    /// The tag.
    pub tag: TagId,
    /// Reconstructed views of the tag inside the country.
    pub views: f64,
    /// Over-representation: tag's in-country view share divided by
    /// the country's world traffic share.
    pub lift: f64,
}

/// Per-country tag rankings.
#[derive(Debug, Clone)]
pub struct GeoTagIndex {
    by_views: Vec<Vec<ScoredTag>>,
    by_lift: Vec<Vec<ScoredTag>>,
}

impl GeoTagIndex {
    /// Builds the index from the Eq. 3 table, keeping the top `k`
    /// tags per country per ranking.
    ///
    /// `min_views` and `min_videos` suppress noise: tags need at
    /// least that much total reconstructed view mass *and* that many
    /// carrying videos to enter the lift ranking (raw lift explodes
    /// for the folksonomy's single-video tags).
    ///
    /// # Panics
    ///
    /// Panics if `traffic` does not cover the table's world size.
    pub fn build(
        table: &TagViewTable,
        traffic: &GeoDist,
        k: usize,
        min_views: f64,
        min_videos: usize,
    ) -> GeoTagIndex {
        assert_eq!(
            table.country_count(),
            traffic.len(),
            "traffic and table must cover the same world"
        );
        let countries = table.country_count();
        let mut by_views: Vec<Vec<ScoredTag>> = vec![Vec::new(); countries];
        let mut by_lift: Vec<Vec<ScoredTag>> = vec![Vec::new(); countries];

        for (tag, views) in table.iter() {
            let total = kernel::sum(views);
            if total <= 0.0 {
                continue;
            }
            for (index, &v) in views.iter().enumerate() {
                if v <= 0.0 {
                    continue;
                }
                let country = CountryId::from_index(index);
                let share = v / total;
                let traffic_share = traffic.prob(country);
                let lift = if traffic_share > 0.0 {
                    share / traffic_share
                } else {
                    0.0
                };
                let scored = ScoredTag {
                    tag,
                    views: v,
                    lift,
                };
                by_views[country.index()].push(scored);
                if total >= min_views && table.video_count(tag) >= min_videos {
                    by_lift[country.index()].push(scored);
                }
            }
        }

        // Selection instead of a full sort: with vocabulary-sized
        // candidate lists and small k, select_nth + sorting k winners
        // beats sorting everything. The unique-tag tiebreak makes the
        // comparators total orders, so the rankings are identical to a
        // full sort's first k entries (ties included).
        for list in &mut by_views {
            let candidates = core::mem::take(list);
            *list = top_k_by(candidates, k, |a, b| {
                b.views.total_cmp(&a.views).then(a.tag.cmp(&b.tag))
            });
        }
        for list in &mut by_lift {
            let candidates = core::mem::take(list);
            *list = top_k_by(candidates, k, |a, b| {
                b.lift.total_cmp(&a.lift).then(a.tag.cmp(&b.tag))
            });
        }
        GeoTagIndex { by_views, by_lift }
    }

    /// Number of countries indexed.
    pub fn country_count(&self) -> usize {
        self.by_views.len()
    }

    /// The country's most-viewed tags, descending.
    ///
    /// # Panics
    ///
    /// Panics if `country` is out of range.
    pub fn top_by_views(&self, country: CountryId) -> &[ScoredTag] {
        &self.by_views[country.index()]
    }

    /// The country's signature tags (highest lift), descending.
    ///
    /// # Panics
    ///
    /// Panics if `country` is out of range.
    pub fn top_by_lift(&self, country: CountryId) -> &[ScoredTag] {
        &self.by_lift[country.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, CleanDataset, DatasetBuilder, RawPopularity};
    use tagdist_geo::CountryVec;
    use tagdist_reconstruct::Reconstruction;

    /// Country 0 has 80 % of traffic, country 1 has 20 %.
    fn traffic() -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(vec![8.0, 2.0])).unwrap()
    }

    fn setup() -> (CleanDataset, TagViewTable) {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        // "global" rides traffic; "niche" lives in the small country.
        b.push_video("g", 1_000, &["global"], pop(vec![61, 61]));
        b.push_video("n", 200, &["niche"], pop(vec![0, 61]));
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &traffic()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, table)
    }

    #[test]
    fn views_ranking_favours_the_global_tag() {
        let (clean, table) = setup();
        let index = GeoTagIndex::build(&table, &traffic(), 5, 0.0, 0);
        let c0 = CountryId::from_index(0);
        let top = index.top_by_views(c0);
        assert_eq!(clean.tags().name(top[0].tag), "global");
        // niche has zero views in country 0 → absent entirely.
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn lift_ranking_surfaces_the_signature_tag() {
        let (clean, table) = setup();
        let index = GeoTagIndex::build(&table, &traffic(), 5, 0.0, 0);
        let c1 = CountryId::from_index(1);
        let top = index.top_by_lift(c1);
        assert_eq!(clean.tags().name(top[0].tag), "niche");
        // niche: 100 % of its views in a country with 20 % traffic → lift 5.
        assert!((top[0].lift - 5.0).abs() < 1e-9, "lift {}", top[0].lift);
        // global: share == traffic share → lift 1.
        let global = top
            .iter()
            .find(|s| clean.tags().name(s.tag) == "global")
            .expect("global indexed");
        assert!((global.lift - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_views_suppresses_sparse_tags_from_lift() {
        let (clean, table) = setup();
        let index = GeoTagIndex::build(&table, &traffic(), 5, 500.0, 0);
        let c1 = CountryId::from_index(1);
        // niche (200 total views) is filtered from lift…
        assert!(index
            .top_by_lift(c1)
            .iter()
            .all(|s| clean.tags().name(s.tag) != "niche"));
        // …but still present in the views ranking.
        assert!(index
            .top_by_views(c1)
            .iter()
            .any(|s| clean.tags().name(s.tag) == "niche"));
    }

    #[test]
    fn min_videos_suppresses_singleton_tags_from_lift() {
        let (clean, table) = setup();
        let index = GeoTagIndex::build(&table, &traffic(), 5, 0.0, 2);
        // Both tags are single-video → lift rankings are empty…
        for c in 0..index.country_count() {
            assert!(index.top_by_lift(CountryId::from_index(c)).is_empty());
        }
        // …while views rankings are untouched.
        assert!(!index.top_by_views(CountryId::from_index(0)).is_empty());
        let _ = clean;
    }

    #[test]
    fn k_truncates_rankings() {
        let (_, table) = setup();
        let index = GeoTagIndex::build(&table, &traffic(), 1, 0.0, 0);
        for c in 0..index.country_count() {
            assert!(index.top_by_views(CountryId::from_index(c)).len() <= 1);
            assert!(index.top_by_lift(CountryId::from_index(c)).len() <= 1);
        }
    }

    /// Satellite fixture: the selection-based rankings must equal the
    /// full-sort rankings entry for entry — including tied scores,
    /// which the unique-tag tiebreak orders deterministically.
    #[test]
    fn top_k_selection_matches_full_sort_including_ties() {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        // 30 single-tag videos; groups of 3 share identical view
        // totals and identical charts → exact score ties in both
        // rankings.
        for i in 0..30u64 {
            let tag = format!("t{i:02}");
            let views = 100 * (i / 3 + 1);
            b.push_video(&format!("v{i}"), views, &[tag.as_str()], pop(vec![40, 20]));
        }
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &traffic()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        // k >= candidate count degenerates to exactly a full sort.
        let full = GeoTagIndex::build(&table, &traffic(), usize::MAX, 0.0, 0);
        for k in [1, 2, 3, 4, 7, 29, 30, 31] {
            let pruned = GeoTagIndex::build(&table, &traffic(), k, 0.0, 0);
            for c in 0..pruned.country_count() {
                let c = CountryId::from_index(c);
                let all_views = full.top_by_views(c);
                let all_lift = full.top_by_lift(c);
                assert_eq!(
                    pruned.top_by_views(c),
                    &all_views[..k.min(all_views.len())],
                    "views ranking diverged at k={k}"
                );
                assert_eq!(
                    pruned.top_by_lift(c),
                    &all_lift[..k.min(all_lift.len())],
                    "lift ranking diverged at k={k}"
                );
            }
        }
        let _ = clean;
    }

    #[test]
    #[should_panic(expected = "same world")]
    fn mismatched_traffic_panics() {
        let (_, table) = setup();
        let _ = GeoTagIndex::build(&table, &GeoDist::uniform(9), 3, 0.0, 0);
    }
}
