//! Tag geo-distribution analytics — the paper's observations made
//! quantitative, plus the predictive machinery its conclusion
//! conjectures.
//!
//! §3 of the paper reports a *manual* analysis of `views(t)`:
//! > “some tags are mainly viewed in particular countries, as the tag
//! > `favela` […], while others are more uniformly distributed, as the
//! > tag `pop` […]. This observation leads us to conjecture that the
//! > geographic distribution of a video's views might be strongly
//! > related to that of its associated tags.”
//!
//! This crate turns that into measurable machinery:
//!
//! * [`TagProfile`] — per-tag spread metrics (normalized entropy,
//!   Gini, top-country share, JS divergence from the world traffic
//!   distribution) over the Eq. 3 aggregates,
//! * [`classify()`](classify()) — a local / regional / global taxonomy with
//!   explicit thresholds (Figs. 2–3 as a decision rule),
//! * [`similarity`] — tag–tag distribution distance and co-occurrence,
//! * [`predict`] — the conjecture itself: estimate a video's
//!   geographic view distribution from its tags alone (leave-one-out),
//!   evaluated against the reconstruction and against a traffic-prior
//!   baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod classify;
pub mod cluster;
pub mod index;
pub mod predict;
pub mod profile;
pub mod similarity;
pub mod smoothing;

pub use classify::{
    classify, classify_distribution, classify_measures, ClassifyThresholds, Locality,
    LocalitySummary,
};
pub use cluster::TagClusters;
pub use index::{GeoTagIndex, ScoredTag};
pub use predict::{LocalityBreakdown, PredictionEvaluation, Predictor};
pub use profile::{profiles, TagProfile};
pub use similarity::{co_tags, most_similar, CoTag};
pub use smoothing::SmoothedPredictor;
