//! Tag–tag relationships: distributional similarity and
//! co-occurrence.
//!
//! Two tags can be related in two distinct senses that the caching
//! application treats differently: they can be *viewed in the same
//! places* (distributional similarity — useful to pool sparse tags) or
//! they can be *attached to the same videos* (co-occurrence — useful
//! to smooth a video's tag-mixture prediction).

use std::collections::HashMap;

use tagdist_dataset::{CleanDataset, TagId};

use crate::profile::TagProfile;

/// A co-occurring tag with its joint video count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoTag {
    /// The other tag.
    pub tag: TagId,
    /// Number of retained videos carrying both tags.
    pub joint_videos: usize,
}

/// Tags co-occurring with `tag` on retained videos, most frequent
/// first (ties by id).
pub fn co_tags(clean: &CleanDataset, tag: TagId) -> Vec<CoTag> {
    let mut counts: HashMap<TagId, usize> = HashMap::new();
    for &pos in clean.videos_with_tag(tag) {
        for &other in clean.tags_of(pos as usize) {
            if other != tag {
                *counts.entry(other).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<CoTag> = counts
        .into_iter()
        .map(|(tag, joint_videos)| CoTag { tag, joint_videos })
        .collect();
    out.sort_by(|a, b| b.joint_videos.cmp(&a.joint_videos).then(a.tag.cmp(&b.tag)));
    out
}

/// The `k` profiles geographically most similar to `target`
/// (smallest JS divergence between view distributions), excluding the
/// target itself.
///
/// Returns `(profile index, js divergence)` pairs ascending by
/// divergence.
#[expect(
    clippy::expect_used,
    clippy::missing_panics_doc,
    reason = "profiles built over one dataset cover the same world"
)]
pub fn most_similar(profiles: &[TagProfile], target: &TagProfile, k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| p.tag != target.tag)
        .map(|(i, p)| {
            let js = target
                .dist
                .js_divergence(&p.dist)
                .expect("profiles cover the same world");
            (i, js)
        })
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::{CountryVec, GeoDist};
    use tagdist_reconstruct::{Reconstruction, TagViewTable};

    fn setup() -> (CleanDataset, Vec<TagProfile>) {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        b.push_video("a", 100, &["samba", "brasil", "musica"], pop(vec![0, 61]));
        b.push_video("b", 100, &["samba", "brasil"], pop(vec![0, 61]));
        b.push_video("c", 100, &["indie", "musica"], pop(vec![61, 0]));
        let clean = filter(&b.build());
        let traffic = GeoDist::from_counts(&CountryVec::from_values(vec![1.0, 1.0])).unwrap();
        let recon = Reconstruction::compute(&clean, &traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let profiles = crate::profile::profiles(&clean, &table, &traffic, 1);
        (clean, profiles)
    }

    #[test]
    fn co_tags_count_joint_videos() {
        let (clean, _) = setup();
        let samba = clean.tags().id("samba").unwrap();
        let co = co_tags(&clean, samba);
        assert_eq!(co.len(), 2);
        assert_eq!(clean.tags().name(co[0].tag), "brasil");
        assert_eq!(co[0].joint_videos, 2);
        assert_eq!(clean.tags().name(co[1].tag), "musica");
        assert_eq!(co[1].joint_videos, 1);
    }

    #[test]
    fn co_tags_of_lonely_tag_is_empty() {
        let mut b = DatasetBuilder::new(2);
        b.push_video("a", 1, &["solo"], RawPopularity::decode(vec![61, 0], 2));
        let clean = filter(&b.build());
        let solo = clean.tags().id("solo").unwrap();
        assert!(co_tags(&clean, solo).is_empty());
    }

    #[test]
    fn most_similar_finds_the_geographic_twin() {
        let (clean, profiles) = setup();
        let samba = profiles
            .iter()
            .find(|p| p.name == "samba")
            .expect("samba profiled");
        let near = most_similar(&profiles, samba, 2);
        assert_eq!(near.len(), 2);
        // brasil has exactly the same distribution as samba.
        assert_eq!(profiles[near[0].0].name, "brasil");
        assert!(near[0].1 < 1e-9);
        // divergences ascend.
        assert!(near[0].1 <= near[1].1);
        let _ = clean;
    }

    #[test]
    fn most_similar_excludes_self_and_respects_k() {
        let (_, profiles) = setup();
        let target = &profiles[0];
        let near = most_similar(&profiles, target, 100);
        assert_eq!(near.len(), profiles.len() - 1);
        assert!(near.iter().all(|&(i, _)| profiles[i].tag != target.tag));
        assert_eq!(most_similar(&profiles, target, 1).len(), 1);
        assert!(most_similar(&[], target, 3).is_empty());
    }
}
