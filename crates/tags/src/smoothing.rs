//! Evidence-weighted smoothing for tag predictions.
//!
//! The raw tag-mixture predictor treats a tag backed by three views
//! and one backed by three million identically. With 70 % of the
//! vocabulary used once (the folksonomy long tail of §2), raw
//! predictions for sparsely-tagged videos are noise. The standard fix
//! is empirical-Bayes shrinkage: blend the tag mixture with the
//! traffic prior in proportion to how much view mass actually backs
//! it,
//!
//! ```text
//! predicted' = m/(m+k) · tag_mixture + k/(m+k) · prior
//! ```
//!
//! where `m` is the evidence mass (views behind the mixture after
//! leave-one-out exclusion) and `k` the shrinkage strength in view
//! units (`k = 0` disables smoothing, `k → ∞` collapses to the
//! prior).

use tagdist_dataset::TagId;
use tagdist_geo::{kernel, GeoDist};
use tagdist_reconstruct::TagViewTable;

/// Tag-mixture predictor with empirical-Bayes shrinkage to the prior.
#[derive(Debug, Clone, Copy)]
pub struct SmoothedPredictor<'a> {
    table: &'a TagViewTable,
    prior: &'a GeoDist,
    shrinkage: f64,
}

impl<'a> SmoothedPredictor<'a> {
    /// Creates a predictor with shrinkage strength `shrinkage` (in
    /// view units; a good default is the median per-tag view count).
    ///
    /// # Panics
    ///
    /// Panics if `shrinkage` is negative or not finite.
    pub fn new(
        table: &'a TagViewTable,
        prior: &'a GeoDist,
        shrinkage: f64,
    ) -> SmoothedPredictor<'a> {
        assert!(
            shrinkage.is_finite() && shrinkage >= 0.0,
            "shrinkage must be a non-negative view count"
        );
        SmoothedPredictor {
            table,
            prior,
            shrinkage,
        }
    }

    /// The shrinkage strength.
    pub fn shrinkage(&self) -> f64 {
        self.shrinkage
    }

    /// Predicts a video's view distribution from its tags, shrunk
    /// towards the prior by evidence mass. Semantics of `own_views`
    /// match [`Predictor::predict`](crate::Predictor::predict).
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "positive evidence normalizes and the table shares the prior's world"
    )]
    pub fn predict(&self, tags: &[TagId], own_views: Option<&[f64]>) -> GeoDist {
        let mut mix = vec![0.0; self.table.country_count()];
        for &tag in tags {
            let Some(views) = self.table.views(tag) else {
                continue;
            };
            match own_views {
                None => kernel::add_assign(&mut mix, views),
                Some(own) => kernel::add_clamped_diff(&mut mix, views, own),
            }
        }
        let evidence = kernel::sum(&mix);
        if evidence <= 0.0 {
            return self.prior.clone();
        }
        let tag_dist = GeoDist::from_slice(&mix).expect("positive evidence normalizes");
        if self.shrinkage == 0.0 {
            return tag_dist;
        }
        let weight = evidence / (evidence + self.shrinkage);
        tag_dist
            .mix(self.prior, weight)
            .expect("predictor and prior cover the same world")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, CleanDataset, DatasetBuilder, RawPopularity};
    use tagdist_reconstruct::Reconstruction;

    /// Tag "heavy" is backed by 1M views in country 0; tag "thin" by
    /// 10 views in country 1.
    fn setup() -> (CleanDataset, TagViewTable, GeoDist) {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        b.push_video("h", 1_000_000, &["heavy"], pop(vec![61, 0]));
        b.push_video("t", 10, &["thin"], pop(vec![0, 61]));
        let clean = filter(&b.build());
        let prior = GeoDist::uniform(2);
        let recon = Reconstruction::compute(&clean, &prior).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, table, prior)
    }

    fn c(i: usize) -> tagdist_geo::CountryId {
        tagdist_geo::CountryId::from_index(i)
    }

    #[test]
    fn zero_shrinkage_matches_raw_predictor() {
        let (clean, table, prior) = setup();
        let smoothed = SmoothedPredictor::new(&table, &prior, 0.0);
        let raw = crate::Predictor::new(&table, &prior);
        for name in ["heavy", "thin"] {
            let tag = clean.tags().id(name).unwrap();
            assert_eq!(smoothed.predict(&[tag], None), raw.predict(&[tag], None));
        }
        assert_eq!(smoothed.shrinkage(), 0.0);
    }

    #[test]
    fn sparse_tags_shrink_hard_heavy_tags_barely() {
        let (clean, table, prior) = setup();
        let smoothed = SmoothedPredictor::new(&table, &prior, 1_000.0);
        let heavy = clean.tags().id("heavy").unwrap();
        let thin = clean.tags().id("thin").unwrap();
        // Heavy: evidence 1e6 vs k=1e3 → stays ~pure (P[c0] ≈ 1).
        let h = smoothed.predict(&[heavy], None);
        assert!(h.prob(c(0)) > 0.99, "heavy {}", h.prob(c(0)));
        // Thin: evidence 10 vs k=1e3 → nearly the uniform prior.
        let t = smoothed.predict(&[thin], None);
        assert!(
            (t.prob(c(1)) - 0.5).abs() < 0.01,
            "thin {} should sit near the prior",
            t.prob(c(1))
        );
        // But still leaning the right way.
        assert!(t.prob(c(1)) > 0.5);
    }

    #[test]
    fn no_evidence_returns_the_prior_exactly() {
        let (_, table, prior) = setup();
        let smoothed = SmoothedPredictor::new(&table, &prior, 100.0);
        let ghost = TagId::from_index(999);
        assert_eq!(smoothed.predict(&[ghost], None), prior);
        assert_eq!(smoothed.predict(&[], None), prior);
    }

    #[test]
    fn leave_one_out_composes_with_shrinkage() {
        let (clean, table, prior) = setup();
        let smoothed = SmoothedPredictor::new(&table, &prior, 100.0);
        // "thin"'s only video excluded → zero evidence → prior.
        let pos = clean.iter().position(|v| v.key == "t").unwrap();
        let recon = Reconstruction::compute(&clean, &prior).unwrap();
        let video = clean.get(pos).unwrap();
        let d = smoothed.predict(video.tags, recon.views(pos));
        assert_eq!(d, prior);
    }

    #[test]
    fn shrinkage_is_monotone_in_k() {
        let (clean, table, prior) = setup();
        let thin = clean.tags().id("thin").unwrap();
        let mut last_gap = f64::INFINITY;
        for k in [0.0, 10.0, 100.0, 10_000.0] {
            let smoothed = SmoothedPredictor::new(&table, &prior, k);
            let d = smoothed.predict(&[thin], None);
            let gap = (d.prob(c(1)) - prior.prob(c(1))).abs();
            assert!(gap <= last_gap + 1e-12, "k={k}: gap {gap} grew");
            last_gap = gap;
        }
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn negative_shrinkage_is_rejected() {
        let (_, table, prior) = setup();
        let _ = SmoothedPredictor::new(&table, &prior, -1.0);
    }
}
