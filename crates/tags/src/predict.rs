//! Tag-based prediction of a video's geographic view distribution —
//! the paper's closing conjecture, implemented and evaluated.
//!
//! > “this conjecture suggests that tags might help implement a form
//! > of proactive geographic caching, i.e. predicting where a video
//! > will be consumed, based on the geographic study of its embodied
//! > tags”
//!
//! [`Predictor`] estimates a video's view distribution as the
//! views-weighted mixture of its tags' Eq. 3 aggregates. When scoring
//! a video that is itself part of the corpus, the video's own
//! contribution is first subtracted from each of its tags
//! (leave-one-out), otherwise the evaluation would be circular.

use core::fmt;

use tagdist_dataset::{CleanDataset, TagId};
use tagdist_geo::{kernel, GeoDist, GeoError};
use tagdist_obs::SpanGuard;
use tagdist_par::Pool;
use tagdist_reconstruct::{ErrorSummary, Reconstruction, TagViewTable};

/// Predicts per-video geographic view distributions from tags.
///
/// # Example
///
/// ```no_run
/// # use tagdist_geo::GeoDist;
/// # use tagdist_reconstruct::TagViewTable;
/// # use tagdist_tags::Predictor;
/// # fn demo(table: &TagViewTable, traffic: &GeoDist,
/// #         tags: &[tagdist_dataset::TagId]) {
/// let predictor = Predictor::new(table, traffic);
/// // A brand-new upload: no own views to exclude.
/// let predicted = predictor.predict(tags, None);
/// println!("most likely audience: {:?}", predicted.top_country());
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Predictor<'a> {
    table: &'a TagViewTable,
    fallback: &'a GeoDist,
}

impl<'a> Predictor<'a> {
    /// Creates a predictor over a tag-view table with a fallback
    /// distribution (normally the world traffic prior) for videos
    /// whose tags carry no usable signal.
    pub fn new(table: &'a TagViewTable, fallback: &'a GeoDist) -> Predictor<'a> {
        Predictor { table, fallback }
    }

    /// Predicts the view distribution of a video carrying `tags`.
    ///
    /// `own_views` is the video's *own* (reconstructed) view row;
    /// pass `Some` when the video contributed to the table so its mass
    /// is excluded from each tag (leave-one-out), `None` for a genuinely
    /// new video (the proactive-caching deployment scenario).
    ///
    /// Returns the fallback when the tags' remaining mass is zero —
    /// e.g. a video whose every tag is unique to it.
    pub fn predict(&self, tags: &[TagId], own_views: Option<&[f64]>) -> GeoDist {
        let mut mix = vec![0.0; self.table.country_count()];
        self.predict_into(tags, own_views, &mut mix)
            .unwrap_or_else(|_| self.fallback.clone())
    }

    /// Allocation-free variant of [`predict`](Predictor::predict):
    /// accumulates the tag mixture into a caller-owned scratch buffer,
    /// so corpus-scale evaluation loops reuse one buffer instead of
    /// allocating per video. The buffer is reset (and resized if it
    /// belongs to a different world) before use; its contents on return
    /// are the raw un-normalized mixture.
    ///
    /// # Errors
    ///
    /// [`GeoError::ZeroMass`] when the tags carry no usable signal —
    /// the caller decides the fallback ([`predict`](Predictor::predict)
    /// substitutes the fallback prior).
    pub fn predict_into(
        &self,
        tags: &[TagId],
        own_views: Option<&[f64]>,
        mix: &mut Vec<f64>,
    ) -> Result<GeoDist, GeoError> {
        mix.clear();
        mix.resize(self.table.country_count(), 0.0);
        self.accumulate_mixture(tags, own_views, mix);
        GeoDist::from_slice(mix)
    }

    /// Writes the *normalized* prediction straight into a borrowed
    /// row (e.g. one [`CountryMatrix`](tagdist_geo::CountryMatrix)
    /// row), substituting the fallback probabilities when the tags
    /// carry no signal. Returns `true` when the tag mixture was used,
    /// `false` on fallback — no allocation either way.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not match the table's world size.
    pub fn predict_probs_into(
        &self,
        tags: &[TagId],
        own_views: Option<&[f64]>,
        row: &mut [f64],
    ) -> bool {
        assert_eq!(
            row.len(),
            self.table.country_count(),
            "row must cover the table's world"
        );
        row.fill(0.0);
        self.accumulate_mixture(tags, own_views, row);
        let mass = kernel::sum(row);
        if mass > 0.0 && mass.is_finite() {
            // Same normalization as GeoDist::from_slice (one hoisted
            // reciprocal), so probabilities are bit-identical to the
            // allocating path.
            kernel::scale(row, 1.0 / mass);
            true
        } else {
            row.copy_from_slice(self.fallback.as_vec().as_slice());
            false
        }
    }

    /// Accumulates the views-weighted tag mixture (Eq. 3 rows, with
    /// optional leave-one-out subtraction) into a zeroed buffer.
    fn accumulate_mixture(&self, tags: &[TagId], own_views: Option<&[f64]>, mix: &mut [f64]) {
        for &tag in tags {
            let Some(views) = self.table.views(tag) else {
                continue;
            };
            match own_views {
                None => kernel::add_assign(mix, views),
                // Subtract this video's contribution, clamping the
                // tiny negative residues quantization can leave.
                Some(own) => kernel::add_clamped_diff(mix, views, own),
            }
        }
    }

    /// The fallback distribution.
    pub fn fallback(&self) -> &GeoDist {
        self.fallback
    }
}

/// Outcome of evaluating the predictor on a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionEvaluation {
    /// Number of evaluated videos.
    pub n: usize,
    /// Videos that fell back to the prior (no usable tag signal).
    pub fallbacks: usize,
    /// JS divergence (bits) of the tag prediction from each video's
    /// actual distribution.
    pub predicted: ErrorSummary,
    /// JS divergence of the traffic-prior baseline from the actual
    /// distribution.
    pub baseline: ErrorSummary,
    /// Fraction of videos where the tag prediction strictly beats the
    /// baseline.
    pub win_rate: f64,
}

impl PredictionEvaluation {
    /// Leave-one-out evaluation of tag-based prediction over a whole
    /// filtered dataset.
    ///
    /// "Actual" is each video's *reconstructed* distribution — the
    /// same quantity the paper's pipeline would use, keeping this
    /// crate independent of the synthetic ground truth. (Experiment E6
    /// additionally scores against ground truth at the `tagdist`
    /// facade level.)
    ///
    /// # Panics
    ///
    /// Panics if `recon` does not align with `clean`.
    pub fn evaluate(
        clean: &CleanDataset,
        recon: &Reconstruction,
        table: &TagViewTable,
        baseline: &GeoDist,
    ) -> PredictionEvaluation {
        PredictionEvaluation::evaluate_with(&Pool::from_env(), clean, recon, table, baseline)
    }

    /// [`evaluate`](PredictionEvaluation::evaluate), instrumented:
    /// opens a `predict` child span of `parent` and records
    /// `predict.videos` and `predict.fallbacks` plus pool dispatch
    /// stats into its recorder.
    ///
    /// # Panics
    ///
    /// As for [`evaluate`](PredictionEvaluation::evaluate).
    pub fn evaluate_obs(
        clean: &CleanDataset,
        recon: &Reconstruction,
        table: &TagViewTable,
        baseline: &GeoDist,
        parent: &SpanGuard,
    ) -> PredictionEvaluation {
        let span = parent.child("predict");
        let obs = span.recorder().clone();
        let pool = Pool::from_env().with_obs(&obs);
        let eval = PredictionEvaluation::evaluate_with(&pool, clean, recon, table, baseline);
        obs.add("predict.videos", eval.n as u64);
        obs.add("predict.fallbacks", eval.fallbacks as u64);
        eval
    }

    /// [`evaluate`](PredictionEvaluation::evaluate) on an explicit
    /// pool.
    ///
    /// # Panics
    ///
    /// As for [`evaluate`](PredictionEvaluation::evaluate).
    #[expect(
        clippy::expect_used,
        reason = "rows are aligned with the dataset and cover one shared world"
    )]
    pub fn evaluate_with(
        pool: &Pool,
        clean: &CleanDataset,
        recon: &Reconstruction,
        table: &TagViewTable,
        baseline: &GeoDist,
    ) -> PredictionEvaluation {
        assert_eq!(clean.len(), recon.len(), "reconstruction mismatch");
        let predictor = Predictor::new(table, baseline);
        // Leave-one-out scoring is embarrassingly parallel: chunk the
        // corpus across the pool, two scratch probability rows per
        // chunk — no per-video allocation anywhere on this path
        // (predict_probs_into + the slice JS divergence). Chunk
        // boundaries depend only on corpus length, so scores come back
        // in corpus order bit-identical at any thread count.
        let countries = table.country_count();
        let scored = pool.par_chunks(clean.views_column(), |start, chunk| {
            let mut mix = vec![0.0; countries];
            let mut actual = vec![0.0; countries];
            let mut out = Vec::with_capacity(chunk.len());
            for offset in 0..chunk.len() {
                let pos = start + offset;
                let own = recon.views(pos).expect("aligned reconstruction");
                // Normalize the video's own row exactly as
                // GeoDist::from_slice would (same sum, same hoisted
                // reciprocal — bit-identical probabilities).
                actual.copy_from_slice(own);
                let mass = kernel::sum(&actual);
                assert!(mass > 0.0 && mass.is_finite(), "rows carry mass");
                kernel::scale(&mut actual, 1.0 / mass);
                // A zero-mass mixture substitutes the baseline's
                // probabilities — exactly the allocating loop's
                // fallback case (prediction == baseline prior).
                let fell_back =
                    !predictor.predict_probs_into(clean.tags_of(pos), Some(own), &mut mix);
                let p = tagdist_geo::js_divergence_probs(&mix, &actual).expect("same world");
                let b = tagdist_geo::js_divergence_probs(baseline.as_vec().as_slice(), &actual)
                    .expect("same world");
                out.push((p, b, fell_back));
            }
            out
        });
        let mut js_pred = Vec::with_capacity(clean.len());
        let mut js_base = Vec::with_capacity(clean.len());
        let mut wins = 0usize;
        let mut fallbacks = 0usize;
        for (p, b, fell_back) in scored.into_iter().flatten() {
            if fell_back {
                fallbacks += 1;
            }
            if p < b {
                wins += 1;
            }
            js_pred.push(p);
            js_base.push(b);
        }
        let n = clean.len();
        PredictionEvaluation {
            n,
            fallbacks,
            predicted: ErrorSummary::from_samples(js_pred),
            baseline: ErrorSummary::from_samples(js_base),
            win_rate: if n == 0 { 0.0 } else { wins as f64 / n as f64 },
        }
    }
}

/// Prediction quality broken down by the locality class of each
/// video's dominant tag — does the conjecture hold equally for
/// `favela`-style and `pop`-style content?
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityBreakdown {
    /// One row per class: (class, videos, predicted-JS summary,
    /// baseline-JS summary).
    pub rows: Vec<(crate::Locality, usize, ErrorSummary, ErrorSummary)>,
}

impl LocalityBreakdown {
    /// Evaluates leave-one-out prediction per locality class.
    ///
    /// A video's class is that of its *dominant* tag — the carried tag
    /// with the most aggregated views. Videos whose every tag lacks an
    /// Eq. 3 row are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `recon` does not align with `clean`.
    #[expect(
        clippy::expect_used,
        reason = "rows are aligned with the dataset and cover one shared world"
    )]
    pub fn evaluate(
        clean: &CleanDataset,
        recon: &Reconstruction,
        table: &TagViewTable,
        traffic: &GeoDist,
        thresholds: &crate::ClassifyThresholds,
    ) -> LocalityBreakdown {
        use std::collections::HashMap;
        assert_eq!(clean.len(), recon.len(), "reconstruction mismatch");
        let predictor = Predictor::new(table, traffic);
        let mut class_cache: HashMap<TagId, crate::Locality> = HashMap::new();
        let mut samples: HashMap<crate::Locality, (Vec<f64>, Vec<f64>)> = HashMap::new();

        for (pos, video) in clean.iter().enumerate() {
            let Some(&dominant) = video
                .tags
                .iter()
                .max_by(|&&a, &&b| table.total_views(a).total_cmp(&table.total_views(b)))
                .filter(|&&t| table.views(t).is_some())
            else {
                continue;
            };
            let class = *class_cache.entry(dominant).or_insert_with(|| {
                let dist = table
                    .distribution(dominant)
                    .expect("dominant tag has a row");
                crate::classify::classify_distribution(&dist, traffic, thresholds)
            });
            let own = recon.views(pos).expect("aligned reconstruction");
            let actual = recon.distribution(pos).expect("rows carry mass");
            let predicted = predictor.predict(video.tags, Some(own));
            let entry = samples.entry(class).or_default();
            entry
                .0
                .push(predicted.js_divergence(&actual).expect("same world"));
            entry
                .1
                .push(traffic.js_divergence(&actual).expect("same world"));
        }

        let mut rows: Vec<_> = samples
            .into_iter()
            .map(|(class, (pred, base))| {
                let n = pred.len();
                (
                    class,
                    n,
                    ErrorSummary::from_samples(pred),
                    ErrorSummary::from_samples(base),
                )
            })
            .collect();
        rows.sort_by_key(|&(class, ..)| match class {
            crate::Locality::Local => 0,
            crate::Locality::Regional => 1,
            crate::Locality::Global => 2,
        });
        LocalityBreakdown { rows }
    }
}

impl fmt::Display for LocalityBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (class, n, pred, base) in &self.rows {
            writeln!(
                f,
                "{class:<9} n={n:<7} prediction JS mean {:.4} vs baseline {:.4}",
                pred.mean, base.mean
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for PredictionEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "n = {} ({} fallbacks)", self.n, self.fallbacks)?;
        writeln!(f, "tag prediction JS: {}", self.predicted)?;
        writeln!(f, "baseline JS:       {}", self.baseline)?;
        write!(f, "win rate:          {:.1}%", 100.0 * self.win_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};

    fn world2() -> GeoDist {
        GeoDist::uniform(2)
    }

    /// Corpus where tag "left" means country 0 and tag "right" country 1.
    fn setup() -> (CleanDataset, Reconstruction, TagViewTable) {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        b.push_video("l1", 100, &["left"], pop(vec![61, 0]));
        b.push_video("l2", 200, &["left"], pop(vec![61, 0]));
        b.push_video("l3", 300, &["left"], pop(vec![61, 6]));
        b.push_video("r1", 100, &["right"], pop(vec![0, 61]));
        b.push_video("r2", 400, &["right"], pop(vec![6, 61]));
        b.push_video("u1", 50, &["only-here"], pop(vec![61, 20]));
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &world2()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, recon, table)
    }

    #[test]
    fn prediction_follows_the_tags() {
        let (clean, _, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        let left = clean.tags().id("left").unwrap();
        let d = p.predict(&[left], None);
        assert!(d.prob(tagdist_geo::CountryId::from_index(0)) > 0.9);
        let right = clean.tags().id("right").unwrap();
        let d = p.predict(&[right], None);
        assert!(d.prob(tagdist_geo::CountryId::from_index(1)) > 0.9);
    }

    #[test]
    fn mixture_blends_tags_by_views() {
        let (clean, _, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        let left = clean.tags().id("left").unwrap();
        let right = clean.tags().id("right").unwrap();
        let d = p.predict(&[left, right], None);
        let c0 = d.prob(tagdist_geo::CountryId::from_index(0));
        assert!(c0 > 0.3 && c0 < 0.7, "blended share {c0}");
    }

    #[test]
    fn leave_one_out_excludes_own_mass() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        // "only-here" is carried by a single video: leave-one-out
        // removes everything → fallback.
        let pos = clean.iter().position(|v| v.key == "u1").unwrap();
        let video = clean.get(pos).unwrap();
        let d = p.predict(video.tags, recon.views(pos));
        assert_eq!(d, traffic);
        // Without exclusion the prediction is the video's own
        // distribution, not the fallback.
        let d = p.predict(video.tags, None);
        assert_ne!(d, traffic);
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let (_, _, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        let ghost = TagId::from_index(999);
        let d = p.predict(&[ghost], None);
        assert_eq!(d, traffic, "no signal → fallback");
        assert_eq!(p.fallback(), &traffic);
    }

    #[test]
    fn predict_into_reuses_buffer_and_matches_predict() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        // Deliberately wrong-sized buffer: predict_into must fix it up.
        let mut mix = vec![0.0; 5];
        for (pos, video) in clean.iter().enumerate() {
            let own = recon.views(pos);
            let via_buffer = p
                .predict_into(video.tags, own, &mut mix)
                .unwrap_or_else(|_| traffic.clone());
            assert_eq!(via_buffer, p.predict(video.tags, own), "{}", video.key);
            assert_eq!(mix.len(), 2, "buffer adopts the table's world");
        }
        // The single-carrier video has no leave-one-out signal left.
        let pos = clean.iter().position(|v| v.key == "u1").unwrap();
        let video = clean.get(pos).unwrap();
        assert!(p
            .predict_into(video.tags, recon.views(pos), &mut mix)
            .is_err());
    }

    #[test]
    fn predict_probs_into_matches_predict_bitwise() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let p = Predictor::new(&table, &traffic);
        let mut row = vec![0.0; table.country_count()];
        for (pos, video) in clean.iter().enumerate() {
            let own = recon.views(pos);
            let used_tags = p.predict_probs_into(video.tags, own, &mut row);
            let expected = p.predict(video.tags, own);
            assert_eq!(
                row.as_slice(),
                expected.as_vec().as_slice(),
                "{}",
                video.key
            );
            assert_eq!(used_tags, video.key != "u1", "{}", video.key);
        }
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let baseline = PredictionEvaluation::evaluate(&clean, &recon, &table, &traffic);
        for threads in ["1", "2", "8"] {
            std::env::set_var(tagdist_par::THREADS_ENV, threads);
            let eval = PredictionEvaluation::evaluate(&clean, &recon, &table, &traffic);
            assert_eq!(eval, baseline, "threads={threads}");
        }
        std::env::remove_var(tagdist_par::THREADS_ENV);
    }

    #[test]
    fn evaluation_beats_baseline_on_polarized_corpus() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let eval = PredictionEvaluation::evaluate(&clean, &recon, &table, &traffic);
        assert_eq!(eval.n, 6);
        assert_eq!(eval.fallbacks, 1); // u1
        assert!(
            eval.predicted.mean < eval.baseline.mean,
            "prediction {} vs baseline {}",
            eval.predicted.mean,
            eval.baseline.mean
        );
        assert!(eval.win_rate > 0.5);
        let text = eval.to_string();
        assert!(text.contains("win rate"));
    }

    #[test]
    fn empty_corpus_evaluates_to_zero() {
        let clean = filter(&DatasetBuilder::new(2).build());
        let recon = Reconstruction::compute(&clean, &world2()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let eval = PredictionEvaluation::evaluate(&clean, &recon, &table, &world2());
        assert_eq!(eval.n, 0);
        assert_eq!(eval.win_rate, 0.0);
    }

    #[test]
    fn locality_breakdown_separates_classes() {
        let (clean, recon, table) = setup();
        let traffic = world2();
        let thresholds = crate::ClassifyThresholds::default();
        let breakdown = LocalityBreakdown::evaluate(&clean, &recon, &table, &traffic, &thresholds);
        let total: usize = breakdown.rows.iter().map(|&(_, n, ..)| n).sum();
        assert_eq!(total, 6, "every video has a dominant tag with a row");
        // "left"/"right" concentrate in one of two countries → local.
        assert!(breakdown
            .rows
            .iter()
            .any(|&(class, n, ..)| class == crate::Locality::Local && n >= 5));
        let text = breakdown.to_string();
        assert!(text.contains("prediction JS"));
    }

    #[test]
    fn locality_breakdown_on_empty_corpus_is_empty() {
        let clean = filter(&DatasetBuilder::new(2).build());
        let recon = Reconstruction::compute(&clean, &world2()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let breakdown = LocalityBreakdown::evaluate(
            &clean,
            &recon,
            &table,
            &world2(),
            &crate::ClassifyThresholds::default(),
        );
        assert!(breakdown.rows.is_empty());
    }

    /// End-to-end: on the synthetic platform, tags must predict
    /// geography better than the traffic prior — the paper's central
    /// conjecture, verified.
    #[test]
    fn conjecture_holds_on_synthetic_platform() {
        use tagdist_crawler::{crawl, CrawlConfig};
        use tagdist_ytsim::{Platform, WorldConfig};

        let platform = Platform::generate(WorldConfig::tiny());
        let mut ccfg = CrawlConfig::default();
        ccfg.with_budget(800);
        let outcome = crawl(&platform, &ccfg);
        let clean = filter(&outcome.dataset);
        let traffic = platform.true_traffic();
        let recon = Reconstruction::compute(&clean, traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let eval = PredictionEvaluation::evaluate(&clean, &recon, &table, traffic);
        assert!(
            eval.predicted.mean < eval.baseline.mean,
            "prediction {} vs baseline {}",
            eval.predicted.mean,
            eval.baseline.mean
        );
        assert!(eval.win_rate > 0.6, "win rate {}", eval.win_rate);
    }
}
