//! Co-occurrence clustering of tags.
//!
//! The paper motivates tags as carriers of "elements of a video's
//! semantic". Those semantics are redundant: `favela`, `funk` and
//! `baile` ride the same videos. Clustering tags by co-occurrence
//! (union-find over strong Jaccard edges) recovers topic-like groups,
//! which serve two purposes downstream:
//!
//! * **robustness** — a cluster's pooled geographic distribution is
//!   better estimated than any single sparse member's, and
//! * **interpretation** — the local/global census can be read at the
//!   topic level instead of the raw 700k-tag vocabulary.

use std::collections::HashMap;

use tagdist_dataset::{CleanDataset, TagId};

/// Disjoint-set forest over dense tag indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            core::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            core::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            core::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// Tag clusters induced by strong co-occurrence.
#[derive(Debug, Clone)]
pub struct TagClusters {
    /// Cluster index per tag (`None` for tags below the frequency
    /// threshold or never retained).
    assignment: Vec<Option<u32>>,
    /// Member lists, largest cluster first.
    clusters: Vec<Vec<TagId>>,
}

impl TagClusters {
    /// Clusters the tags of a filtered dataset.
    ///
    /// Only tags carried by at least `min_videos` retained videos
    /// participate (the folksonomy tail would otherwise produce one
    /// singleton per video). Two tags are linked when they share at
    /// least `min_joint` videos **and** their Jaccard overlap
    /// `|A∩B| / |A∪B|` is at least `min_jaccard`; clusters are the
    /// connected components of that link graph.
    ///
    /// # Panics
    ///
    /// Panics if `min_jaccard` is outside `[0, 1]`.
    pub fn build(
        clean: &CleanDataset,
        min_videos: usize,
        min_joint: usize,
        min_jaccard: f64,
    ) -> TagClusters {
        assert!(
            (0.0..=1.0).contains(&min_jaccard),
            "min_jaccard must be in [0, 1]"
        );
        let tag_count = clean.tags().len();
        // Frequent-tag filter.
        let counts: Vec<usize> = (0..tag_count)
            .map(|i| clean.videos_with_tag(TagId::from_index(i)).len())
            .collect();
        let eligible: Vec<bool> = counts.iter().map(|&c| c >= min_videos.max(1)).collect();

        // Pair counts over eligible tags.
        let mut joint: HashMap<(u32, u32), u32> = HashMap::new();
        for video in clean.iter() {
            let tags: Vec<u32> = video
                .tags
                .iter()
                .map(|t| t.index() as u32)
                .filter(|&t| eligible[t as usize])
                .collect();
            for (i, &a) in tags.iter().enumerate() {
                for &b in &tags[i + 1..] {
                    let key = if a < b { (a, b) } else { (b, a) };
                    *joint.entry(key).or_insert(0) += 1;
                }
            }
        }

        // Union strong edges in sorted pair order: the hash map's
        // iteration order is arbitrary, and union order decides which
        // member becomes a cluster's root.
        let mut edges: Vec<((u32, u32), u32)> = joint.iter().map(|(&k, &j)| (k, j)).collect();
        edges.sort_unstable();
        let mut forest = UnionFind::new(tag_count);
        for ((a, b), j) in edges {
            if (j as usize) < min_joint {
                continue;
            }
            let union_size = counts[a as usize] + counts[b as usize] - j as usize;
            if union_size == 0 {
                continue;
            }
            if j as f64 / union_size as f64 >= min_jaccard {
                forest.union(a, b);
            }
        }

        // Materialize clusters of eligible tags.
        let mut by_root: HashMap<u32, Vec<TagId>> = HashMap::new();
        for (i, &ok) in eligible.iter().enumerate() {
            if ok {
                by_root
                    .entry(forest.find(i as u32))
                    .or_default()
                    .push(TagId::from_index(i));
            }
        }
        let mut clusters: Vec<Vec<TagId>> = by_root.into_values().collect();
        for members in &mut clusters {
            members.sort();
        }
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));

        let mut assignment = vec![None; tag_count];
        for (ci, members) in clusters.iter().enumerate() {
            for &tag in members {
                assignment[tag.index()] = Some(ci as u32);
            }
        }
        TagClusters {
            assignment,
            clusters,
        }
    }

    /// Number of clusters (including singletons of eligible tags).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if no tags were eligible.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Cluster index of a tag, or `None` if it was below the
    /// frequency threshold.
    pub fn cluster_of(&self, tag: TagId) -> Option<usize> {
        self.assignment
            .get(tag.index())
            .copied()
            .flatten()
            .map(|c| c as usize)
    }

    /// Members of cluster `index`, sorted by tag id.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn members(&self, index: usize) -> &[TagId] {
        &self.clusters[index]
    }

    /// Iterates clusters, largest first.
    pub fn iter(&self) -> impl Iterator<Item = &[TagId]> {
        self.clusters.iter().map(Vec::as_slice)
    }

    /// Returns `true` when two tags landed in the same cluster.
    pub fn same_cluster(&self, a: TagId, b: TagId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};

    /// Two disjoint tag families: {samba, funk, baile} and
    /// {anime, manga}, plus a rare tag below threshold.
    fn corpus() -> CleanDataset {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        for i in 0..6 {
            b.push_video(
                &format!("br{i}"),
                100,
                &["samba", "funk", "baile"],
                pop(vec![0, 61]),
            );
        }
        for i in 0..6 {
            b.push_video(
                &format!("jp{i}"),
                100,
                &["anime", "manga"],
                pop(vec![61, 0]),
            );
        }
        b.push_video("rare", 10, &["hapax", "samba"], pop(vec![0, 61]));
        filter(&b.build())
    }

    fn id(clean: &CleanDataset, name: &str) -> TagId {
        clean.tags().id(name).unwrap()
    }

    #[test]
    fn families_cluster_separately() {
        let clean = corpus();
        let clusters = TagClusters::build(&clean, 2, 3, 0.5);
        let samba = id(&clean, "samba");
        let funk = id(&clean, "funk");
        let anime = id(&clean, "anime");
        let manga = id(&clean, "manga");
        assert!(clusters.same_cluster(samba, funk));
        assert!(clusters.same_cluster(anime, manga));
        assert!(!clusters.same_cluster(samba, anime));
        // Two multi-tag clusters.
        assert!(clusters.iter().filter(|c| c.len() > 1).count() == 2);
    }

    #[test]
    fn rare_tags_are_excluded() {
        let clean = corpus();
        let clusters = TagClusters::build(&clean, 2, 3, 0.5);
        let hapax = id(&clean, "hapax");
        assert_eq!(clusters.cluster_of(hapax), None);
        assert!(!clusters.same_cluster(hapax, id(&clean, "samba")));
    }

    #[test]
    fn jaccard_threshold_splits_weak_links() {
        let clean = corpus();
        // samba co-occurs with funk on 6 of samba's 7 videos →
        // jaccard 6/7 ≈ 0.86. A 0.95 threshold breaks every edge.
        let strict = TagClusters::build(&clean, 2, 3, 0.95);
        assert!(!strict.same_cluster(id(&clean, "samba"), id(&clean, "funk")));
        // anime/manga co-occur on all 6 videos of each → jaccard 1.0.
        assert!(strict.same_cluster(id(&clean, "anime"), id(&clean, "manga")));
    }

    #[test]
    fn min_joint_threshold_works() {
        let clean = corpus();
        let demanding = TagClusters::build(&clean, 2, 100, 0.1);
        // No pair shares 100 videos → all singletons.
        assert!(demanding.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn clusters_sort_largest_first() {
        let clean = corpus();
        let clusters = TagClusters::build(&clean, 2, 3, 0.5);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(clusters.members(0).len(), sizes[0]);
    }

    #[test]
    fn empty_dataset_builds_empty_clusters() {
        let clean = filter(&DatasetBuilder::new(2).build());
        let clusters = TagClusters::build(&clean, 1, 1, 0.1);
        assert!(clusters.is_empty());
        assert_eq!(clusters.len(), 0);
    }

    #[test]
    #[should_panic(expected = "min_jaccard")]
    fn bad_jaccard_panics() {
        let clean = corpus();
        let _ = TagClusters::build(&clean, 1, 1, 1.5);
    }

    #[test]
    fn build_is_deterministic() {
        let clean = corpus();
        let a = TagClusters::build(&clean, 2, 3, 0.5);
        let b = TagClusters::build(&clean, 2, 3, 0.5);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.members(i), b.members(i));
        }
    }
}
