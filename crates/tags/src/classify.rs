//! Local / regional / global tag taxonomy.
//!
//! Figs. 2–3 of the paper contrast two archetypes: tags that "follow
//! the world distribution of Youtube users" and tags "mostly viewed"
//! in one country. [`classify`] operationalizes that contrast with two
//! thresholds; everything in between is *regional* (e.g. a
//! language-group tag spanning Latin America).

use core::fmt;

use crate::profile::TagProfile;

/// The three locality classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// Mostly viewed in a single country (Fig. 3, `favela`).
    Local,
    /// Concentrated on a region or language group, but not one
    /// country.
    Regional,
    /// Follows the world traffic distribution (Fig. 2, `pop`).
    Global,
}

impl fmt::Display for Locality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Locality::Local => "local",
            Locality::Regional => "regional",
            Locality::Global => "global",
        })
    }
}

/// Decision thresholds for [`classify`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyThresholds {
    /// A tag is **local** when its top country holds at least this
    /// view share (paper's "mostly viewed in Brazil" ⇒ majority).
    pub local_top_share: f64,
    /// A tag is **global** when its JS divergence (bits) from the
    /// traffic distribution is at most this.
    pub global_max_js: f64,
}

impl Default for ClassifyThresholds {
    fn default() -> ClassifyThresholds {
        ClassifyThresholds {
            local_top_share: 0.5,
            global_max_js: 0.12,
        }
    }
}

/// Classifies a tag profile.
///
/// The local rule wins over the global rule (a tag whose single
/// country also dominates world traffic is still local).
pub fn classify(profile: &TagProfile, thresholds: &ClassifyThresholds) -> Locality {
    classify_measures(profile.top_share, profile.js_from_traffic, thresholds)
}

/// Classifies from the two raw measures, for callers that have a
/// distribution but no full [`TagProfile`].
pub fn classify_measures(
    top_share: f64,
    js_from_traffic: f64,
    thresholds: &ClassifyThresholds,
) -> Locality {
    if top_share >= thresholds.local_top_share {
        Locality::Local
    } else if js_from_traffic <= thresholds.global_max_js {
        Locality::Global
    } else {
        Locality::Regional
    }
}

/// Classifies a bare distribution against a traffic reference.
///
/// # Panics
///
/// Panics if `dist` and `traffic` cover different world sizes.
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on world-size mismatch"
)]
pub fn classify_distribution(
    dist: &tagdist_geo::GeoDist,
    traffic: &tagdist_geo::GeoDist,
    thresholds: &ClassifyThresholds,
) -> Locality {
    let js = dist
        .js_divergence(traffic)
        .expect("distributions cover the same world");
    classify_measures(dist.top_share(), js, thresholds)
}

/// Aggregate classification counts over a profile set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LocalitySummary {
    /// Number of local tags.
    pub local: usize,
    /// Number of regional tags.
    pub regional: usize,
    /// Number of global tags.
    pub global: usize,
    /// Share of all profiled views carried by local tags.
    pub local_view_share: f64,
    /// Share of all profiled views carried by global tags.
    pub global_view_share: f64,
}

impl LocalitySummary {
    /// Classifies every profile and aggregates counts and view
    /// shares.
    pub fn compute(profiles: &[TagProfile], thresholds: &ClassifyThresholds) -> LocalitySummary {
        let mut s = LocalitySummary::default();
        let mut local_views = 0.0;
        let mut global_views = 0.0;
        let mut total_views = 0.0;
        for p in profiles {
            total_views += p.total_views;
            match classify(p, thresholds) {
                Locality::Local => {
                    s.local += 1;
                    local_views += p.total_views;
                }
                Locality::Regional => s.regional += 1,
                Locality::Global => {
                    s.global += 1;
                    global_views += p.total_views;
                }
            }
        }
        if total_views > 0.0 {
            s.local_view_share = local_views / total_views;
            s.global_view_share = global_views / total_views;
        }
        s
    }

    /// Total number of classified tags.
    pub fn total(&self) -> usize {
        self.local + self.regional + self.global
    }
}

impl fmt::Display for LocalitySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} local / {} regional / {} global tags ({:.0}% of views local, {:.0}% global)",
            self.local,
            self.regional,
            self.global,
            100.0 * self.local_view_share,
            100.0 * self.global_view_share
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::TagId;
    use tagdist_geo::{CountryId, CountryVec, GeoDist};

    fn profile(dist: GeoDist, traffic: &GeoDist, views: f64) -> TagProfile {
        TagProfile {
            tag: TagId::from_index(0),
            name: "t".into(),
            video_count: 10,
            total_views: views,
            normalized_entropy: dist.normalized_entropy(),
            gini: dist.gini(),
            top_share: dist.top_share(),
            top_country: dist.top_country().unwrap(),
            js_from_traffic: dist.js_divergence(traffic).unwrap(),
            countries_for_90pct: dist.countries_for_share(0.9),
            dist,
        }
    }

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    #[test]
    fn archetypes_classify_correctly() {
        let traffic = d(&[0.4, 0.35, 0.25]);
        let thresholds = ClassifyThresholds::default();
        // favela-like: 90 % in one country.
        let local = profile(d(&[0.02, 0.08, 0.9]), &traffic, 100.0);
        assert_eq!(classify(&local, &thresholds), Locality::Local);
        // pop-like: equals the traffic distribution.
        let global = profile(traffic.clone(), &traffic, 100.0);
        assert_eq!(classify(&global, &thresholds), Locality::Global);
        // in between: concentrated on two countries unlike traffic.
        let regional = profile(d(&[0.05, 0.48, 0.47]), &traffic, 100.0);
        assert_eq!(classify(&regional, &thresholds), Locality::Regional);
    }

    #[test]
    fn local_rule_wins_over_global() {
        // One country dominates both the tag and the traffic: still
        // local (the placement decision is the same either way).
        let traffic = d(&[0.8, 0.1, 0.1]);
        let p = profile(d(&[0.85, 0.1, 0.05]), &traffic, 1.0);
        assert_eq!(
            classify(&p, &ClassifyThresholds::default()),
            Locality::Local
        );
    }

    #[test]
    fn thresholds_are_configurable() {
        let traffic = d(&[0.5, 0.5]);
        let p = profile(d(&[0.6, 0.4]), &traffic, 1.0);
        let strict = ClassifyThresholds {
            local_top_share: 0.9,
            global_max_js: 0.001,
        };
        assert_eq!(classify(&p, &strict), Locality::Regional);
        let lax = ClassifyThresholds {
            local_top_share: 0.55,
            global_max_js: 0.5,
        };
        assert_eq!(classify(&p, &lax), Locality::Local);
    }

    #[test]
    fn summary_counts_and_view_shares() {
        let traffic = d(&[0.4, 0.35, 0.25]);
        let ps = vec![
            profile(d(&[0.02, 0.08, 0.9]), &traffic, 300.0), // local
            profile(traffic.clone(), &traffic, 600.0),       // global
            profile(d(&[0.05, 0.48, 0.47]), &traffic, 100.0), // regional
        ];
        let s = LocalitySummary::compute(&ps, &ClassifyThresholds::default());
        assert_eq!((s.local, s.regional, s.global), (1, 1, 1));
        assert_eq!(s.total(), 3);
        assert!((s.local_view_share - 0.3).abs() < 1e-12);
        assert!((s.global_view_share - 0.6).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("1 local"));
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LocalitySummary::compute(&[], &ClassifyThresholds::default());
        assert_eq!(s.total(), 0);
        assert_eq!(s.local_view_share, 0.0);
    }

    #[test]
    fn locality_display() {
        assert_eq!(Locality::Local.to_string(), "local");
        assert_eq!(Locality::Regional.to_string(), "regional");
        assert_eq!(Locality::Global.to_string(), "global");
        let _ = CountryId::from_index(0);
    }
}
