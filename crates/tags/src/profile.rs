//! Per-tag geographic profiles.

use core::fmt;

use tagdist_dataset::{CleanDataset, TagId};
use tagdist_geo::{kernel, CountryId, GeoDist};
use tagdist_reconstruct::TagViewTable;

/// Geographic profile of one tag, derived from its Eq. 3 aggregate.
///
/// # Example
///
/// ```no_run
/// # use tagdist_dataset::CleanDataset;
/// # use tagdist_geo::GeoDist;
/// # use tagdist_reconstruct::TagViewTable;
/// # use tagdist_tags::TagProfile;
/// # fn demo(clean: &CleanDataset, table: &TagViewTable, traffic: &GeoDist) {
/// let pop = clean.tags().id("pop").unwrap();
/// let profile = TagProfile::build(pop, clean, table, traffic).unwrap();
/// println!("pop is viewed most in {}", profile.top_country);
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TagProfile {
    /// The tag.
    pub tag: TagId,
    /// Its normalized name.
    pub name: String,
    /// Retained videos carrying the tag.
    pub video_count: usize,
    /// Total (reconstructed) views aggregated under the tag.
    pub total_views: f64,
    /// The tag's geographic view distribution (`views(t)` normalized).
    pub dist: GeoDist,
    /// Normalized Shannon entropy in `[0, 1]` (1 = perfectly global).
    pub normalized_entropy: f64,
    /// Gini concentration (higher = more concentrated).
    pub gini: f64,
    /// Share of the most-viewing country.
    pub top_share: f64,
    /// The most-viewing country.
    pub top_country: CountryId,
    /// Jensen–Shannon divergence (bits) from the world traffic
    /// distribution — the paper's "follows the world distribution of
    /// Youtube users" criterion (Fig. 2: small; Fig. 3: large).
    pub js_from_traffic: f64,
    /// Minimal number of countries covering 90 % of the tag's views —
    /// the "limited geographic area" size.
    pub countries_for_90pct: usize,
}

impl TagProfile {
    /// Builds the profile of `tag`, or `None` if the tag has no
    /// retained videos (no Eq. 3 row).
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not belong to `clean`'s interner or the
    /// table covers a different world size than `traffic`.
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract; a freshly normalized distribution is non-empty"
    )]
    pub fn build(
        tag: TagId,
        clean: &CleanDataset,
        table: &TagViewTable,
        traffic: &GeoDist,
    ) -> Option<TagProfile> {
        let views = table.views(tag)?;
        let dist = GeoDist::from_slice(views).ok()?;
        let js_from_traffic = dist
            .js_divergence(traffic)
            .expect("table and traffic cover the same world");
        let top_country = dist.top_country().expect("distribution is non-empty");
        let countries_for_90pct = dist.countries_for_share(0.9);
        Some(TagProfile {
            tag,
            name: clean.tags().name(tag).to_owned(),
            video_count: table.video_count(tag),
            total_views: kernel::sum(views),
            normalized_entropy: dist.normalized_entropy(),
            gini: dist.gini(),
            top_share: dist.top_share(),
            top_country,
            js_from_traffic,
            countries_for_90pct,
            dist,
        })
    }
}

impl fmt::Display for TagProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} videos, {:.0} views, H*={:.2}, gini={:.2}, top {} ({:.0}%), JS(traffic)={:.3}",
            self.name,
            self.video_count,
            self.total_views,
            self.normalized_entropy,
            self.gini,
            self.top_country,
            100.0 * self.top_share,
            self.js_from_traffic
        )
    }
}

/// Builds profiles for every tag carried by at least `min_videos`
/// retained videos, ordered by total views descending.
///
/// `min_videos` controls statistical noise: the paper's long tail of
/// single-use tags has degenerate "distributions" (they equal their
/// one video's), so analyses typically set `min_videos ≥ 5`.
pub fn profiles(
    clean: &CleanDataset,
    table: &TagViewTable,
    traffic: &GeoDist,
    min_videos: usize,
) -> Vec<TagProfile> {
    let mut out: Vec<TagProfile> = clean
        .tags()
        .iter()
        .filter(|&(tag, _)| table.video_count(tag) >= min_videos)
        .filter_map(|(tag, _)| TagProfile::build(tag, clean, table, traffic))
        .collect();
    out.sort_by(|a, b| {
        b.total_views
            .partial_cmp(&a.total_views)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.tag.cmp(&b.tag))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::CountryVec;
    use tagdist_reconstruct::Reconstruction;

    /// Three-country world: country 0 dominates traffic.
    fn traffic() -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(vec![6.0, 3.0, 1.0])).unwrap()
    }

    fn setup() -> (CleanDataset, TagViewTable, GeoDist) {
        let mut b = DatasetBuilder::new(3);
        // "global" rides charts shaped like traffic.
        b.push_video(
            "g1",
            600,
            &["global"],
            RawPopularity::decode(vec![61, 61, 61], 3),
        );
        b.push_video(
            "g2",
            400,
            &["global"],
            RawPopularity::decode(vec![61, 61, 61], 3),
        );
        // "niche" concentrates on country 2 (small traffic share).
        b.push_video(
            "n1",
            500,
            &["niche"],
            RawPopularity::decode(vec![0, 0, 61], 3),
        );
        b.push_video(
            "n2",
            100,
            &["niche", "global"],
            RawPopularity::decode(vec![0, 6, 61], 3),
        );
        let clean = filter(&b.build());
        let traffic = traffic();
        let recon = Reconstruction::compute(&clean, &traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, table, traffic)
    }

    #[test]
    fn global_tag_tracks_traffic() {
        let (clean, table, traffic) = setup();
        let global = clean.tags().id("global").unwrap();
        let p = TagProfile::build(global, &clean, &table, &traffic).unwrap();
        assert!(p.js_from_traffic < 0.1, "JS = {}", p.js_from_traffic);
        assert_eq!(p.top_country, tagdist_geo::CountryId::from_index(0));
        assert_eq!(p.video_count, 3);
    }

    #[test]
    fn niche_tag_concentrates() {
        let (clean, table, traffic) = setup();
        let niche = clean.tags().id("niche").unwrap();
        let p = TagProfile::build(niche, &clean, &table, &traffic).unwrap();
        assert_eq!(p.top_country, tagdist_geo::CountryId::from_index(2));
        assert!(p.top_share > 0.8, "top share {}", p.top_share);
        assert!(p.js_from_traffic > 0.3, "JS = {}", p.js_from_traffic);
        assert!(p.gini > 0.4);
        assert!(p.normalized_entropy < 0.5);
        assert!(p.countries_for_90pct <= 2, "{}", p.countries_for_90pct);
    }

    #[test]
    fn coverage_separates_global_from_niche() {
        let (clean, table, traffic) = setup();
        let global = clean.tags().id("global").unwrap();
        let niche = clean.tags().id("niche").unwrap();
        let pg = TagProfile::build(global, &clean, &table, &traffic).unwrap();
        let pn = TagProfile::build(niche, &clean, &table, &traffic).unwrap();
        assert!(pg.countries_for_90pct > pn.countries_for_90pct);
    }

    #[test]
    fn unused_tags_yield_none() {
        let mut b = DatasetBuilder::new(3);
        b.push_video("a", 1, &["kept"], RawPopularity::decode(vec![61, 0, 0], 3));
        b.push_video("b", 1, &["ghost"], RawPopularity::Missing);
        let clean = filter(&b.build());
        let traffic = traffic();
        let recon = Reconstruction::compute(&clean, &traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let ghost = clean.tags().id("ghost").unwrap();
        assert!(TagProfile::build(ghost, &clean, &table, &traffic).is_none());
    }

    #[test]
    fn profiles_sorted_by_views_and_thresholded() {
        let (clean, table, traffic) = setup();
        let all = profiles(&clean, &table, &traffic, 1);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "global"); // 1100 views vs 600
        assert!(all[0].total_views >= all[1].total_views);
        let big_only = profiles(&clean, &table, &traffic, 3);
        assert_eq!(big_only.len(), 1);
        assert_eq!(big_only[0].name, "global");
        let none = profiles(&clean, &table, &traffic, 10);
        assert!(none.is_empty());
    }

    #[test]
    fn display_mentions_name_and_top_country() {
        let (clean, table, traffic) = setup();
        let niche = clean.tags().id("niche").unwrap();
        let p = TagProfile::build(niche, &clean, &table, &traffic).unwrap();
        let s = p.to_string();
        assert!(s.contains("niche"));
        assert!(s.contains("JS(traffic)"));
    }

    #[test]
    fn total_views_match_table() {
        let (clean, table, traffic) = setup();
        for (tag, _) in clean.tags().iter() {
            if let Some(p) = TagProfile::build(tag, &clean, &table, &traffic) {
                assert!((p.total_views - table.total_views(tag)).abs() < 1e-9);
            }
        }
    }
}
