//! The BFS snowball drivers.

use std::collections::HashSet;

use tagdist_dataset::{Dataset, DatasetBuilder, RawPopularity};
use tagdist_geo::world;
use tagdist_obs::SpanGuard;
use tagdist_par::Pool;
use tagdist_ytsim::{PlatformApi, VideoMetadata};

use crate::config::CrawlConfig;
use crate::stats::CrawlStats;

/// Result of a crawl: the raw dataset plus accounting.
#[derive(Debug)]
pub struct CrawlOutcome {
    /// The as-crawled dataset (pre-filtering).
    pub dataset: Dataset,
    /// Crawl accounting.
    pub stats: CrawlStats,
}

/// One fetched video: its metadata and the related keys to expand.
type Fetched = Option<(VideoMetadata, Vec<String>)>;

/// Sequential breadth-first snowball crawl (deterministic).
///
/// Seeds are the per-country charts in [`CrawlConfig::seed_countries`]
/// order; each level is fetched in frontier order and expanded through
/// the platform's related lists.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`].
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on invalid configs"
)]
pub fn crawl<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig) -> CrawlOutcome {
    cfg.validate().expect("invalid crawl configuration");
    let seeds = gather_seeds(platform, cfg);
    run(cfg, seeds, &SpanGuard::disabled(), |level| {
        level
            .iter()
            .map(|key| fetch_one(platform, cfg, key))
            .collect()
    })
}

/// Level-synchronized parallel crawl.
///
/// Each BFS level is fanned out over a [`tagdist_par::Pool`] of
/// [`CrawlConfig::threads`] workers; results come back in frontier
/// order, so the outcome is identical to [`crawl`] on the same
/// platform and configuration.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`] or a worker thread
/// panics.
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on invalid configs"
)]
pub fn crawl_parallel<P: PlatformApi + Sync + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
) -> CrawlOutcome {
    cfg.validate().expect("invalid crawl configuration");
    let seeds = gather_seeds(platform, cfg);
    let pool = Pool::new(cfg.threads);
    run(cfg, seeds, &SpanGuard::disabled(), |level| {
        pool.par_map(level, |_, key| fetch_one(platform, cfg, key))
    })
}

/// [`crawl_parallel`], instrumented: opens a `crawl` child span of
/// `parent`, a `level.{depth}` span per BFS level, and records the
/// crawl's deterministic counters (`crawl.seeds`, `.levels`,
/// `.frontier_items`, `.fetched`, `.failed_fetches`,
/// `.duplicate_links`, gauge `crawl.frontier_peak`) plus pool dispatch
/// stats into its recorder. The crawl itself — dataset and
/// [`CrawlStats`] — is unchanged.
///
/// # Panics
///
/// As for [`crawl_parallel`].
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on invalid configs"
)]
pub fn crawl_parallel_obs<P: PlatformApi + Sync + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    parent: &SpanGuard,
) -> CrawlOutcome {
    cfg.validate().expect("invalid crawl configuration");
    let span = parent.child("crawl");
    let seeds = gather_seeds(platform, cfg);
    let pool = Pool::new(cfg.threads).with_obs(span.recorder());
    let outcome = run(cfg, seeds, &span, |level| {
        pool.par_map(level, |_, key| fetch_one(platform, cfg, key))
    });
    let obs = span.recorder();
    obs.add("crawl.seeds", outcome.stats.seeds as u64);
    obs.add("crawl.fetched", outcome.stats.fetched as u64);
    obs.add("crawl.failed_fetches", outcome.stats.failed_fetches as u64);
    obs.add(
        "crawl.duplicate_links",
        outcome.stats.duplicate_links as u64,
    );
    outcome
}

/// Collects the paper's seed set: the top `seeds_per_country` chart
/// entries of every seed country, deduplicated in first-seen order
/// (hit videos chart in many countries at once).
fn gather_seeds<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig) -> Vec<String> {
    let mut seen = HashSet::new();
    let mut seeds = Vec::new();
    for &country in &cfg.seed_countries {
        for key in platform.top_videos(country, cfg.seeds_per_country) {
            if seen.insert(key.clone()) {
                seeds.push(key);
            }
        }
    }
    seeds
}

fn fetch_one<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig, key: &str) -> Fetched {
    let meta = platform.fetch(key)?;
    let related = platform.related(key, cfg.related_per_video);
    Some((meta, related))
}

/// Shared BFS loop. `fetch_level` resolves one frontier level,
/// preserving order. `span` scopes per-level child spans and the
/// frontier counters (a disabled guard for the un-instrumented
/// drivers); the frontier sizes it records are properties of the BFS
/// itself, so they are identical however levels are fetched.
fn run<F>(
    cfg: &CrawlConfig,
    seeds: Vec<String>,
    span: &SpanGuard,
    mut fetch_level: F,
) -> CrawlOutcome
where
    F: FnMut(&[String]) -> Vec<Fetched>,
{
    let country_count = world().len();
    let mut builder = DatasetBuilder::new(country_count);
    let mut stats = CrawlStats {
        seeds: seeds.len(),
        // One chart request per seed country.
        chart_requests: cfg.seed_countries.len(),
        ..CrawlStats::default()
    };
    let mut visited: HashSet<String> = seeds.iter().cloned().collect();

    let mut level = seeds;
    let mut depth = 0usize;
    let mut budget_hit = false;

    while !level.is_empty() {
        if depth > cfg.max_depth {
            budget_hit = true;
            break;
        }
        // Respect the fetch budget before issuing requests.
        let remaining = cfg.budget - builder.len();
        if remaining == 0 {
            budget_hit = true;
            break;
        }
        if level.len() > remaining {
            level.truncate(remaining);
            budget_hit = true;
        }

        let obs = span.recorder();
        obs.add("crawl.levels", 1);
        obs.add("crawl.frontier_items", level.len() as u64);
        obs.gauge_max("crawl.frontier_peak", level.len() as u64);
        let level_span = span.child(&format!("level.{depth}"));
        let fetched = fetch_level(&level);
        drop(level_span);
        debug_assert_eq!(fetched.len(), level.len());
        stats.metadata_requests += level.len();

        let mut next: Vec<String> = Vec::new();
        let mut fetched_this_level = 0usize;
        for item in fetched {
            let Some((meta, related)) = item else {
                stats.failed_fetches += 1;
                continue;
            };
            stats.related_requests += 1;
            let tag_refs: Vec<&str> = meta.tags.iter().map(String::as_str).collect();
            let popularity = match meta.popularity {
                Some(raw) => RawPopularity::decode(raw, country_count),
                None => RawPopularity::Missing,
            };
            builder.push_video_titled(
                &meta.key,
                &meta.title,
                meta.total_views,
                &tag_refs,
                popularity,
            );
            fetched_this_level += 1;

            for key in related {
                if visited.contains(&key) {
                    stats.duplicate_links += 1;
                } else {
                    visited.insert(key.clone());
                    next.push(key);
                }
            }
        }
        stats.per_depth.push(fetched_this_level);
        level = next;
        depth += 1;
    }

    stats.fetched = builder.len();
    stats.frontier_exhausted = !budget_hit;
    CrawlOutcome {
        dataset: builder.build(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_ytsim::{Platform, WorldConfig};

    fn platform() -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(1_500);
        Platform::generate(cfg)
    }

    fn limited(budget: usize) -> CrawlConfig {
        let mut cfg = CrawlConfig::default();
        cfg.with_budget(budget);
        cfg
    }

    #[test]
    fn seeds_follow_paper_methodology() {
        let p = platform();
        let cfg = CrawlConfig::default();
        let seeds = gather_seeds(&p, &cfg);
        // ≤ 250 because hits chart in several countries at once.
        assert!(seeds.len() <= 25 * 10);
        assert!(seeds.len() >= 50, "suspiciously few seeds: {}", seeds.len());
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let p = platform();
        let out = crawl(&p, &limited(137));
        assert_eq!(out.dataset.len(), 137);
        assert_eq!(out.stats.fetched, 137);
        assert!(!out.stats.frontier_exhausted);
    }

    #[test]
    fn unbounded_crawl_reaches_most_of_the_catalogue() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        assert!(out.stats.frontier_exhausted);
        let coverage = out.dataset.len() as f64 / p.catalogue_size() as f64;
        assert!(coverage > 0.9, "coverage {coverage}");
    }

    #[test]
    fn bfs_accounting_is_consistent() {
        let p = platform();
        let out = crawl(&p, &limited(400));
        assert_eq!(out.stats.per_depth.iter().sum::<usize>(), out.stats.fetched);
        assert_eq!(out.stats.per_depth[0], out.stats.seeds.min(400));
        assert!(out.stats.max_depth().is_some());
        assert_eq!(out.stats.failed_fetches, 0);
    }

    #[test]
    fn depth_limit_stops_expansion() {
        let p = platform();
        let mut cfg = CrawlConfig::default();
        cfg.with_max_depth(1);
        let out = crawl(&p, &cfg);
        assert!(out.stats.per_depth.len() <= 2);
        assert!(!out.stats.frontier_exhausted);
    }

    #[test]
    fn parallel_crawl_matches_sequential() {
        let p = platform();
        let mut cfg = limited(600);
        cfg.with_threads(4);
        let serial = crawl(&p, &cfg);
        let parallel = crawl_parallel(&p, &cfg);
        assert_eq!(serial.dataset.len(), parallel.dataset.len());
        assert_eq!(serial.stats, parallel.stats);
        for (a, b) in serial.dataset.iter().zip(parallel.dataset.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.total_views, b.total_views);
            assert_eq!(a.popularity, b.popularity);
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let p = platform();
        let a = crawl(&p, &limited(300));
        let b = crawl(&p, &limited(300));
        let keys_a: Vec<&str> = a.dataset.iter().map(|v| v.key.as_str()).collect();
        let keys_b: Vec<&str> = b.dataset.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn crawled_records_carry_platform_defects() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        let missing = out
            .dataset
            .iter()
            .filter(|v| matches!(v.popularity, RawPopularity::Missing))
            .count();
        let corrupt = out
            .dataset
            .iter()
            .filter(|v| matches!(v.popularity, RawPopularity::Corrupt(_)))
            .count();
        assert!(missing > 0, "expected some missing charts");
        assert!(corrupt > 0, "expected some corrupt charts");
    }

    #[test]
    fn api_calls_are_accounted() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        let s = &out.stats;
        assert_eq!(s.chart_requests, 25);
        assert_eq!(s.metadata_requests, s.fetched + s.failed_fetches);
        assert_eq!(s.related_requests, s.fetched);
        assert_eq!(
            s.api_calls(),
            s.chart_requests + s.metadata_requests + s.related_requests
        );
        // A polite 5 req/s crawl of this world takes minutes, not ms.
        let secs = s.estimated_duration_secs(5.0);
        assert!(secs > 60.0, "{secs}");
    }

    #[test]
    fn duplicate_links_are_counted() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        assert!(out.stats.duplicate_links > 0);
        assert!(out.stats.duplication_ratio() > 0.0);
    }

    /// A pathological platform whose related lists point at unknown
    /// keys: fetch failures must be counted, not crash the crawl.
    #[test]
    fn unknown_keys_count_as_failed_fetches() {
        struct Flaky;
        impl PlatformApi for Flaky {
            fn top_videos(&self, _c: tagdist_geo::CountryId, _k: usize) -> Vec<String> {
                vec!["real".into(), "ghost".into()]
            }
            fn fetch(&self, key: &str) -> Option<VideoMetadata> {
                (key == "real").then(|| VideoMetadata {
                    key: key.to_owned(),
                    title: "t".into(),
                    total_views: 1,
                    duration_secs: 60,
                    tags: vec!["x".into()],
                    popularity: None,
                })
            }
            fn related(&self, _key: &str, _k: usize) -> Vec<String> {
                vec!["ghost2".into()]
            }
            fn catalogue_size(&self) -> usize {
                1
            }
        }
        let out = crawl(&Flaky, &CrawlConfig::default());
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.stats.failed_fetches, 2); // ghost + ghost2
    }
}
