//! The BFS snowball drivers, fault-tolerant since PR 5.
//!
//! # Fault handling without losing determinism
//!
//! Worker threads fetch frontier keys concurrently, retrying
//! transient faults until success, a permanent 404, or the retry
//! budget runs out. Workers never touch shared throttle state —
//! instead each returns a *fault trace* (the sequence of transient
//! errors it absorbed). The sequential merge then replays those
//! traces in frontier order through the virtual clock, token bucket
//! and per-host circuit breakers, so every retry/backoff/throttle
//! counter in [`CrawlStats`] is a pure function of the fault pattern —
//! byte-identical at any `TAGDIST_THREADS`.
//!
//! # Suspension and resume
//!
//! [`crawl_stepwise`]/[`crawl_parallel_stepwise`] expose the BFS loop
//! one level at a time: the crawl can be suspended after any level
//! into a [`CrawlCheckpoint`] and resumed later — against a freshly
//! regenerated platform — producing a dataset byte-identical to an
//! uninterrupted run.

use std::collections::HashSet;

use tagdist_dataset::{Dataset, DatasetBuilder, RawPopularity};
use tagdist_geo::world;
use tagdist_obs::SpanGuard;
use tagdist_par::Pool;
use tagdist_ytsim::{FetchError, PlatformApi, VideoMetadata};

use crate::breaker::HostBreakers;
use crate::checkpoint::{BreakerSnapshot, CrawlCheckpoint};
use crate::config::CrawlConfig;
use crate::ratelimit::TokenBucket;
use crate::stats::CrawlStats;

/// Result of a completed crawl: the raw dataset plus accounting.
#[derive(Debug)]
pub struct CrawlOutcome {
    /// The as-crawled dataset (pre-filtering).
    pub dataset: Dataset,
    /// Crawl accounting.
    pub stats: CrawlStats,
}

/// Result of a stepwise crawl: finished, or suspended mid-flight.
#[derive(Debug)]
#[expect(
    clippy::large_enum_variant,
    reason = "constructed once per crawl; boxing the outcome buys nothing"
)]
pub enum CrawlRun {
    /// The crawl ran to its natural end (frontier drained, budget or
    /// depth limit hit).
    Complete(CrawlOutcome),
    /// The crawl was suspended after `stop_after_levels` levels; the
    /// checkpoint resumes it exactly.
    Suspended(Box<CrawlCheckpoint>),
}

impl CrawlRun {
    /// Unwraps a completed crawl.
    ///
    /// # Panics
    ///
    /// Panics if the crawl was suspended.
    #[expect(clippy::panic, reason = "documented # Panics contract")]
    #[must_use]
    pub fn expect_complete(self) -> CrawlOutcome {
        match self {
            CrawlRun::Complete(outcome) => outcome,
            CrawlRun::Suspended(_) => panic!("crawl was suspended, not complete"),
        }
    }
}

/// How one frontier key resolved after retries.
#[derive(Debug)]
enum ItemOutcome {
    /// Metadata (and possibly a degraded related list) obtained.
    Fetched {
        meta: VideoMetadata,
        related: Vec<String>,
        /// The related list was abandoned after exhausting retries.
        related_exhausted: bool,
    },
    /// Permanent 404: a dangling chart/related reference.
    Dangling,
    /// Every metadata attempt faulted; the video is skipped.
    Exhausted,
}

/// Worker-side record of one frontier key's resolution: the outcome
/// plus the transient faults absorbed along the way (the merge replays
/// them through the virtual throttle).
#[derive(Debug)]
struct FetchedItem {
    fetch_faults: Vec<FetchError>,
    related_faults: Vec<FetchError>,
    outcome: ItemOutcome,
}

/// Shared throttle state, owned by the sequential merge: virtual
/// clock, token bucket, breaker bank.
#[derive(Debug)]
struct Throttle {
    clock_ms: u64,
    bucket: TokenBucket,
    breakers: HostBreakers,
}

impl Throttle {
    fn new(cfg: &CrawlConfig) -> Throttle {
        Throttle {
            clock_ms: 0,
            bucket: TokenBucket::new(&cfg.rate_limit),
            breakers: HostBreakers::new(&cfg.breaker),
        }
    }

    /// Accounts one wire request to `host`: token-bucket wait, then
    /// breaker gate.
    fn request(&mut self, host: usize, stats: &mut CrawlStats) {
        stats.throttle_wait_ms += self.bucket.acquire(&mut self.clock_ms);
        stats.breaker_wait_ms += self.breakers.before_request(host, &mut self.clock_ms);
    }

    /// Replays one endpoint's attempt sequence (`faults`, then a
    /// terminal attempt unless the budget was exhausted) through the
    /// throttle, updating `stats`.
    fn replay(
        &mut self,
        cfg: &CrawlConfig,
        key: &str,
        host: usize,
        faults: &[FetchError],
        terminal_attempted: bool,
        stats: &mut CrawlStats,
    ) {
        let attempts = faults.len() + usize::from(terminal_attempted);
        for (i, fault) in faults.iter().enumerate() {
            self.request(host, stats);
            if self.breakers.record(host, false, self.clock_ms) {
                stats.breaker_trips += 1;
            }
            match fault {
                FetchError::Transient => stats.transient_errors += 1,
                FetchError::RateLimited => stats.rate_limited += 1,
                FetchError::Timeout => stats.timeouts += 1,
                FetchError::Truncated => stats.truncated_responses += 1,
                // NotFound terminates the attempt sequence; it is
                // never recorded as a transient fault.
                FetchError::NotFound => {}
            }
            if i + 1 < attempts {
                let backoff = cfg
                    .retry
                    .backoff_ms(key, u32::try_from(i).unwrap_or(u32::MAX));
                stats.backoff_wait_ms += backoff;
                self.clock_ms = self.clock_ms.saturating_add(backoff);
            }
        }
        if terminal_attempted {
            self.request(host, stats);
            // A definitive answer — metadata, a related list, or an
            // authoritative 404 — counts as host success.
            self.breakers.record(host, true, self.clock_ms);
        }
        stats.retries += attempts.saturating_sub(1);
    }
}

/// Mutable BFS state threaded between levels (and through
/// checkpoints).
#[derive(Debug)]
struct CrawlState {
    builder: DatasetBuilder,
    stats: CrawlStats,
    visited: HashSet<String>,
    level: Vec<String>,
    depth: usize,
    throttle: Throttle,
}

impl CrawlState {
    /// Fresh state from the seed charts.
    fn start<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig) -> CrawlState {
        let seeds = gather_seeds(platform, cfg);
        let stats = CrawlStats {
            seeds: seeds.len(),
            // One chart request per seed country.
            chart_requests: cfg.seed_countries.len(),
            ..CrawlStats::default()
        };
        CrawlState {
            builder: DatasetBuilder::new(world().len()),
            stats,
            visited: seeds.iter().cloned().collect(),
            level: seeds,
            depth: 0,
            throttle: Throttle::new(cfg),
        }
    }

    /// State restored from a checkpoint (no chart requests are
    /// re-issued; the frontier is taken as-is).
    fn resume(cfg: &CrawlConfig, checkpoint: CrawlCheckpoint) -> CrawlState {
        let CrawlCheckpoint {
            clock_ms,
            bucket_available_milli,
            bucket_last_refill_ms,
            breakers,
            stats,
            depth,
            frontier,
            visited,
            dataset,
            meta: _,
        } = checkpoint;
        let mut builder = DatasetBuilder::new(dataset.country_count());
        builder.extend_from(&dataset);
        let mut throttle = Throttle::new(cfg);
        throttle.clock_ms = clock_ms;
        throttle
            .bucket
            .restore(bucket_available_milli, bucket_last_refill_ms);
        for (breaker, snap) in throttle.breakers.breakers_mut().iter_mut().zip(&breakers) {
            breaker.restore(
                snap.consecutive_failures,
                snap.open_until_ms,
                snap.half_open,
                snap.trips,
            );
        }
        CrawlState {
            builder,
            stats,
            visited: visited.into_iter().collect(),
            level: frontier,
            depth,
            throttle,
        }
    }

    /// Snapshots the state into a checkpoint (consuming it).
    fn into_checkpoint(mut self) -> CrawlCheckpoint {
        self.stats.fetched = self.builder.len();
        let (bucket_available_milli, bucket_last_refill_ms) = self.throttle.bucket.snapshot();
        let breakers = self
            .throttle
            .breakers
            .breakers()
            .iter()
            .map(|b| {
                let (consecutive_failures, open_until_ms, half_open, trips) = b.snapshot();
                BreakerSnapshot {
                    consecutive_failures,
                    open_until_ms,
                    half_open,
                    trips,
                }
            })
            .collect();
        let mut visited: Vec<String> = self.visited.into_iter().collect();
        visited.sort_unstable();
        CrawlCheckpoint {
            meta: std::collections::BTreeMap::new(),
            clock_ms: self.throttle.clock_ms,
            bucket_available_milli,
            bucket_last_refill_ms,
            breakers,
            stats: self.stats,
            depth: self.depth,
            frontier: self.level,
            visited,
            dataset: self.builder.build(),
        }
    }
}

/// Sequential breadth-first snowball crawl (deterministic).
///
/// Seeds are the per-country charts in [`CrawlConfig::seed_countries`]
/// order; each level is fetched in frontier order and expanded through
/// the platform's related lists. Transient faults are retried per
/// [`CrawlConfig::retry`]; throttle and breaker waits accrue on the
/// virtual clock.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`].
pub fn crawl<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig) -> CrawlOutcome {
    crawl_stepwise(platform, cfg, None, None).expect_complete()
}

/// Level-synchronized parallel crawl.
///
/// Each BFS level is fanned out over a [`tagdist_par::Pool`] of
/// [`CrawlConfig::threads`] workers; results come back in frontier
/// order and the fault traces are replayed sequentially, so the
/// outcome — dataset *and* every stats counter — is identical to
/// [`crawl`] on the same platform and configuration.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`] or a worker thread
/// panics.
pub fn crawl_parallel<P: PlatformApi + Sync + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
) -> CrawlOutcome {
    crawl_parallel_stepwise(platform, cfg, None, None).expect_complete()
}

/// [`crawl`], but resumable: `resume` continues from a checkpoint
/// instead of the seed charts, and `stop_after_levels` suspends the
/// crawl after that many further BFS levels.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`] or the checkpoint's
/// dataset covers a different world size.
pub fn crawl_stepwise<P: PlatformApi + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    resume: Option<CrawlCheckpoint>,
    stop_after_levels: Option<usize>,
) -> CrawlRun {
    let state = start_state(platform, cfg, resume);
    run(
        cfg,
        state,
        stop_after_levels,
        &SpanGuard::disabled(),
        |level| {
            level
                .iter()
                .map(|key| fetch_one(platform, cfg, key))
                .collect()
        },
    )
}

/// [`crawl_parallel`], but resumable; see [`crawl_stepwise`].
///
/// # Panics
///
/// As for [`crawl_parallel`] and [`crawl_stepwise`].
pub fn crawl_parallel_stepwise<P: PlatformApi + Sync + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    resume: Option<CrawlCheckpoint>,
    stop_after_levels: Option<usize>,
) -> CrawlRun {
    let state = start_state(platform, cfg, resume);
    let pool = Pool::new(cfg.threads);
    run(
        cfg,
        state,
        stop_after_levels,
        &SpanGuard::disabled(),
        |level| pool.par_map(level, |_, key| fetch_one(platform, cfg, key)),
    )
}

/// [`crawl_parallel`], emitting the growing dataset to `on_batch`
/// after every BFS level that fetched new videos — the feed the
/// streaming-ingest engine consumes (`tagdist crawl --ingest`).
///
/// `on_batch(dataset, from)` receives the full as-crawled dataset so
/// far plus the index of the first record the batch added; records
/// `from..dataset.len()` are exactly this level's new videos, in
/// crawl order (the shape [`CleanIngest::apply_from`] — and
/// `IngestEngine::apply_from` above it — consumes without copying).
/// Levels that fetch nothing new emit no batch. The final state at
/// completion is always emitted if it grew past the last batch, so a
/// consumer that applies every callback has seen every record.
///
/// Suspension is internal — the crawl runs to completion, checkpoint
/// round-tripping each level boundary through the same
/// [`CrawlCheckpoint`] state `--checkpoint` persists, which is why a
/// killed-and-resumed ingest (pass `resume`) replays the identical
/// batch boundaries from the suspension point onward.
///
/// [`CleanIngest::apply_from`]: tagdist_dataset::CleanIngest::apply_from
///
/// # Panics
///
/// As for [`crawl_parallel`].
pub fn crawl_parallel_with_batches<P, F>(
    platform: &P,
    cfg: &CrawlConfig,
    resume: Option<CrawlCheckpoint>,
    mut on_batch: F,
) -> CrawlOutcome
where
    P: PlatformApi + Sync + ?Sized,
    F: FnMut(&Dataset, usize),
{
    let mut prev_len = resume.as_ref().map_or(0, |cp| cp.dataset.len());
    let mut pending = resume;
    loop {
        match crawl_parallel_stepwise(platform, cfg, pending.take(), Some(1)) {
            CrawlRun::Suspended(cp) => {
                if cp.dataset.len() > prev_len {
                    on_batch(&cp.dataset, prev_len);
                    prev_len = cp.dataset.len();
                }
                pending = Some(*cp);
            }
            CrawlRun::Complete(outcome) => {
                if outcome.dataset.len() > prev_len {
                    on_batch(&outcome.dataset, prev_len);
                }
                return outcome;
            }
        }
    }
}

/// [`crawl_parallel`], instrumented: opens a `crawl` child span of
/// `parent`, a `level.{depth}` span per BFS level, and records the
/// crawl's deterministic counters (`crawl.seeds`, `.levels`,
/// `.frontier_items`, `.fetched`, `.failed_fetches`,
/// `.duplicate_links`, the fault-tolerance counters `crawl.retries`,
/// `.transient_errors`, `.rate_limited`, `.timeouts`, `.truncated`,
/// `.dangling_refs`, `.exhausted_retries`, `.breaker_trips`,
/// `.backoff_wait_ms`, `.throttle_wait_ms`, `.breaker_wait_ms`, gauge
/// `crawl.frontier_peak`) plus pool dispatch stats into its recorder.
/// All of these are virtual-time quantities, deterministic at any
/// thread count. The crawl itself — dataset and [`CrawlStats`] — is
/// unchanged.
///
/// # Panics
///
/// As for [`crawl_parallel`].
pub fn crawl_parallel_obs<P: PlatformApi + Sync + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    parent: &SpanGuard,
) -> CrawlOutcome {
    let span = parent.child("crawl");
    let state = start_state(platform, cfg, None);
    let pool = Pool::new(cfg.threads).with_obs(span.recorder());
    let outcome = run(cfg, state, None, &span, |level| {
        pool.par_map(level, |_, key| fetch_one(platform, cfg, key))
    })
    .expect_complete();
    let obs = span.recorder();
    let s = &outcome.stats;
    obs.add("crawl.seeds", s.seeds as u64);
    obs.add("crawl.fetched", s.fetched as u64);
    obs.add("crawl.failed_fetches", s.failed_fetches as u64);
    obs.add("crawl.duplicate_links", s.duplicate_links as u64);
    obs.add("crawl.retries", s.retries as u64);
    obs.add("crawl.transient_errors", s.transient_errors as u64);
    obs.add("crawl.rate_limited", s.rate_limited as u64);
    obs.add("crawl.timeouts", s.timeouts as u64);
    obs.add("crawl.truncated", s.truncated_responses as u64);
    obs.add("crawl.dangling_refs", s.dangling_references as u64);
    obs.add("crawl.exhausted_retries", s.exhausted_retries as u64);
    obs.add("crawl.breaker_trips", s.breaker_trips as u64);
    obs.add("crawl.backoff_wait_ms", s.backoff_wait_ms);
    obs.add("crawl.throttle_wait_ms", s.throttle_wait_ms);
    obs.add("crawl.breaker_wait_ms", s.breaker_wait_ms);
    outcome
}

/// Validates the config and builds the starting state (fresh or
/// resumed).
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on invalid configs"
)]
fn start_state<P: PlatformApi + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    resume: Option<CrawlCheckpoint>,
) -> CrawlState {
    cfg.validate().expect("invalid crawl configuration");
    match resume {
        Some(checkpoint) => {
            assert_eq!(
                checkpoint.dataset.country_count(),
                world().len(),
                "checkpoint covers a different world size"
            );
            CrawlState::resume(cfg, checkpoint)
        }
        None => CrawlState::start(platform, cfg),
    }
}

/// Collects the paper's seed set: the top `seeds_per_country` chart
/// entries of every seed country, deduplicated in first-seen order
/// (hit videos chart in many countries at once).
fn gather_seeds<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig) -> Vec<String> {
    let mut seen = HashSet::new();
    let mut seeds = Vec::new();
    for &country in &cfg.seed_countries {
        for key in platform.top_videos(country, cfg.seeds_per_country) {
            if seen.insert(key.clone()) {
                seeds.push(key);
            }
        }
    }
    seeds
}

/// Resolves one frontier key with per-request retries. Runs on a
/// worker thread; touches no shared state — the faults it absorbs come
/// back in the trace for the sequential merge to account.
fn fetch_one<P: PlatformApi + ?Sized>(platform: &P, cfg: &CrawlConfig, key: &str) -> FetchedItem {
    let max_attempts = cfg.retry.max_attempts.max(1) as usize;
    let mut fetch_faults = Vec::new();
    let meta = loop {
        match platform.fetch(key) {
            Ok(meta) => break meta,
            Err(FetchError::NotFound) => {
                return FetchedItem {
                    fetch_faults,
                    related_faults: Vec::new(),
                    outcome: ItemOutcome::Dangling,
                }
            }
            Err(fault) => {
                fetch_faults.push(fault);
                if fetch_faults.len() >= max_attempts {
                    return FetchedItem {
                        fetch_faults,
                        related_faults: Vec::new(),
                        outcome: ItemOutcome::Exhausted,
                    };
                }
            }
        }
    };
    let mut related_faults = Vec::new();
    let mut related_exhausted = false;
    let related = loop {
        match platform.related(key, cfg.related_per_video) {
            Ok(list) => break list,
            Err(FetchError::NotFound) => break Vec::new(),
            Err(fault) => {
                related_faults.push(fault);
                if related_faults.len() >= max_attempts {
                    // Degrade: keep the video, lose its edges.
                    related_exhausted = true;
                    break Vec::new();
                }
            }
        }
    };
    FetchedItem {
        fetch_faults,
        related_faults,
        outcome: ItemOutcome::Fetched {
            meta,
            related,
            related_exhausted,
        },
    }
}

/// Shared BFS loop. `fetch_level` resolves one frontier level,
/// preserving order. `span` scopes per-level child spans and the
/// frontier counters (a disabled guard for the un-instrumented
/// drivers); the frontier sizes it records are properties of the BFS
/// itself, so they are identical however levels are fetched.
fn run<F>(
    cfg: &CrawlConfig,
    mut state: CrawlState,
    stop_after_levels: Option<usize>,
    span: &SpanGuard,
    mut fetch_level: F,
) -> CrawlRun
where
    F: FnMut(&[String]) -> Vec<FetchedItem>,
{
    let country_count = world().len();
    let mut budget_hit = false;
    let mut levels_done = 0usize;

    while !state.level.is_empty() {
        if let Some(stop) = stop_after_levels {
            if levels_done >= stop {
                return CrawlRun::Suspended(Box::new(state.into_checkpoint()));
            }
        }
        if state.depth > cfg.max_depth {
            budget_hit = true;
            break;
        }
        // Respect the fetch budget before issuing requests.
        let remaining = cfg.budget - state.builder.len();
        if remaining == 0 {
            budget_hit = true;
            break;
        }
        if state.level.len() > remaining {
            state.level.truncate(remaining);
            budget_hit = true;
        }

        let obs = span.recorder();
        obs.add("crawl.levels", 1);
        obs.add("crawl.frontier_items", state.level.len() as u64);
        obs.gauge_max("crawl.frontier_peak", state.level.len() as u64);
        let level_span = span.child(&format!("level.{}", state.depth));
        let fetched = fetch_level(&state.level);
        drop(level_span);
        debug_assert_eq!(fetched.len(), state.level.len());
        state.stats.metadata_requests += state.level.len();

        let mut next: Vec<String> = Vec::new();
        let mut fetched_this_level = 0usize;
        for (key, item) in state.level.iter().zip(fetched) {
            // Replay the fault trace in frontier order through the
            // virtual throttle: clock, bucket and breakers see the
            // exact same sequence at any thread count.
            let host = state.throttle.breakers.host_of(key);
            let terminal_fetch = !matches!(item.outcome, ItemOutcome::Exhausted);
            state.throttle.replay(
                cfg,
                key,
                host,
                &item.fetch_faults,
                terminal_fetch,
                &mut state.stats,
            );
            let (meta, related, related_exhausted) = match item.outcome {
                ItemOutcome::Dangling => {
                    state.stats.dangling_references += 1;
                    state.stats.failed_fetches += 1;
                    continue;
                }
                ItemOutcome::Exhausted => {
                    state.stats.exhausted_retries += 1;
                    state.stats.failed_fetches += 1;
                    continue;
                }
                ItemOutcome::Fetched {
                    meta,
                    related,
                    related_exhausted,
                } => (meta, related, related_exhausted),
            };
            let terminal_related = !related_exhausted;
            state.throttle.replay(
                cfg,
                key,
                host,
                &item.related_faults,
                terminal_related,
                &mut state.stats,
            );
            if related_exhausted {
                state.stats.exhausted_related += 1;
            }
            state.stats.related_requests += 1;

            let tag_refs: Vec<&str> = meta.tags.iter().map(AsRef::as_ref).collect();
            let popularity = match meta.popularity {
                Some(raw) => RawPopularity::decode(raw, country_count),
                None => RawPopularity::Missing,
            };
            state.builder.push_video_titled(
                &meta.key,
                &meta.title,
                meta.total_views,
                &tag_refs,
                popularity,
            );
            fetched_this_level += 1;

            for key in related {
                if state.visited.contains(&key) {
                    state.stats.duplicate_links += 1;
                } else {
                    state.visited.insert(key.clone());
                    next.push(key);
                }
            }
        }
        state.stats.per_depth.push(fetched_this_level);
        state.level = next;
        state.depth += 1;
        levels_done += 1;
    }

    state.stats.fetched = state.builder.len();
    state.stats.frontier_exhausted = !budget_hit;
    CrawlRun::Complete(CrawlOutcome {
        dataset: state.builder.build(),
        stats: state.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_ytsim::{FaultProfile, FlakyPlatform, Platform, WorldConfig};

    fn platform() -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(1_500);
        Platform::generate(cfg)
    }

    fn limited(budget: usize) -> CrawlConfig {
        let mut cfg = CrawlConfig::default();
        cfg.with_budget(budget);
        cfg
    }

    /// The batch hook must hand every record to the consumer exactly
    /// once, in crawl order, and finish with the uninterrupted crawl's
    /// dataset.
    #[test]
    fn batch_hook_covers_the_crawl_exactly_once() {
        let p = platform();
        let cfg = limited(400);
        let uninterrupted = crawl_parallel(&p, &cfg);

        let mut batches = 0;
        let mut seen = Vec::new();
        let outcome = crawl_parallel_with_batches(&p, &cfg, None, |dataset, from| {
            assert!(from < dataset.len(), "empty batches must be skipped");
            assert_eq!(from, seen.len(), "batches must be contiguous");
            for i in from..dataset.len() {
                seen.push(
                    dataset
                        .video(tagdist_dataset::VideoId::from_index(i))
                        .key
                        .clone(),
                );
            }
            batches += 1;
        });
        assert!(batches > 1, "test must produce several batches");
        assert_eq!(seen.len(), outcome.dataset.len());
        for (i, key) in seen.iter().enumerate() {
            let v = outcome
                .dataset
                .video(tagdist_dataset::VideoId::from_index(i));
            assert_eq!(&v.key, key);
        }

        assert_eq!(outcome.stats, uninterrupted.stats);
        let mut a = Vec::new();
        let mut b = Vec::new();
        tagdist_dataset::tsv::write(&uninterrupted.dataset, &mut a).unwrap();
        tagdist_dataset::tsv::write(&outcome.dataset, &mut b).unwrap();
        assert_eq!(a, b, "batched crawl must equal the uninterrupted one");
    }

    /// Resuming the batch hook from a checkpoint replays only the
    /// not-yet-emitted suffix.
    #[test]
    fn batch_hook_resumes_from_a_checkpoint() {
        let p = platform();
        let cfg = limited(600);

        let mut run = crawl_parallel_stepwise(&p, &cfg, None, Some(1));
        let cp = match run {
            CrawlRun::Suspended(cp) => *cp,
            CrawlRun::Complete(_) => panic!("crawl must suspend for this test"),
        };
        let already = cp.dataset.len();
        assert!(already > 0);

        let mut first_from = None;
        run = CrawlRun::Complete(crawl_parallel_with_batches(
            &p,
            &cfg,
            Some(cp),
            |_, from| {
                first_from.get_or_insert(from);
            },
        ));
        let resumed = run.expect_complete();
        assert_eq!(
            first_from,
            Some(already),
            "resume must continue where the checkpoint stopped"
        );

        let uninterrupted = crawl_parallel(&p, &cfg);
        assert_eq!(resumed.stats, uninterrupted.stats);
        let mut a = Vec::new();
        let mut b = Vec::new();
        tagdist_dataset::tsv::write(&uninterrupted.dataset, &mut a).unwrap();
        tagdist_dataset::tsv::write(&resumed.dataset, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_follow_paper_methodology() {
        let p = platform();
        let cfg = CrawlConfig::default();
        let seeds = gather_seeds(&p, &cfg);
        // ≤ 250 because hits chart in several countries at once.
        assert!(seeds.len() <= 25 * 10);
        assert!(seeds.len() >= 50, "suspiciously few seeds: {}", seeds.len());
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let p = platform();
        let out = crawl(&p, &limited(137));
        assert_eq!(out.dataset.len(), 137);
        assert_eq!(out.stats.fetched, 137);
        assert!(!out.stats.frontier_exhausted);
    }

    #[test]
    fn unbounded_crawl_reaches_most_of_the_catalogue() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        assert!(out.stats.frontier_exhausted);
        let coverage = out.dataset.len() as f64 / p.catalogue_size() as f64;
        assert!(coverage > 0.9, "coverage {coverage}");
    }

    #[test]
    fn bfs_accounting_is_consistent() {
        let p = platform();
        let out = crawl(&p, &limited(400));
        assert_eq!(out.stats.per_depth.iter().sum::<usize>(), out.stats.fetched);
        assert_eq!(out.stats.per_depth[0], out.stats.seeds.min(400));
        assert!(out.stats.max_depth().is_some());
        assert_eq!(out.stats.failed_fetches, 0);
        assert_eq!(out.stats.retries, 0, "clean platform needs no retries");
        assert_eq!(out.stats.backoff_wait_ms, 0);
    }

    #[test]
    fn depth_limit_stops_expansion() {
        let p = platform();
        let mut cfg = CrawlConfig::default();
        cfg.with_max_depth(1);
        let out = crawl(&p, &cfg);
        assert!(out.stats.per_depth.len() <= 2);
        assert!(!out.stats.frontier_exhausted);
    }

    #[test]
    fn parallel_crawl_matches_sequential() {
        let p = platform();
        let mut cfg = limited(600);
        cfg.with_threads(4);
        let serial = crawl(&p, &cfg);
        let parallel = crawl_parallel(&p, &cfg);
        assert_eq!(serial.dataset.len(), parallel.dataset.len());
        assert_eq!(serial.stats, parallel.stats);
        for (a, b) in serial.dataset.iter().zip(parallel.dataset.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.total_views, b.total_views);
            assert_eq!(a.popularity, b.popularity);
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let p = platform();
        let a = crawl(&p, &limited(300));
        let b = crawl(&p, &limited(300));
        let keys_a: Vec<&str> = a.dataset.iter().map(|v| v.key.as_str()).collect();
        let keys_b: Vec<&str> = b.dataset.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys_a, keys_b);
    }

    #[test]
    fn crawled_records_carry_platform_defects() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        let missing = out
            .dataset
            .iter()
            .filter(|v| matches!(v.popularity, RawPopularity::Missing))
            .count();
        let corrupt = out
            .dataset
            .iter()
            .filter(|v| matches!(v.popularity, RawPopularity::Corrupt(_)))
            .count();
        assert!(missing > 0, "expected some missing charts");
        assert!(corrupt > 0, "expected some corrupt charts");
    }

    #[test]
    fn api_calls_are_accounted() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        let s = &out.stats;
        assert_eq!(s.chart_requests, 25);
        assert_eq!(s.metadata_requests, s.fetched + s.failed_fetches);
        assert_eq!(s.related_requests, s.fetched);
        assert_eq!(
            s.api_calls(),
            s.chart_requests + s.metadata_requests + s.related_requests + s.retries
        );
        // A polite 5 req/s crawl of this world takes minutes, not ms.
        let secs = s.estimated_duration_secs(5.0);
        assert!(secs > 60.0, "{secs}");
        // The default 5 req/s token bucket models that same politeness
        // on the virtual clock.
        assert!(s.throttle_wait_ms > 0, "default rate limit throttles");
    }

    #[test]
    fn duplicate_links_are_counted() {
        let p = platform();
        let out = crawl(&p, &CrawlConfig::default());
        assert!(out.stats.duplicate_links > 0);
        assert!(out.stats.duplication_ratio() > 0.0);
    }

    /// A pathological platform whose related lists point at unknown
    /// keys: fetch failures must be counted, not crash the crawl.
    #[test]
    fn unknown_keys_count_as_failed_fetches() {
        struct Ghostly;
        impl PlatformApi for Ghostly {
            fn top_videos(&self, _c: tagdist_geo::CountryId, _k: usize) -> Vec<String> {
                vec!["real".into(), "ghost".into()]
            }
            fn fetch(&self, key: &str) -> Result<VideoMetadata, FetchError> {
                if key == "real" {
                    Ok(VideoMetadata {
                        key: key.to_owned(),
                        title: "t".into(),
                        total_views: 1,
                        duration_secs: 60,
                        tags: vec!["x".into()],
                        popularity: None,
                    })
                } else {
                    Err(FetchError::NotFound)
                }
            }
            fn related(&self, _key: &str, _k: usize) -> Result<Vec<String>, FetchError> {
                Ok(vec!["ghost2".into()])
            }
            fn catalogue_size(&self) -> usize {
                1
            }
        }
        let out = crawl(&Ghostly, &CrawlConfig::default());
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.stats.failed_fetches, 2); // ghost + ghost2
        assert_eq!(out.stats.dangling_references, 2);
        assert_eq!(out.stats.exhausted_retries, 0);
    }

    /// The tentpole contract: with a fault profile whose faults all
    /// resolve within the retry budget, the dataset is byte-identical
    /// to the fault-free crawl — and every fault shows up in the
    /// ledger.
    #[test]
    fn masked_faults_leave_the_dataset_byte_identical() {
        let p = platform();
        let cfg = limited(500);
        let clean = crawl(&p, &cfg);
        let flaky = FlakyPlatform::new(&p, FaultProfile::flaky());
        let faulty = crawl(&flaky, &cfg);
        let mut clean_bytes = Vec::new();
        let mut faulty_bytes = Vec::new();
        tagdist_dataset::tsv::write(&clean.dataset, &mut clean_bytes).unwrap();
        tagdist_dataset::tsv::write(&faulty.dataset, &mut faulty_bytes).unwrap();
        assert_eq!(clean_bytes, faulty_bytes);
        assert!(faulty.stats.retries > 0, "flaky profile must inject");
        assert!(faulty.stats.transient_faults() > 0);
        assert_eq!(faulty.stats.retries, faulty.stats.transient_faults());
        assert!(faulty.stats.backoff_wait_ms > 0);
        assert_eq!(faulty.stats.exhausted_retries, 0);
        // The clean-path counters are untouched by masked faults.
        assert_eq!(clean.stats.fetched, faulty.stats.fetched);
        assert_eq!(clean.stats.per_depth, faulty.stats.per_depth);
    }

    /// Retries beyond the budget degrade gracefully: the video is
    /// skipped and counted, never a panic.
    #[test]
    fn exhausted_retries_are_recorded_and_skipped() {
        let p = platform();
        let mut cfg = limited(300);
        cfg.retry.max_attempts = 2; // below hostile's max_faults_per_key
        let flaky = FlakyPlatform::new(&p, FaultProfile::hostile());
        let out = crawl(&flaky, &cfg);
        assert!(out.stats.exhausted_retries > 0, "budget 2 must exhaust");
        assert_eq!(
            out.stats.failed_fetches,
            out.stats.exhausted_retries + out.stats.dangling_references
        );
        assert_eq!(out.stats.fetched, out.dataset.len());
    }

    /// Breakers trip on persistent failure runs and the trips are
    /// accounted deterministically.
    #[test]
    fn breaker_trips_are_deterministic() {
        let p = platform();
        let mut cfg = limited(300);
        cfg.breaker.failure_threshold = 2;
        cfg.breaker.cooldown_ms = 500;
        let run = |threads: usize| {
            let mut c = cfg.clone();
            c.with_threads(threads);
            let flaky = FlakyPlatform::new(&p, FaultProfile::hostile());
            crawl_parallel(&flaky, &c).stats
        };
        let a = run(1);
        assert!(a.breaker_trips > 0, "hostile faults must trip breakers");
        assert!(a.breaker_wait_ms > 0);
        for threads in [2, 8] {
            assert_eq!(a, run(threads), "stats drifted at {threads} threads");
        }
    }

    /// Suspend after every level and resume each time: the final
    /// dataset and stats must match the uninterrupted crawl exactly.
    #[test]
    fn stepwise_resume_matches_uninterrupted_crawl() {
        let p = platform();
        let cfg = limited(400);
        let uninterrupted = crawl(&p, &cfg);

        let mut resumed = crawl_stepwise(&p, &cfg, None, Some(1));
        let mut rounds = 0;
        let outcome = loop {
            match resumed {
                CrawlRun::Complete(outcome) => break outcome,
                CrawlRun::Suspended(checkpoint) => {
                    rounds += 1;
                    assert!(rounds < 64, "crawl must terminate");
                    resumed = crawl_stepwise(&p, &cfg, Some(*checkpoint), Some(1));
                }
            }
        };
        assert!(rounds > 1, "test must actually suspend");
        assert_eq!(outcome.stats, uninterrupted.stats);
        let mut a = Vec::new();
        let mut b = Vec::new();
        tagdist_dataset::tsv::write(&uninterrupted.dataset, &mut a).unwrap();
        tagdist_dataset::tsv::write(&outcome.dataset, &mut b).unwrap();
        assert_eq!(a, b, "resumed dataset must be byte-identical");
    }

    /// `stop_after_levels: Some(0)` suspends immediately, carrying the
    /// seed frontier.
    #[test]
    fn immediate_suspension_carries_seeds() {
        let p = platform();
        let cfg = limited(400);
        let run = crawl_stepwise(&p, &cfg, None, Some(0));
        let CrawlRun::Suspended(cp) = run else {
            panic!("expected suspension");
        };
        assert!(!cp.frontier.is_empty());
        assert_eq!(cp.depth, 0);
        assert_eq!(cp.stats.fetched, 0);
        assert_eq!(cp.frontier.len(), cp.stats.seeds);
    }
}
