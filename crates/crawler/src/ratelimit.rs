//! Client-side token-bucket rate limiting on a virtual clock.
//!
//! The paper's crawl ran for weeks precisely because the public API
//! was quota-limited; a polite crawler spaces its own requests rather
//! than waiting for 429s. The bucket here is integer-only (millitoken
//! granularity) and advances a *virtual* millisecond clock instead of
//! sleeping: the crawl ledger records exactly how long a real crawl
//! would have throttled, while tests stay instant and deterministic.

/// Token-bucket parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Sustained request rate; `0` disables throttling entirely.
    pub requests_per_sec: u32,
    /// Bucket capacity: how many requests may burst back-to-back.
    pub burst: u32,
}

impl Default for RateLimitConfig {
    fn default() -> RateLimitConfig {
        // The polite rate the paper-era API tolerated (see
        // CrawlStats::estimated_duration_secs).
        RateLimitConfig {
            requests_per_sec: 5,
            burst: 10,
        }
    }
}

impl RateLimitConfig {
    /// No throttling at all.
    #[must_use]
    pub fn unlimited() -> RateLimitConfig {
        RateLimitConfig {
            requests_per_sec: 0,
            burst: 0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests_per_sec > 0 && self.burst == 0 {
            return Err("rate limiter burst must be > 0 when a rate is set".into());
        }
        Ok(())
    }
}

/// Integer token bucket over virtual milliseconds.
///
/// One request costs 1000 millitokens; the bucket refills at
/// `requests_per_sec` millitokens per virtual millisecond (which is
/// exactly `requests_per_sec` requests per second), capped at
/// `burst * 1000`. All state is integer, so snapshots serialize
/// exactly into crawl checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    refill_milli_per_ms: u64,
    capacity_milli: u64,
    available_milli: u64,
    last_refill_ms: u64,
}

/// The cost of one request, in millitokens.
const REQUEST_COST_MILLI: u64 = 1000;

impl TokenBucket {
    /// A full bucket for `cfg`, starting at virtual time zero.
    #[must_use]
    pub fn new(cfg: &RateLimitConfig) -> TokenBucket {
        let capacity = u64::from(cfg.burst) * REQUEST_COST_MILLI;
        TokenBucket {
            refill_milli_per_ms: u64::from(cfg.requests_per_sec),
            capacity_milli: capacity,
            available_milli: capacity,
            last_refill_ms: 0,
        }
    }

    /// Takes one request's worth of tokens, advancing `clock_ms` past
    /// any wait the bucket imposes. Returns the wait in virtual
    /// milliseconds (0 when a token was ready).
    pub fn acquire(&mut self, clock_ms: &mut u64) -> u64 {
        if self.refill_milli_per_ms == 0 {
            return 0;
        }
        self.refill_to(*clock_ms);
        let wait = if self.available_milli < REQUEST_COST_MILLI {
            let deficit = REQUEST_COST_MILLI - self.available_milli;
            deficit.div_ceil(self.refill_milli_per_ms)
        } else {
            0
        };
        if wait > 0 {
            *clock_ms = clock_ms.saturating_add(wait);
            self.refill_to(*clock_ms);
        }
        self.available_milli -= REQUEST_COST_MILLI.min(self.available_milli);
        wait
    }

    /// Credits refill up to `now`.
    fn refill_to(&mut self, now_ms: u64) {
        let elapsed = now_ms.saturating_sub(self.last_refill_ms);
        let credit = elapsed.saturating_mul(self.refill_milli_per_ms);
        self.available_milli =
            (self.available_milli.saturating_add(credit)).min(self.capacity_milli);
        self.last_refill_ms = now_ms;
    }

    /// Checkpoint snapshot: `(available_milli, last_refill_ms)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64) {
        (self.available_milli, self.last_refill_ms)
    }

    /// Restores a [`TokenBucket::snapshot`] onto a fresh bucket built
    /// from the same config.
    pub fn restore(&mut self, available_milli: u64, last_refill_ms: u64) {
        self.available_milli = available_milli.min(self.capacity_milli);
        self.last_refill_ms = last_refill_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(rps: u32, burst: u32) -> TokenBucket {
        TokenBucket::new(&RateLimitConfig {
            requests_per_sec: rps,
            burst,
        })
    }

    #[test]
    fn burst_is_free_then_rate_applies() {
        let mut b = bucket(5, 3);
        let mut clock = 0u64;
        for _ in 0..3 {
            assert_eq!(b.acquire(&mut clock), 0, "burst tokens are instant");
        }
        // 4th request must wait for a full token: 1000 millitokens at
        // 5 millitokens/ms = 200 ms.
        let wait = b.acquire(&mut clock);
        assert_eq!(wait, 200);
        assert_eq!(clock, 200);
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut b = bucket(10, 1);
        let mut clock = 0u64;
        let mut total_wait = 0u64;
        for _ in 0..50 {
            total_wait += b.acquire(&mut clock);
        }
        // 50 requests at 10 req/s from a 1-burst bucket: ~4.9 s.
        assert_eq!(total_wait, 49 * 100);
        assert_eq!(clock, 4_900);
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut b = bucket(5, 2);
        let mut clock = 0u64;
        b.acquire(&mut clock);
        b.acquire(&mut clock);
        // A long idle period refills at most `burst` tokens.
        clock += 100_000;
        assert_eq!(b.acquire(&mut clock), 0);
        assert_eq!(b.acquire(&mut clock), 0);
        assert_eq!(b.acquire(&mut clock), 200);
    }

    #[test]
    fn zero_rate_never_waits() {
        let mut b = TokenBucket::new(&RateLimitConfig::unlimited());
        let mut clock = 0u64;
        for _ in 0..10_000 {
            assert_eq!(b.acquire(&mut clock), 0);
        }
        assert_eq!(clock, 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let cfg = RateLimitConfig::default();
        let mut a = TokenBucket::new(&cfg);
        let mut clock = 0u64;
        for _ in 0..17 {
            a.acquire(&mut clock);
        }
        let (avail, last) = a.snapshot();
        let mut b = TokenBucket::new(&cfg);
        b.restore(avail, last);
        assert_eq!(a, b);
        let mut clock_b = clock;
        assert_eq!(a.acquire(&mut clock), b.acquire(&mut clock_b));
        assert_eq!(clock, clock_b);
    }

    #[test]
    fn validation_catches_zero_burst() {
        assert!(RateLimitConfig::default().validate().is_ok());
        assert!(RateLimitConfig::unlimited().validate().is_ok());
        let bad = RateLimitConfig {
            requests_per_sec: 5,
            burst: 0,
        };
        assert!(bad.validate().is_err());
    }
}
