//! Crawl parameters.

use tagdist_geo::{world, CountryId};

use crate::breaker::BreakerConfig;
use crate::ratelimit::RateLimitConfig;
use crate::retry::RetryPolicy;

/// Configuration of a snowball crawl (non-consuming builder).
///
/// Defaults mirror the paper: seeds are the top **10** videos of each
/// of the **25** YouTube seed locales, expanded breadth-first over
/// related videos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlConfig {
    /// Countries whose charts seed the crawl.
    pub seed_countries: Vec<CountryId>,
    /// Chart depth fetched per seed country (paper: 10).
    pub seeds_per_country: usize,
    /// Maximum number of videos to fetch; `usize::MAX` crawls to
    /// frontier exhaustion.
    pub budget: usize,
    /// Maximum snowball depth (seeds are depth 0); `usize::MAX`
    /// removes the limit.
    pub max_depth: usize,
    /// How many related videos to request per fetched video.
    pub related_per_video: usize,
    /// Worker threads for [`crawl_parallel`](crate::crawl_parallel).
    pub threads: usize,
    /// Retry schedule for transient platform faults.
    pub retry: RetryPolicy,
    /// Client-side token-bucket throttle (virtual time).
    pub rate_limit: RateLimitConfig,
    /// Per-host circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for CrawlConfig {
    fn default() -> CrawlConfig {
        CrawlConfig {
            seed_countries: world().seed_locales(),
            seeds_per_country: 10,
            budget: usize::MAX,
            max_depth: usize::MAX,
            related_per_video: 20,
            threads: 4,
            retry: RetryPolicy::default(),
            rate_limit: RateLimitConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl CrawlConfig {
    /// Caps the number of fetched videos.
    pub fn with_budget(&mut self, budget: usize) -> &mut CrawlConfig {
        self.budget = budget;
        self
    }

    /// Caps the snowball depth.
    pub fn with_max_depth(&mut self, depth: usize) -> &mut CrawlConfig {
        self.max_depth = depth;
        self
    }

    /// Sets the number of related videos requested per fetch.
    pub fn with_related(&mut self, k: usize) -> &mut CrawlConfig {
        self.related_per_video = k;
        self
    }

    /// Sets the worker-thread count for the parallel driver.
    pub fn with_threads(&mut self, threads: usize) -> &mut CrawlConfig {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(&mut self, retry: RetryPolicy) -> &mut CrawlConfig {
        self.retry = retry;
        self
    }

    /// Replaces the rate-limit configuration.
    pub fn with_rate_limit(&mut self, rate_limit: RateLimitConfig) -> &mut CrawlConfig {
        self.rate_limit = rate_limit;
        self
    }

    /// Replaces the circuit-breaker configuration.
    pub fn with_breaker(&mut self, breaker: BreakerConfig) -> &mut CrawlConfig {
        self.breaker = breaker;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.seed_countries.is_empty() {
            return Err("need at least one seed country".into());
        }
        if self.seeds_per_country == 0 {
            return Err("seeds_per_country must be > 0".into());
        }
        if self.budget == 0 {
            return Err("budget must be > 0".into());
        }
        if self.threads == 0 {
            return Err("threads must be > 0".into());
        }
        self.retry.validate()?;
        self.rate_limit.validate()?;
        self.breaker.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_methodology() {
        let c = CrawlConfig::default();
        assert_eq!(c.seed_countries.len(), 25);
        assert_eq!(c.seeds_per_country, 10);
        c.validate().unwrap();
    }

    #[test]
    fn builders_chain() {
        let mut c = CrawlConfig::default();
        c.with_budget(100)
            .with_max_depth(3)
            .with_related(5)
            .with_threads(2);
        assert_eq!(c.budget, 100);
        assert_eq!(c.max_depth, 3);
        assert_eq!(c.related_per_video, 5);
        assert_eq!(c.threads, 2);
    }

    #[test]
    fn threads_floor_at_one() {
        let mut c = CrawlConfig::default();
        c.with_threads(0);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn validation_catches_violations() {
        let no_seeds = CrawlConfig {
            seed_countries: Vec::new(),
            ..CrawlConfig::default()
        };
        assert!(no_seeds.validate().is_err());

        let no_depth = CrawlConfig {
            seeds_per_country: 0,
            ..CrawlConfig::default()
        };
        assert!(no_depth.validate().is_err());

        let no_budget = CrawlConfig {
            budget: 0,
            ..CrawlConfig::default()
        };
        assert!(no_budget.validate().is_err());

        let mut bad_retry = CrawlConfig::default();
        bad_retry.retry.max_attempts = 0;
        assert!(bad_retry.validate().is_err());

        let mut bad_breaker = CrawlConfig::default();
        bad_breaker.breaker.hosts = 0;
        assert!(bad_breaker.validate().is_err());
    }

    #[test]
    fn robustness_builders_chain() {
        let mut c = CrawlConfig::default();
        c.with_retry(crate::retry::RetryPolicy::none())
            .with_rate_limit(crate::ratelimit::RateLimitConfig::unlimited())
            .with_breaker(crate::breaker::BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 100,
                hosts: 1,
            });
        assert_eq!(c.retry.max_attempts, 1);
        assert_eq!(c.rate_limit.requests_per_sec, 0);
        assert_eq!(c.breaker.hosts, 1);
        c.validate().unwrap();
    }
}
