//! Incremental recrawling.
//!
//! A 2011-scale crawl took weeks; repeating it from scratch to pick up
//! newly uploaded videos would be wasteful. [`recrawl`] runs the same
//! breadth-first snowball but reuses the records of an existing
//! dataset: known videos are *not* re-fetched (their stored metadata
//! is carried over), yet their related edges are still expanded so the
//! frontier can reach content the first crawl missed.

use std::collections::HashSet;

use tagdist_dataset::{Dataset, DatasetBuilder, RawPopularity};
use tagdist_geo::world;
use tagdist_ytsim::{FetchError, PlatformApi, VideoMetadata};

use crate::config::CrawlConfig;
use crate::stats::CrawlStats;

/// Result of an incremental crawl.
#[derive(Debug)]
pub struct RecrawlOutcome {
    /// The combined dataset: carried-over records first (in their
    /// original order), then newly fetched ones in BFS order.
    pub dataset: Dataset,
    /// BFS accounting over the *new* fetches.
    pub stats: CrawlStats,
    /// Records reused from the existing dataset.
    pub reused: usize,
    /// Records fetched fresh from the platform.
    pub newly_fetched: usize,
}

/// Breadth-first snowball crawl that treats `existing` as already
/// visited.
///
/// The budget counts only *new* fetches. Related-list expansion still
/// walks through known videos, so a recrawl with budget `b` discovers
/// up to `b` videos beyond the previous crawl's coverage.
///
/// # Panics
///
/// Panics if `cfg` fails [`CrawlConfig::validate`] or `existing` was
/// crawled against a different world size.
#[expect(
    clippy::expect_used,
    reason = "documented # Panics contract on invalid configs"
)]
pub fn recrawl<P: PlatformApi + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    existing: &Dataset,
) -> RecrawlOutcome {
    cfg.validate().expect("invalid crawl configuration");
    let country_count = world().len();
    assert_eq!(
        existing.country_count(),
        country_count,
        "existing dataset covers a different world"
    );

    // Carry the old records over verbatim.
    let mut builder = DatasetBuilder::new(country_count);
    builder.extend_from(existing);
    let reused = builder.len();

    let mut stats = CrawlStats {
        chart_requests: cfg.seed_countries.len(),
        ..CrawlStats::default()
    };
    // `visited` tracks BFS *traversal*, not prior crawl membership:
    // the walk must pass through the already-crawled region to reach
    // the old frontier, re-using stored metadata instead of fetching.
    let mut visited: HashSet<String> = HashSet::new();

    // Seed with the charts, as in a fresh crawl.
    let mut level: Vec<String> = Vec::new();
    for &country in &cfg.seed_countries {
        for key in platform.top_videos(country, cfg.seeds_per_country) {
            if visited.insert(key.clone()) {
                level.push(key);
            }
        }
    }
    stats.seeds = level.len();

    let mut depth = 0usize;
    let mut budget_hit = false;
    let mut new_fetches = 0usize;
    'outer: while !level.is_empty() {
        if depth > cfg.max_depth {
            budget_hit = true;
            break;
        }
        let mut next: Vec<String> = Vec::new();
        let mut fetched_this_level = 0usize;
        for key in level {
            let is_known = existing.by_key(&key).is_some();
            if !is_known {
                if new_fetches >= cfg.budget {
                    budget_hit = true;
                    break 'outer;
                }
                stats.metadata_requests += 1;
                let Some(meta) = fetch_with_retry(platform, cfg, &key, &mut stats) else {
                    continue;
                };
                let tags: Vec<&str> = meta.tags.iter().map(AsRef::as_ref).collect();
                let popularity = match meta.popularity {
                    Some(raw) => RawPopularity::decode(raw, country_count),
                    None => RawPopularity::Missing,
                };
                builder.push_video_titled(
                    &meta.key,
                    &meta.title,
                    meta.total_views,
                    &tags,
                    popularity,
                );
                new_fetches += 1;
                fetched_this_level += 1;
            }
            // Expand through both known and new videos: known ones
            // cost only a (cheap) related-list call, no metadata
            // fetch.
            stats.related_requests += 1;
            for related in related_with_retry(platform, cfg, &key, &mut stats) {
                if visited.contains(&related) {
                    stats.duplicate_links += 1;
                } else {
                    visited.insert(related.clone());
                    next.push(related);
                }
            }
        }
        stats.per_depth.push(fetched_this_level);
        level = next;
        depth += 1;
    }

    stats.fetched = new_fetches;
    stats.frontier_exhausted = !budget_hit;
    RecrawlOutcome {
        dataset: builder.build(),
        stats,
        reused,
        newly_fetched: new_fetches,
    }
}

/// Counts one absorbed transient fault into the ledger.
fn absorb_fault(stats: &mut CrawlStats, fault: FetchError) {
    match fault {
        FetchError::Transient => stats.transient_errors += 1,
        FetchError::RateLimited => stats.rate_limited += 1,
        FetchError::Timeout => stats.timeouts += 1,
        FetchError::Truncated => stats.truncated_responses += 1,
        FetchError::NotFound => {}
    }
}

/// Fetches metadata with the config's retry budget. Unlike the full
/// drivers, recrawl keeps no virtual throttle — it only counts retries
/// and fault classes; failures are recorded as dangling or exhausted.
fn fetch_with_retry<P: PlatformApi + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    key: &str,
    stats: &mut CrawlStats,
) -> Option<VideoMetadata> {
    let max_attempts = cfg.retry.max_attempts.max(1) as usize;
    let mut faults = 0usize;
    loop {
        match platform.fetch(key) {
            Ok(meta) => {
                stats.retries += faults;
                return Some(meta);
            }
            Err(FetchError::NotFound) => {
                stats.retries += faults;
                stats.dangling_references += 1;
                stats.failed_fetches += 1;
                return None;
            }
            Err(fault) => {
                absorb_fault(stats, fault);
                faults += 1;
                if faults >= max_attempts {
                    stats.retries += faults.saturating_sub(1);
                    stats.exhausted_retries += 1;
                    stats.failed_fetches += 1;
                    return None;
                }
            }
        }
    }
}

/// Fetches a related list with the config's retry budget; degrades to
/// an empty list on exhaustion (the video keeps its metadata).
fn related_with_retry<P: PlatformApi + ?Sized>(
    platform: &P,
    cfg: &CrawlConfig,
    key: &str,
    stats: &mut CrawlStats,
) -> Vec<String> {
    let max_attempts = cfg.retry.max_attempts.max(1) as usize;
    let mut faults = 0usize;
    loop {
        match platform.related(key, cfg.related_per_video) {
            Ok(list) => {
                stats.retries += faults;
                return list;
            }
            Err(FetchError::NotFound) => {
                stats.retries += faults;
                return Vec::new();
            }
            Err(fault) => {
                absorb_fault(stats, fault);
                faults += 1;
                if faults >= max_attempts {
                    stats.retries += faults.saturating_sub(1);
                    stats.exhausted_related += 1;
                    return Vec::new();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::crawl;
    use tagdist_ytsim::{Platform, WorldConfig};

    fn platform(videos: usize, seed: u64) -> Platform {
        let mut cfg = WorldConfig::tiny();
        cfg.with_videos(videos).with_seed(seed);
        Platform::generate(cfg)
    }

    #[test]
    fn recrawl_of_a_complete_crawl_fetches_nothing() {
        let p = platform(800, 1);
        let full = crawl(&p, &CrawlConfig::default());
        let again = recrawl(&p, &CrawlConfig::default(), &full.dataset);
        assert_eq!(again.newly_fetched, 0);
        assert_eq!(again.reused, full.dataset.len());
        assert_eq!(again.dataset.len(), full.dataset.len());
    }

    #[test]
    fn recrawl_extends_a_partial_crawl() {
        let p = platform(800, 2);
        let mut partial_cfg = CrawlConfig::default();
        partial_cfg.with_budget(150);
        let partial = crawl(&p, &partial_cfg);
        let extended = recrawl(&p, &CrawlConfig::default(), &partial.dataset);
        assert_eq!(extended.reused, 150);
        assert!(extended.newly_fetched > 0);
        assert_eq!(
            extended.dataset.len(),
            extended.reused + extended.newly_fetched
        );
        // The extension should approach full-crawl coverage.
        let full = crawl(&p, &CrawlConfig::default());
        assert!(extended.dataset.len() as f64 >= 0.95 * full.dataset.len() as f64);
    }

    #[test]
    fn carried_records_are_byte_identical() {
        let p = platform(600, 3);
        let mut cfg = CrawlConfig::default();
        cfg.with_budget(100);
        let first = crawl(&p, &cfg);
        let second = recrawl(&p, &CrawlConfig::default(), &first.dataset);
        for original in first.dataset.iter() {
            let kept = second.dataset.by_key(&original.key).expect("carried over");
            assert_eq!(kept.total_views, original.total_views);
            assert_eq!(kept.popularity, original.popularity);
            assert_eq!(kept.tags.len(), original.tags.len());
        }
    }

    #[test]
    fn recrawl_budget_counts_only_new_fetches() {
        let p = platform(800, 4);
        let mut cfg = CrawlConfig::default();
        cfg.with_budget(200);
        let partial = crawl(&p, &cfg);
        let mut inc_cfg = CrawlConfig::default();
        inc_cfg.with_budget(50);
        let extended = recrawl(&p, &inc_cfg, &partial.dataset);
        assert_eq!(extended.newly_fetched, 50);
        assert_eq!(extended.dataset.len(), 250);
        assert!(!extended.stats.frontier_exhausted);
    }

    #[test]
    fn recrawl_from_empty_matches_fresh_crawl_contents() {
        let p = platform(500, 5);
        let empty = tagdist_dataset::DatasetBuilder::new(tagdist_geo::world().len()).build();
        let fresh = crawl(&p, &CrawlConfig::default());
        let inc = recrawl(&p, &CrawlConfig::default(), &empty);
        assert_eq!(inc.reused, 0);
        assert_eq!(inc.dataset.len(), fresh.dataset.len());
        let mut a: Vec<&str> = fresh.dataset.iter().map(|v| v.key.as_str()).collect();
        let mut b: Vec<&str> = inc.dataset.iter().map(|v| v.key.as_str()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
