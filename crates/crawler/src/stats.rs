//! Crawl accounting.

use core::fmt;

/// Statistics of one snowball crawl.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrawlStats {
    /// Distinct seed videos obtained from the per-country charts.
    pub seeds: usize,
    /// Videos successfully fetched (== dataset size).
    pub fetched: usize,
    /// Related-video keys skipped because they were already visited —
    /// a measure of how strongly the related graph folds back on
    /// itself.
    pub duplicate_links: usize,
    /// Keys the platform refused to serve (unknown/deleted videos).
    pub failed_fetches: usize,
    /// Videos fetched at each BFS depth (`per_depth[0]` = seeds).
    pub per_depth: Vec<usize>,
    /// `true` when the crawl stopped because the frontier drained,
    /// `false` when it hit the budget or depth limit.
    pub frontier_exhausted: bool,
    /// Per-country chart requests issued (the seed phase).
    pub chart_requests: usize,
    /// Video-metadata requests issued (including failed ones).
    pub metadata_requests: usize,
    /// Related-list requests issued.
    pub related_requests: usize,
}

impl CrawlStats {
    /// Deepest level reached (seeds are depth 0); `None` before any
    /// fetch.
    pub fn max_depth(&self) -> Option<usize> {
        if self.per_depth.is_empty() {
            None
        } else {
            Some(self.per_depth.len() - 1)
        }
    }

    /// Fraction of fetch attempts that were duplicates — high values
    /// mean the snowball is saturating its reachable component.
    pub fn duplication_ratio(&self) -> f64 {
        let attempts = self.fetched + self.duplicate_links;
        if attempts == 0 {
            0.0
        } else {
            self.duplicate_links as f64 / attempts as f64
        }
    }

    /// Total platform API calls issued (charts + metadata + related).
    pub fn api_calls(&self) -> usize {
        self.chart_requests + self.metadata_requests + self.related_requests
    }

    /// Wall-clock a polite real-world crawl would need at
    /// `requests_per_sec`, in seconds.
    ///
    /// The original crawl ran against quota-limited public endpoints;
    /// this makes the "weeks of crawling" cost of the methodology
    /// explicit.
    ///
    /// # Panics
    ///
    /// Panics if `requests_per_sec` is not positive.
    pub fn estimated_duration_secs(&self, requests_per_sec: f64) -> f64 {
        assert!(requests_per_sec > 0.0, "request rate must be positive");
        self.api_calls() as f64 / requests_per_sec
    }
}

impl fmt::Display for CrawlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seeds {}, fetched {} over {} depths ({} duplicate links, {} failed), {}",
            self.seeds,
            self.fetched,
            self.per_depth.len(),
            self.duplicate_links,
            self.failed_fetches,
            if self.frontier_exhausted {
                "frontier exhausted"
            } else {
                "budget/depth limited"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_ratio_accessors() {
        let s = CrawlStats {
            seeds: 10,
            fetched: 90,
            duplicate_links: 10,
            failed_fetches: 0,
            per_depth: vec![10, 50, 30],
            frontier_exhausted: false,
            chart_requests: 25,
            metadata_requests: 90,
            related_requests: 90,
        };
        assert_eq!(s.max_depth(), Some(2));
        assert!((s.duplication_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CrawlStats::default();
        assert_eq!(s.max_depth(), None);
        assert_eq!(s.duplication_ratio(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = CrawlStats {
            seeds: 3,
            fetched: 5,
            per_depth: vec![3, 2],
            frontier_exhausted: true,
            ..CrawlStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("seeds 3"));
        assert!(text.contains("frontier exhausted"));
    }
}
