//! Crawl accounting.

use core::fmt;
use std::fmt::Write as _;

/// Statistics of one snowball crawl.
///
/// All counters are deterministic: retries, waits and breaker trips
/// are accounted on the crawl's *virtual* clock in frontier order, so
/// the whole struct is identical at any `TAGDIST_THREADS`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrawlStats {
    /// Distinct seed videos obtained from the per-country charts.
    pub seeds: usize,
    /// Videos successfully fetched (== dataset size).
    pub fetched: usize,
    /// Related-video keys skipped because they were already visited —
    /// a measure of how strongly the related graph folds back on
    /// itself.
    pub duplicate_links: usize,
    /// Keys that yielded no metadata:
    /// `dangling_references + exhausted_retries`.
    pub failed_fetches: usize,
    /// Videos fetched at each BFS depth (`per_depth[0]` = seeds).
    pub per_depth: Vec<usize>,
    /// `true` when the crawl stopped because the frontier drained,
    /// `false` when it hit the budget or depth limit.
    pub frontier_exhausted: bool,
    /// Per-country chart requests issued (the seed phase).
    pub chart_requests: usize,
    /// Distinct videos whose metadata was requested (including failed
    /// ones); retries of the same video are counted in
    /// [`CrawlStats::retries`].
    pub metadata_requests: usize,
    /// Distinct related-list requests issued (one per fetched video).
    pub related_requests: usize,
    /// Extra attempts issued after transient faults (both endpoints).
    pub retries: usize,
    /// Transient 5xx responses absorbed.
    pub transient_errors: usize,
    /// 429 rate-limit responses absorbed.
    pub rate_limited: usize,
    /// Timed-out requests absorbed.
    pub timeouts: usize,
    /// Truncated related-list responses absorbed (the partial payload
    /// is discarded and the request retried).
    pub truncated_responses: usize,
    /// Keys the platform answered with a permanent 404 — charts or
    /// related lists referencing deleted/unknown videos.
    pub dangling_references: usize,
    /// Videos skipped because every retry attempt faulted (graceful
    /// degradation, never a panic).
    pub exhausted_retries: usize,
    /// Related lists degraded to empty because every retry faulted
    /// (the video itself is kept; its edges are lost).
    pub exhausted_related: usize,
    /// Circuit-breaker trips across all virtual hosts.
    pub breaker_trips: usize,
    /// Virtual milliseconds spent in retry backoff.
    pub backoff_wait_ms: u64,
    /// Virtual milliseconds spent waiting on the token bucket.
    pub throttle_wait_ms: u64,
    /// Virtual milliseconds spent waiting out breaker cooldowns.
    pub breaker_wait_ms: u64,
}

impl CrawlStats {
    /// Deepest level reached (seeds are depth 0); `None` before any
    /// fetch.
    pub fn max_depth(&self) -> Option<usize> {
        if self.per_depth.is_empty() {
            None
        } else {
            Some(self.per_depth.len() - 1)
        }
    }

    /// Fraction of fetch attempts that were duplicates — high values
    /// mean the snowball is saturating its reachable component.
    pub fn duplication_ratio(&self) -> f64 {
        let attempts = self.fetched + self.duplicate_links;
        if attempts == 0 {
            0.0
        } else {
            self.duplicate_links as f64 / attempts as f64
        }
    }

    /// Total transient faults absorbed across both endpoints.
    pub fn transient_faults(&self) -> usize {
        self.transient_errors + self.rate_limited + self.timeouts + self.truncated_responses
    }

    /// Total platform API calls issued (charts + metadata + related +
    /// retries).
    pub fn api_calls(&self) -> usize {
        self.chart_requests + self.metadata_requests + self.related_requests + self.retries
    }

    /// Total virtual milliseconds the crawl spent waiting (backoff +
    /// throttle + breaker cooldowns).
    pub fn total_wait_ms(&self) -> u64 {
        self.backoff_wait_ms + self.throttle_wait_ms + self.breaker_wait_ms
    }

    /// Wall-clock a polite real-world crawl would need at
    /// `requests_per_sec`, in seconds.
    ///
    /// The original crawl ran against quota-limited public endpoints;
    /// this makes the "weeks of crawling" cost of the methodology
    /// explicit.
    ///
    /// # Panics
    ///
    /// Panics if `requests_per_sec` is not positive.
    pub fn estimated_duration_secs(&self, requests_per_sec: f64) -> f64 {
        assert!(requests_per_sec > 0.0, "request rate must be positive");
        self.api_calls() as f64 / requests_per_sec
    }

    /// Renders the crawl failure report: a markdown summary of every
    /// fault the crawl absorbed, uploaded as a CI artifact by the
    /// fault-matrix job.
    pub fn failure_report_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Crawl failure report\n");
        let _ = writeln!(out, "Summary: {self}\n");
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        for (name, value) in [
            ("fetched", self.fetched),
            ("failed fetches", self.failed_fetches),
            ("dangling references", self.dangling_references),
            ("exhausted retries", self.exhausted_retries),
            ("exhausted related lists", self.exhausted_related),
            ("retries", self.retries),
            ("transient 5xx", self.transient_errors),
            ("rate limited (429)", self.rate_limited),
            ("timeouts", self.timeouts),
            ("truncated responses", self.truncated_responses),
            ("breaker trips", self.breaker_trips),
        ] {
            let _ = writeln!(out, "| {name} | {value} |");
        }
        let _ = writeln!(
            out,
            "| backoff wait (virtual ms) | {} |",
            self.backoff_wait_ms
        );
        let _ = writeln!(
            out,
            "| throttle wait (virtual ms) | {} |",
            self.throttle_wait_ms
        );
        let _ = writeln!(
            out,
            "| breaker wait (virtual ms) | {} |",
            self.breaker_wait_ms
        );
        out
    }
}

impl fmt::Display for CrawlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seeds {}, fetched {} over {} depths ({} duplicate links, {} failed: \
             {} dangling, {} exhausted; {} retries, {} breaker trips), {}",
            self.seeds,
            self.fetched,
            self.per_depth.len(),
            self.duplicate_links,
            self.failed_fetches,
            self.dangling_references,
            self.exhausted_retries,
            self.retries,
            self.breaker_trips,
            if self.frontier_exhausted {
                "frontier exhausted"
            } else {
                "budget/depth limited"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_ratio_accessors() {
        let s = CrawlStats {
            seeds: 10,
            fetched: 90,
            duplicate_links: 10,
            failed_fetches: 0,
            per_depth: vec![10, 50, 30],
            frontier_exhausted: false,
            chart_requests: 25,
            metadata_requests: 90,
            related_requests: 90,
            ..CrawlStats::default()
        };
        assert_eq!(s.max_depth(), Some(2));
        assert!((s.duplication_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CrawlStats::default();
        assert_eq!(s.max_depth(), None);
        assert_eq!(s.duplication_ratio(), 0.0);
        assert_eq!(s.transient_faults(), 0);
        assert_eq!(s.total_wait_ms(), 0);
    }

    #[test]
    fn api_calls_include_retries() {
        let s = CrawlStats {
            chart_requests: 25,
            metadata_requests: 100,
            related_requests: 95,
            retries: 7,
            ..CrawlStats::default()
        };
        assert_eq!(s.api_calls(), 227);
    }

    #[test]
    fn display_summarizes() {
        let s = CrawlStats {
            seeds: 3,
            fetched: 5,
            per_depth: vec![3, 2],
            frontier_exhausted: true,
            ..CrawlStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("seeds 3"));
        assert!(text.contains("frontier exhausted"));
    }

    #[test]
    fn failure_report_names_every_fault_class() {
        let s = CrawlStats {
            dangling_references: 2,
            exhausted_retries: 1,
            failed_fetches: 3,
            retries: 9,
            transient_errors: 4,
            rate_limited: 3,
            timeouts: 1,
            truncated_responses: 1,
            breaker_trips: 1,
            backoff_wait_ms: 1234,
            ..CrawlStats::default()
        };
        let report = s.failure_report_markdown();
        assert!(report.starts_with("# Crawl failure report"));
        for needle in [
            "dangling references | 2",
            "exhausted retries | 1",
            "retries | 9",
            "breaker trips | 1",
            "backoff wait (virtual ms) | 1234",
        ] {
            assert!(report.contains(needle), "missing {needle:?}\n{report}");
        }
    }
}
