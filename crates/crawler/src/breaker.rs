//! Per-host circuit breakers with half-open probing.
//!
//! When one API host degrades, hammering it with retries only deepens
//! the outage. A circuit breaker trips after a run of consecutive
//! failures, holds requests back for a cooldown, then lets a single
//! *half-open* probe through: success closes the circuit, another
//! failure re-opens it for a fresh cooldown.
//!
//! Two deviations from the textbook breaker keep the crawl
//! deterministic and lossless:
//!
//! * An open breaker never *drops* a request — it delays it on the
//!   virtual clock until the cooldown expires (a real crawler would
//!   park the request in a queue). Every frontier key is still
//!   attempted, so the crawl result is a pure function of the fault
//!   pattern, not of breaker timing.
//! * Requests are attributed to a small fixed set of virtual hosts by
//!   a stable hash of the video key, modelling the DNS-rotated API
//!   endpoints of the era.
//!
//! A permanent [`FetchError::NotFound`](tagdist_ytsim::FetchError) is
//! a *successful* server response (the host answered authoritatively),
//! so the driver records it as breaker success.

/// Breaker parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures on one host that trip its breaker.
    pub failure_threshold: u32,
    /// How long a tripped breaker holds requests back, in virtual
    /// milliseconds.
    pub cooldown_ms: u64,
    /// Number of virtual API hosts requests are sharded over.
    pub hosts: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ms: 30_000,
            hosts: 4,
        }
    }
}

impl BreakerConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("breaker failure_threshold must be > 0".into());
        }
        if self.hosts == 0 {
            return Err("breaker hosts must be > 0".into());
        }
        Ok(())
    }
}

/// One host's breaker state. All-integer so it snapshots exactly into
/// crawl checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ms: u64,
    consecutive_failures: u32,
    /// `Some(t)` while the circuit is open until virtual time `t`.
    open_until_ms: Option<u64>,
    /// The next request is the half-open probe.
    half_open: bool,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    #[must_use]
    pub fn new(cfg: &BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: cfg.failure_threshold,
            cooldown_ms: cfg.cooldown_ms,
            consecutive_failures: 0,
            open_until_ms: None,
            half_open: false,
            trips: 0,
        }
    }

    /// Gates one request: if the circuit is open, advances `clock_ms`
    /// to the cooldown expiry and arms the half-open probe. Returns
    /// the imposed wait in virtual milliseconds.
    pub fn before_request(&mut self, clock_ms: &mut u64) -> u64 {
        let Some(until) = self.open_until_ms.take() else {
            return 0;
        };
        let wait = until.saturating_sub(*clock_ms);
        *clock_ms = (*clock_ms).max(until);
        self.half_open = true;
        wait
    }

    /// Records the outcome of a gated request at virtual time
    /// `clock_ms`. Returns `true` when this outcome tripped the
    /// breaker open.
    pub fn record(&mut self, ok: bool, clock_ms: u64) -> bool {
        if self.half_open {
            self.half_open = false;
            if ok {
                self.consecutive_failures = 0;
                return false;
            }
            // The probe failed: straight back to open.
            self.open_until_ms = Some(clock_ms.saturating_add(self.cooldown_ms));
            self.trips += 1;
            return true;
        }
        if ok {
            self.consecutive_failures = 0;
            return false;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.failure_threshold {
            self.consecutive_failures = 0;
            self.open_until_ms = Some(clock_ms.saturating_add(self.cooldown_ms));
            self.trips += 1;
            return true;
        }
        false
    }

    /// Times the breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Checkpoint snapshot:
    /// `(consecutive_failures, open_until_ms, half_open, trips)`.
    #[must_use]
    pub fn snapshot(&self) -> (u32, Option<u64>, bool, u64) {
        (
            self.consecutive_failures,
            self.open_until_ms,
            self.half_open,
            self.trips,
        )
    }

    /// Restores a [`CircuitBreaker::snapshot`] onto a fresh breaker
    /// built from the same config.
    pub fn restore(
        &mut self,
        consecutive_failures: u32,
        open_until_ms: Option<u64>,
        half_open: bool,
        trips: u64,
    ) {
        self.consecutive_failures = consecutive_failures;
        self.open_until_ms = open_until_ms;
        self.half_open = half_open;
        self.trips = trips;
    }
}

/// The breaker bank: one [`CircuitBreaker`] per virtual host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBreakers {
    hosts: Vec<CircuitBreaker>,
}

impl HostBreakers {
    /// One closed breaker per configured host.
    #[must_use]
    pub fn new(cfg: &BreakerConfig) -> HostBreakers {
        let count = cfg.hosts.max(1) as usize;
        HostBreakers {
            hosts: vec![CircuitBreaker::new(cfg); count],
        }
    }

    /// The virtual host serving `key` (stable FNV-1a shard).
    #[must_use]
    pub fn host_of(&self, key: &str) -> usize {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.hosts.len() as u64) as usize
    }

    /// Gates a request to `key`'s host; see
    /// [`CircuitBreaker::before_request`].
    pub fn before_request(&mut self, host: usize, clock_ms: &mut u64) -> u64 {
        let index = host % self.hosts.len();
        self.hosts[index].before_request(clock_ms)
    }

    /// Records an outcome on `host`; returns `true` on a trip.
    pub fn record(&mut self, host: usize, ok: bool, clock_ms: u64) -> bool {
        let index = host % self.hosts.len();
        self.hosts[index].record(ok, clock_ms)
    }

    /// Total trips across all hosts.
    #[must_use]
    pub fn total_trips(&self) -> u64 {
        self.hosts.iter().map(CircuitBreaker::trips).sum()
    }

    /// Per-host breakers, for checkpoint snapshots.
    #[must_use]
    pub fn breakers(&self) -> &[CircuitBreaker] {
        &self.hosts
    }

    /// Mutable per-host breakers, for checkpoint restore.
    pub fn breakers_mut(&mut self) -> &mut [CircuitBreaker] {
        &mut self.hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            hosts: 2,
        }
    }

    #[test]
    fn trips_after_threshold_and_waits_out_cooldown() {
        let mut b = CircuitBreaker::new(&cfg());
        let mut clock = 0u64;
        assert_eq!(b.before_request(&mut clock), 0);
        assert!(!b.record(false, clock));
        assert!(!b.record(false, clock));
        assert!(b.record(false, clock), "third failure trips");
        assert_eq!(b.trips(), 1);
        // The next request is delayed to the cooldown expiry…
        assert_eq!(b.before_request(&mut clock), 1_000);
        assert_eq!(clock, 1_000);
        // …and is the half-open probe; success closes the circuit.
        assert!(!b.record(true, clock));
        assert_eq!(b.before_request(&mut clock), 0);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(&cfg());
        let mut clock = 0u64;
        for _ in 0..3 {
            b.record(false, clock);
        }
        assert_eq!(b.before_request(&mut clock), 1_000);
        assert!(b.record(false, clock), "failed probe re-trips");
        assert_eq!(b.trips(), 2);
        assert_eq!(b.before_request(&mut clock), 1_000);
        assert_eq!(clock, 2_000);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = CircuitBreaker::new(&cfg());
        let clock = 0u64;
        b.record(false, clock);
        b.record(false, clock);
        b.record(true, clock);
        assert!(!b.record(false, clock));
        assert!(!b.record(false, clock));
        assert_eq!(b.trips(), 0, "interleaved successes keep it closed");
    }

    #[test]
    fn waiting_past_expiry_costs_nothing() {
        let mut b = CircuitBreaker::new(&cfg());
        let mut clock = 0u64;
        for _ in 0..3 {
            b.record(false, clock);
        }
        clock = 5_000;
        assert_eq!(b.before_request(&mut clock), 0, "cooldown already over");
        assert_eq!(clock, 5_000);
    }

    #[test]
    fn hosts_are_sharded_stably() {
        let bank = HostBreakers::new(&cfg());
        let h = bank.host_of("yt00000042");
        assert_eq!(h, bank.host_of("yt00000042"));
        assert!(h < 2);
        let spread: std::collections::HashSet<usize> = (0..100)
            .map(|i| bank.host_of(&format!("yt{i:08}")))
            .collect();
        assert_eq!(spread.len(), 2, "keys should land on every host");
    }

    #[test]
    fn bank_isolates_hosts() {
        let mut bank = HostBreakers::new(&cfg());
        let mut clock = 0u64;
        for _ in 0..3 {
            bank.record(0, false, clock);
        }
        assert_eq!(bank.total_trips(), 1);
        // Host 1 is unaffected.
        assert_eq!(bank.before_request(1, &mut clock), 0);
        assert!(bank.before_request(0, &mut clock) > 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut a = CircuitBreaker::new(&cfg());
        let mut clock = 0u64;
        for _ in 0..3 {
            a.record(false, clock);
        }
        a.before_request(&mut clock);
        let (fails, until, half, trips) = a.snapshot();
        let mut b = CircuitBreaker::new(&cfg());
        b.restore(fails, until, half, trips);
        assert_eq!(a, b);
    }

    #[test]
    fn validation_catches_violations() {
        assert!(BreakerConfig::default().validate().is_ok());
        let c = BreakerConfig {
            failure_threshold: 0,
            ..BreakerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = BreakerConfig {
            hosts: 0,
            ..BreakerConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
