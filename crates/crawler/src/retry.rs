//! Deterministic retry policy: exponential backoff with seeded jitter.
//!
//! Real crawlers jitter their backoff so synchronized clients don't
//! stampede a recovering backend. Wall-clock randomness would break
//! the repository's byte-identical-output contract, so the jitter here
//! is a pure function of `(seed, key, attempt)`: the schedule is fully
//! deterministic yet decorrelated across keys, and the crawl ledger
//! (total backoff milliseconds) is reproducible at any thread count.
//!
//! All delays are *virtual*: the crawler accounts them on a simulated
//! clock instead of sleeping, which keeps tests fast while modelling a
//! polite real-world crawl's timing exactly.

/// Retry schedule for transient platform faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (`1` = never
    /// retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Upper bound on any single backoff delay.
    pub cap_ms: u64,
    /// Per-mille jitter amplitude: attempt `a` waits
    /// `d + d * jitter_milli * u / 1_000_000` with `d = base · 2^a`
    /// and `u` a seeded draw in `0..1000`. Values `<= 1000` keep the
    /// schedule monotone non-decreasing (each jittered delay stays
    /// below the next attempt's base).
    pub jitter_milli: u64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 200,
            cap_ms: 30_000,
            jitter_milli: 500,
            seed: 0x000B_0FF5_EED5,
        }
    }
}

impl RetryPolicy {
    /// A no-retry policy (first failure is final).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The virtual backoff delay after attempt `attempt` (0-based)
    /// on `key` failed, in milliseconds.
    ///
    /// Deterministic in `(self.seed, key, attempt)`; monotone
    /// non-decreasing in `attempt` up to [`RetryPolicy::cap_ms`] for
    /// any `jitter_milli <= 1000`.
    #[must_use]
    pub fn backoff_ms(&self, key: &str, attempt: u32) -> u64 {
        let base = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let base = base.min(self.cap_ms);
        let draw = mix64(self.seed ^ fnv1a(key) ^ (u64::from(attempt) << 40)) % 1000;
        let jitter = base.saturating_mul(self.jitter_milli).saturating_mul(draw) / 1_000_000;
        base.saturating_add(jitter).min(self.cap_ms)
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be > 0".into());
        }
        if self.jitter_milli > 1000 {
            return Err("retry jitter_milli must be <= 1000 to keep backoff monotone".into());
        }
        if self.cap_ms < self.base_delay_ms {
            return Err("retry cap_ms must be >= base_delay_ms".into());
        }
        Ok(())
    }
}

/// FNV-1a over the key bytes (stable across platforms).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        RetryPolicy::default().validate().unwrap();
        RetryPolicy::none().validate().unwrap();
    }

    #[test]
    fn validation_catches_violations() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RetryPolicy {
            jitter_milli: 1001,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RetryPolicy {
            cap_ms: RetryPolicy::default().base_delay_ms - 1,
            ..RetryPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            jitter_milli: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ms("k", 0), 200);
        assert_eq!(p.backoff_ms("k", 1), 400);
        assert_eq!(p.backoff_ms("k", 2), 800);
        assert_eq!(p.backoff_ms("k", 20), p.cap_ms);
        // Shift overflow saturates at the cap rather than wrapping.
        assert_eq!(p.backoff_ms("k", 200), p.cap_ms);
    }

    #[test]
    fn jitter_is_keyed() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms("a", 1), p.backoff_ms("a", 1));
        let differs =
            (0..64).any(|i| p.backoff_ms(&format!("a{i}"), 1) != p.backoff_ms(&format!("b{i}"), 1));
        assert!(differs, "jitter should vary across keys");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The satellite contract: the schedule is deterministic in
        /// (seed, key, attempt) and monotone non-decreasing up to the
        /// cap.
        #[test]
        fn backoff_is_deterministic_and_monotone(
            seed in 0u64..u64::MAX,
            key in "[a-z0-9]{1,12}",
            base in 1u64..5_000,
            jitter in 0u64..=1000,
        ) {
            let policy = RetryPolicy {
                max_attempts: 8,
                base_delay_ms: base,
                cap_ms: base.saturating_mul(1 << 10),
                jitter_milli: jitter,
                seed,
            };
            let schedule: Vec<u64> = (0..24).map(|a| policy.backoff_ms(&key, a)).collect();
            let replay: Vec<u64> = (0..24).map(|a| policy.backoff_ms(&key, a)).collect();
            prop_assert_eq!(&schedule, &replay);
            for (a, pair) in schedule.windows(2).enumerate() {
                prop_assert!(
                    pair[0] <= pair[1],
                    "backoff decreased at attempt {}: {} -> {}",
                    a,
                    pair[0],
                    pair[1]
                );
            }
            for (a, &d) in schedule.iter().enumerate() {
                prop_assert!(d <= policy.cap_ms, "attempt {a} exceeded the cap: {d}");
                let floor = policy.base_delay_ms
                    .saturating_mul(1u64.checked_shl(a as u32).unwrap_or(u64::MAX))
                    .min(policy.cap_ms);
                prop_assert!(d >= floor, "attempt {a} below its base: {d} < {floor}");
            }
        }
    }
}
