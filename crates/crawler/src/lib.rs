//! Breadth-first snowball crawler, reproducing the paper's §2
//! collection methodology:
//!
//! > *“The seed of the dataset are the 10 most popular videos in 25
//! > different countries, obtained through Youtube's public API. The
//! > dataset was then completed using a breadth-first snowball
//! > sampling of the graph of related videos.”*
//!
//! The crawler runs against any [`PlatformApi`] — in this repository
//! the synthetic platform of `tagdist-ytsim` — and produces a raw
//! [`Dataset`](tagdist_dataset::Dataset) plus [`CrawlStats`]
//! accounting. Two drivers are provided:
//!
//! * [`crawl`] — sequential BFS, fully deterministic,
//! * [`crawl_parallel`] — level-synchronized BFS fanned out over
//!   std scoped threads, returning a byte-identical dataset (the
//!   per-level fetch order is preserved by index).
//!
//! # Fault tolerance
//!
//! Since PR 5 the crawler absorbs transient platform faults
//! ([`tagdist_ytsim::FetchError`]) without giving up determinism:
//!
//! * [`RetryPolicy`] — deterministic exponential backoff with seeded
//!   jitter, a pure function of `(seed, key, attempt)`,
//! * [`RateLimitConfig`] — a client-side token bucket on the crawl's
//!   *virtual* clock,
//! * [`BreakerConfig`] — per-host circuit breakers with half-open
//!   probing that delay (never drop) requests,
//! * [`crawl_stepwise`]/[`crawl_parallel_stepwise`] — suspension into
//!   a [`CrawlCheckpoint`] and byte-identical resume.
//!
//! Worker threads return *fault traces* that the sequential merge
//! replays in frontier order, so every counter in [`CrawlStats`] is
//! identical at any thread count.
//!
//! # Example
//!
//! ```
//! use tagdist_crawler::{crawl, CrawlConfig};
//! use tagdist_ytsim::{Platform, WorldConfig};
//!
//! let platform = Platform::generate(WorldConfig::tiny());
//! let mut cfg = CrawlConfig::default();
//! cfg.with_budget(500);
//! let outcome = crawl(&platform, &cfg);
//! assert!(outcome.dataset.len() <= 500);
//! assert_eq!(outcome.stats.fetched, outcome.dataset.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod breaker;
pub mod checkpoint;
pub mod config;
pub mod driver;
pub mod incremental;
pub mod ratelimit;
pub mod retry;
pub mod stats;

pub use breaker::{BreakerConfig, CircuitBreaker, HostBreakers};
pub use checkpoint::{BreakerSnapshot, CheckpointError, CrawlCheckpoint};
pub use config::CrawlConfig;
pub use driver::{
    crawl, crawl_parallel, crawl_parallel_obs, crawl_parallel_stepwise,
    crawl_parallel_with_batches, crawl_stepwise, CrawlOutcome, CrawlRun,
};
pub use incremental::{recrawl, RecrawlOutcome};
pub use ratelimit::{RateLimitConfig, TokenBucket};
pub use retry::RetryPolicy;
pub use stats::CrawlStats;

// Re-exported so downstream crates name the API type without an extra
// dependency edge.
pub use tagdist_ytsim::PlatformApi;
