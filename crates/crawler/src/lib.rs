//! Breadth-first snowball crawler, reproducing the paper's §2
//! collection methodology:
//!
//! > *“The seed of the dataset are the 10 most popular videos in 25
//! > different countries, obtained through Youtube's public API. The
//! > dataset was then completed using a breadth-first snowball
//! > sampling of the graph of related videos.”*
//!
//! The crawler runs against any [`PlatformApi`] — in this repository
//! the synthetic platform of `tagdist-ytsim` — and produces a raw
//! [`Dataset`](tagdist_dataset::Dataset) plus [`CrawlStats`]
//! accounting. Two drivers are provided:
//!
//! * [`crawl`] — sequential BFS, fully deterministic,
//! * [`crawl_parallel`] — level-synchronized BFS fanned out over
//!   std scoped threads, returning a byte-identical dataset (the
//!   per-level fetch order is preserved by index).
//!
//! # Example
//!
//! ```
//! use tagdist_crawler::{crawl, CrawlConfig};
//! use tagdist_ytsim::{Platform, WorldConfig};
//!
//! let platform = Platform::generate(WorldConfig::tiny());
//! let mut cfg = CrawlConfig::default();
//! cfg.with_budget(500);
//! let outcome = crawl(&platform, &cfg);
//! assert!(outcome.dataset.len() <= 500);
//! assert_eq!(outcome.stats.fetched, outcome.dataset.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod config;
pub mod driver;
pub mod incremental;
pub mod stats;

pub use config::CrawlConfig;
pub use driver::{crawl, crawl_parallel, crawl_parallel_obs, CrawlOutcome};
pub use incremental::{recrawl, RecrawlOutcome};
pub use stats::CrawlStats;

// Re-exported so downstream crates name the API type without an extra
// dependency edge.
pub use tagdist_ytsim::PlatformApi;
