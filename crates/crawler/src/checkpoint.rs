//! Crawl checkpointing: suspend a BFS crawl to a text file and resume
//! it later, byte-identically.
//!
//! A paper-scale crawl runs for weeks; losing it to a reboot at day
//! twelve is not acceptable. A [`CrawlCheckpoint`] captures everything
//! the BFS loop needs to continue exactly where it stopped:
//!
//! * the partial dataset (embedded via a `tagdist-dataset`
//!   serialization — TSV by default, or the binary columnar format;
//!   readers sniff the magic and accept either),
//! * the frontier (next level, in order) and visited set,
//! * accumulated [`CrawlStats`],
//! * the virtual clock, token-bucket and per-host breaker state, so
//!   resumed throttle accounting continues seamlessly.
//!
//! The format is line-oriented text with a versioned magic header:
//!
//! ```text
//! #tagdist-checkpoint v1
//! #meta <key>=<escaped value>      (0+ lines, caller-defined, sorted)
//! #clock <virtual ms>
//! #bucket available=<millitokens> last=<ms>
//! #breaker <i> failures=<n> until=<none|ms> half_open=<0|1> trips=<n>
//! #stats <key>=<value> …           (every CrawlStats counter)
//! #per_depth <-|a,b,c>
//! #depth <n>
//! #frontier <count>
//! <escaped key>                    (count lines)
//! #visited <count>
//! <escaped key>                    (count lines, sorted)
//! #dataset
//! #tagdist-dataset v1 countries=<n>
//! …
//! ```
//!
//! Keys reuse the TSV escape scheme ([`tagdist_dataset::tsv::escape`])
//! so arbitrary keys stay one-per-line. The visited set is written
//! sorted, making checkpoint bytes deterministic. The `#dataset`
//! section may alternatively hold a `#tagdist-dataset bin v1` binary
//! image ([`CrawlCheckpoint::write_with_format`]); [`CrawlCheckpoint::read`]
//! dispatches on the embedded magic, which is why the parser walks the
//! header as raw bytes and only validates UTF-8 line by line.

use core::fmt;
use std::collections::BTreeMap;
use std::io::{Read, Write};

use tagdist_dataset::tsv::{escape, unescape};
use tagdist_dataset::{Dataset, DatasetError, DatasetFormat};

use crate::stats::CrawlStats;

/// The checkpoint format magic + version line.
const MAGIC: &str = "#tagdist-checkpoint v1";

/// Why reading or writing a checkpoint failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed checkpoint text.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The embedded dataset section failed to parse.
    Dataset(DatasetError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            CheckpointError::Dataset(e) => write!(f, "checkpoint dataset section: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Dataset(e) => Some(e),
            CheckpointError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

impl From<DatasetError> for CheckpointError {
    fn from(e: DatasetError) -> CheckpointError {
        CheckpointError::Dataset(e)
    }
}

/// Snapshot of one virtual host's circuit breaker.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BreakerSnapshot {
    /// Consecutive failures observed while closed.
    pub consecutive_failures: u32,
    /// `Some(t)` while the circuit is open until virtual time `t`.
    pub open_until_ms: Option<u64>,
    /// Whether the next request is the half-open probe.
    pub half_open: bool,
    /// Times this breaker has tripped.
    pub trips: u64,
}

/// A suspended crawl, ready to be serialized or resumed.
#[derive(Debug, Clone)]
pub struct CrawlCheckpoint {
    /// Caller-defined provenance (world seed, budget, fault profile…),
    /// written sorted by key. The crawler itself ignores it.
    pub meta: BTreeMap<String, String>,
    /// Virtual clock at suspension, in milliseconds.
    pub clock_ms: u64,
    /// Token-bucket millitokens available at suspension.
    pub bucket_available_milli: u64,
    /// Token-bucket last-refill timestamp.
    pub bucket_last_refill_ms: u64,
    /// Per-host breaker snapshots (index = host).
    pub breakers: Vec<BreakerSnapshot>,
    /// Accumulated crawl accounting.
    pub stats: CrawlStats,
    /// BFS depth of the pending frontier.
    pub depth: usize,
    /// The pending frontier, in fetch order.
    pub frontier: Vec<String>,
    /// Every key ever enqueued (sorted on write).
    pub visited: Vec<String>,
    /// The partial dataset crawled so far.
    pub dataset: Dataset,
}

impl CrawlCheckpoint {
    /// Serializes the checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from `writer` and dataset-section
    /// serialization errors.
    pub fn write<W: Write>(&self, writer: W) -> Result<(), CheckpointError> {
        self.write_with_format(writer, DatasetFormat::Tsv)
    }

    /// Serializes the checkpoint with the dataset section in the given
    /// format. TSV keeps the whole file line-oriented text; binary
    /// embeds a `#tagdist-dataset bin v1` image after the `#dataset`
    /// marker, which loads without per-video parsing on resume.
    ///
    /// # Errors
    ///
    /// As for [`CrawlCheckpoint::write`].
    pub fn write_with_format<W: Write>(
        &self,
        mut writer: W,
        format: DatasetFormat,
    ) -> Result<(), CheckpointError> {
        writeln!(writer, "{MAGIC}")?;
        for (key, value) in &self.meta {
            writeln!(writer, "#meta {}={}", escape(key), escape(value))?;
        }
        writeln!(writer, "#clock {}", self.clock_ms)?;
        writeln!(
            writer,
            "#bucket available={} last={}",
            self.bucket_available_milli, self.bucket_last_refill_ms
        )?;
        for (i, b) in self.breakers.iter().enumerate() {
            let until = match b.open_until_ms {
                Some(t) => t.to_string(),
                None => "none".to_owned(),
            };
            writeln!(
                writer,
                "#breaker {i} failures={} until={until} half_open={} trips={}",
                b.consecutive_failures,
                u8::from(b.half_open),
                b.trips
            )?;
        }
        let s = &self.stats;
        writeln!(
            writer,
            "#stats seeds={} fetched={} duplicate_links={} failed_fetches={} \
             frontier_exhausted={} chart_requests={} metadata_requests={} \
             related_requests={} retries={} transient_errors={} rate_limited={} \
             timeouts={} truncated_responses={} dangling_references={} \
             exhausted_retries={} exhausted_related={} breaker_trips={} \
             backoff_wait_ms={} throttle_wait_ms={} breaker_wait_ms={}",
            s.seeds,
            s.fetched,
            s.duplicate_links,
            s.failed_fetches,
            u8::from(s.frontier_exhausted),
            s.chart_requests,
            s.metadata_requests,
            s.related_requests,
            s.retries,
            s.transient_errors,
            s.rate_limited,
            s.timeouts,
            s.truncated_responses,
            s.dangling_references,
            s.exhausted_retries,
            s.exhausted_related,
            s.breaker_trips,
            s.backoff_wait_ms,
            s.throttle_wait_ms,
            s.breaker_wait_ms,
        )?;
        let per_depth = if s.per_depth.is_empty() {
            "-".to_owned()
        } else {
            s.per_depth
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(writer, "#per_depth {per_depth}")?;
        writeln!(writer, "#depth {}", self.depth)?;
        writeln!(writer, "#frontier {}", self.frontier.len())?;
        for key in &self.frontier {
            writeln!(writer, "{}", escape(key))?;
        }
        let mut visited = self.visited.clone();
        visited.sort_unstable();
        writeln!(writer, "#visited {}", visited.len())?;
        for key in &visited {
            writeln!(writer, "{}", escape(key))?;
        }
        writeln!(writer, "#dataset")?;
        match format {
            DatasetFormat::Tsv => tagdist_dataset::tsv::write(&self.dataset, writer)?,
            DatasetFormat::Binary => tagdist_dataset::write_binary(&self.dataset, writer)?,
        }
        Ok(())
    }

    /// Deserializes a checkpoint.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::Io`] on read failure,
    /// * [`CheckpointError::Parse`] on malformed header sections,
    /// * [`CheckpointError::Dataset`] if the embedded dataset is bad.
    pub fn read<R: Read>(mut reader: R) -> Result<CrawlCheckpoint, CheckpointError> {
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf)?;
        let mut cursor = Cursor::new(&buf);

        let magic = cursor
            .next_line()
            .ok_or_else(|| cursor.error("empty input"))?;
        if magic != MAGIC {
            return Err(cursor.error(&format!("bad magic {magic:?}, expected `{MAGIC}`")));
        }

        let mut meta = BTreeMap::new();
        let mut line = loop {
            let line = cursor
                .next_line()
                .ok_or_else(|| cursor.error("truncated before #clock"))?;
            let Some(rest) = line.strip_prefix("#meta ") else {
                break line;
            };
            let (key, value) = rest
                .split_once('=')
                .ok_or_else(|| cursor.error("bad #meta line, expected key=value"))?;
            let key = unescape(key).ok_or_else(|| cursor.error("bad escape in meta key"))?;
            let value = unescape(value).ok_or_else(|| cursor.error("bad escape in meta value"))?;
            meta.insert(key, value);
        };

        let clock_ms = parse_tagged(&cursor, line, "#clock ")?;

        line = cursor
            .next_line()
            .ok_or_else(|| cursor.error("truncated before #bucket"))?;
        let bucket = line
            .strip_prefix("#bucket ")
            .ok_or_else(|| cursor.error("expected #bucket line"))?;
        let fields = parse_fields(bucket);
        let bucket_available_milli = parse_field(&cursor, &fields, "available")?;
        let bucket_last_refill_ms = parse_field(&cursor, &fields, "last")?;

        let mut breakers = Vec::new();
        let mut line = loop {
            let line = cursor
                .next_line()
                .ok_or_else(|| cursor.error("truncated before #stats"))?;
            let Some(rest) = line.strip_prefix("#breaker ") else {
                break line;
            };
            let (index, rest) = rest
                .split_once(' ')
                .ok_or_else(|| cursor.error("bad #breaker line"))?;
            let index: usize = index
                .parse()
                .map_err(|_| cursor.error("bad breaker index"))?;
            if index != breakers.len() {
                return Err(cursor.error("breaker indices must be dense and ordered"));
            }
            let fields = parse_fields(rest);
            let until = fields
                .get("until")
                .ok_or_else(|| cursor.error("breaker line missing `until`"))?;
            let open_until_ms = if *until == "none" {
                None
            } else {
                Some(
                    until
                        .parse()
                        .map_err(|_| cursor.error("bad breaker `until` value"))?,
                )
            };
            breakers.push(BreakerSnapshot {
                consecutive_failures: u32::try_from(parse_field(&cursor, &fields, "failures")?)
                    .map_err(|_| cursor.error("breaker failures out of range"))?,
                open_until_ms,
                half_open: parse_field(&cursor, &fields, "half_open")? != 0,
                trips: parse_field(&cursor, &fields, "trips")?,
            });
        };

        let stats_line = line
            .strip_prefix("#stats ")
            .ok_or_else(|| cursor.error("expected #stats line"))?;
        let fields = parse_fields(stats_line);
        let count = |name: &str| -> Result<usize, CheckpointError> {
            usize::try_from(parse_field(&cursor, &fields, name)?)
                .map_err(|_| cursor.error(&format!("stats `{name}` out of range")))
        };
        let mut stats = CrawlStats {
            seeds: count("seeds")?,
            fetched: count("fetched")?,
            duplicate_links: count("duplicate_links")?,
            failed_fetches: count("failed_fetches")?,
            frontier_exhausted: parse_field(&cursor, &fields, "frontier_exhausted")? != 0,
            chart_requests: count("chart_requests")?,
            metadata_requests: count("metadata_requests")?,
            related_requests: count("related_requests")?,
            retries: count("retries")?,
            transient_errors: count("transient_errors")?,
            rate_limited: count("rate_limited")?,
            timeouts: count("timeouts")?,
            truncated_responses: count("truncated_responses")?,
            dangling_references: count("dangling_references")?,
            exhausted_retries: count("exhausted_retries")?,
            exhausted_related: count("exhausted_related")?,
            breaker_trips: count("breaker_trips")?,
            backoff_wait_ms: parse_field(&cursor, &fields, "backoff_wait_ms")?,
            throttle_wait_ms: parse_field(&cursor, &fields, "throttle_wait_ms")?,
            breaker_wait_ms: parse_field(&cursor, &fields, "breaker_wait_ms")?,
            per_depth: Vec::new(),
        };

        line = cursor
            .next_line()
            .ok_or_else(|| cursor.error("truncated before #per_depth"))?;
        let per_depth = line
            .strip_prefix("#per_depth ")
            .ok_or_else(|| cursor.error("expected #per_depth line"))?;
        if per_depth != "-" {
            for part in per_depth.split(',') {
                stats.per_depth.push(
                    part.parse()
                        .map_err(|_| cursor.error("bad per_depth entry"))?,
                );
            }
        }

        line = cursor
            .next_line()
            .ok_or_else(|| cursor.error("truncated before #depth"))?;
        let depth = parse_tagged(&cursor, line, "#depth ")?;
        let depth = usize::try_from(depth).map_err(|_| cursor.error("depth out of range"))?;

        let frontier = read_key_section(&mut cursor, "#frontier ")?;
        let visited = read_key_section(&mut cursor, "#visited ")?;

        line = cursor
            .next_line()
            .ok_or_else(|| cursor.error("truncated before #dataset"))?;
        if line != "#dataset" {
            return Err(cursor.error("expected #dataset marker"));
        }
        let dataset = tagdist_dataset::decode_any(cursor.rest())?;

        Ok(CrawlCheckpoint {
            meta,
            clock_ms,
            bucket_available_milli,
            bucket_last_refill_ms,
            breakers,
            stats,
            depth,
            frontier,
            visited,
            dataset,
        })
    }

    /// Serializes to an in-memory string (convenience for tests and
    /// the CLI).
    ///
    /// # Errors
    ///
    /// As for [`CrawlCheckpoint::write`].
    pub fn to_string_lossless(&self) -> Result<String, CheckpointError> {
        let mut buf = Vec::new();
        self.write(&mut buf)?;
        String::from_utf8(buf).map_err(|_| CheckpointError::Parse {
            line: 0,
            message: "checkpoint text is not UTF-8".into(),
        })
    }
}

/// Line cursor over the checkpoint bytes, tracking position for error
/// messages and exposing the unread remainder (the dataset section).
///
/// Works on bytes rather than `&str` because the dataset section may
/// be a binary image; each *header* line is individually validated as
/// UTF-8 when read.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            line: 0,
        }
    }

    /// Next header line as text; `None` at end of input or when the
    /// line is not UTF-8 (binary bytes where a header was expected —
    /// the caller's "truncated/expected" error applies either way).
    fn next_line(&mut self) -> Option<&'a str> {
        if self.pos >= self.buf.len() {
            return None;
        }
        self.line += 1;
        let rest = &self.buf[self.pos..];
        let bytes = match rest.iter().position(|&b| b == b'\n') {
            Some(idx) => {
                self.pos += idx + 1;
                &rest[..idx]
            }
            None => {
                self.pos = self.buf.len();
                rest
            }
        };
        std::str::from_utf8(bytes).ok()
    }

    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn error(&self, message: &str) -> CheckpointError {
        CheckpointError::Parse {
            line: self.line.max(1),
            message: message.to_owned(),
        }
    }
}

/// Parses `#tag N` lines.
fn parse_tagged(cursor: &Cursor<'_>, line: &str, tag: &str) -> Result<u64, CheckpointError> {
    let value = line
        .strip_prefix(tag)
        .ok_or_else(|| cursor.error(&format!("expected `{}` line", tag.trim_end())))?;
    value
        .parse()
        .map_err(|_| cursor.error(&format!("bad number in `{}` line", tag.trim_end())))
}

/// Splits `a=1 b=2` into a field map.
fn parse_fields(text: &str) -> BTreeMap<&str, &str> {
    text.split_whitespace()
        .filter_map(|pair| pair.split_once('='))
        .collect()
}

/// Looks up and parses one numeric field.
fn parse_field(
    cursor: &Cursor<'_>,
    fields: &BTreeMap<&str, &str>,
    name: &str,
) -> Result<u64, CheckpointError> {
    fields
        .get(name)
        .ok_or_else(|| cursor.error(&format!("missing field `{name}`")))?
        .parse()
        .map_err(|_| cursor.error(&format!("bad value for field `{name}`")))
}

/// Reads a `#section N` header plus its N escaped key lines.
fn read_key_section(cursor: &mut Cursor<'_>, tag: &str) -> Result<Vec<String>, CheckpointError> {
    let line = cursor
        .next_line()
        .ok_or_else(|| cursor.error(&format!("truncated before `{}`", tag.trim_end())))?;
    let count = parse_tagged(cursor, line, tag)?;
    let count = usize::try_from(count).map_err(|_| cursor.error("section count out of range"))?;
    let mut keys = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let line = cursor
            .next_line()
            .ok_or_else(|| cursor.error("truncated key section"))?;
        keys.push(unescape(line).ok_or_else(|| cursor.error("bad escape in key"))?);
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{DatasetBuilder, RawPopularity};

    fn sample() -> CrawlCheckpoint {
        let mut b = DatasetBuilder::new(3);
        b.push_video_titled(
            "k1",
            "weird,title\twith\nescapes",
            10,
            &["pop", "a,b"],
            RawPopularity::decode(vec![1, 2, 3], 3),
        );
        b.push_video("k2", 5, &[], RawPopularity::Missing);
        let mut meta = BTreeMap::new();
        meta.insert("world_seed".to_owned(), "2011".to_owned());
        meta.insert("note".to_owned(), "has = and , and\ttab".to_owned());
        CrawlCheckpoint {
            meta,
            clock_ms: 123_456,
            bucket_available_milli: 7_500,
            bucket_last_refill_ms: 123_400,
            breakers: vec![
                BreakerSnapshot {
                    consecutive_failures: 2,
                    open_until_ms: None,
                    half_open: false,
                    trips: 1,
                },
                BreakerSnapshot {
                    consecutive_failures: 0,
                    open_until_ms: Some(150_000),
                    half_open: true,
                    trips: 3,
                },
            ],
            stats: CrawlStats {
                seeds: 4,
                fetched: 2,
                duplicate_links: 7,
                failed_fetches: 1,
                dangling_references: 1,
                retries: 5,
                transient_errors: 3,
                rate_limited: 1,
                timeouts: 1,
                backoff_wait_ms: 4_000,
                throttle_wait_ms: 2_000,
                per_depth: vec![2],
                ..CrawlStats::default()
            },
            depth: 1,
            frontier: vec!["next,with\tescape".to_owned(), "plain".to_owned()],
            visited: vec!["k2".to_owned(), "k1".to_owned(), "plain".to_owned()],
            dataset: b.build(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let cp = sample();
        let text = cp.to_string_lossless().unwrap();
        assert!(text.starts_with("#tagdist-checkpoint v1\n"));
        let back = CrawlCheckpoint::read(text.as_bytes()).unwrap();
        assert_eq!(back.meta, cp.meta);
        assert_eq!(back.clock_ms, cp.clock_ms);
        assert_eq!(back.bucket_available_milli, cp.bucket_available_milli);
        assert_eq!(back.bucket_last_refill_ms, cp.bucket_last_refill_ms);
        assert_eq!(back.breakers, cp.breakers);
        assert_eq!(back.stats, cp.stats);
        assert_eq!(back.depth, cp.depth);
        assert_eq!(back.frontier, cp.frontier);
        let mut sorted = cp.visited.clone();
        sorted.sort_unstable();
        assert_eq!(back.visited, sorted, "visited is written sorted");
        assert_eq!(back.dataset.len(), cp.dataset.len());
        assert_eq!(
            back.dataset.by_key("k1").unwrap().title,
            "weird,title\twith\nescapes"
        );
        // Serialization is a fixed point: write(read(x)) == x.
        let again = back.to_string_lossless().unwrap();
        assert_eq!(again, text);
    }

    #[test]
    fn binary_dataset_section_round_trips() {
        let cp = sample();
        let mut buf = Vec::new();
        cp.write_with_format(&mut buf, tagdist_dataset::DatasetFormat::Binary)
            .unwrap();
        // The header stays text; the dataset section carries the
        // binary magic.
        let marker = b"#dataset\n";
        let at = buf.windows(marker.len()).position(|w| w == marker).unwrap();
        assert!(buf[at + marker.len()..].starts_with(b"#tagdist-dataset bin v1\n"));
        let back = CrawlCheckpoint::read(&buf[..]).unwrap();
        assert_eq!(back.stats, cp.stats);
        assert_eq!(back.frontier, cp.frontier);
        assert_eq!(back.dataset.len(), cp.dataset.len());
        for (a, b) in cp.dataset.iter().zip(back.dataset.iter()) {
            assert_eq!(a, b);
        }
        // Both embeddings resume to the same dataset bytes.
        let text = cp.to_string_lossless().unwrap();
        let from_text = CrawlCheckpoint::read(text.as_bytes()).unwrap();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        tagdist_dataset::tsv::write(&from_text.dataset, &mut x).unwrap();
        tagdist_dataset::tsv::write(&back.dataset, &mut y).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn empty_per_depth_round_trips() {
        let mut cp = sample();
        cp.stats.per_depth.clear();
        let text = cp.to_string_lossless().unwrap();
        let back = CrawlCheckpoint::read(text.as_bytes()).unwrap();
        assert!(back.stats.per_depth.is_empty());
    }

    #[test]
    fn rejects_malformed_checkpoints() {
        let good = sample().to_string_lossless().unwrap();
        // Bad magic.
        let err = CrawlCheckpoint::read("#nope v9\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Parse { line: 1, .. }),
            "{err}"
        );
        // Truncation anywhere in the header is a parse error.
        for cut in [30, 80, 200] {
            if cut < good.len() {
                let err = CrawlCheckpoint::read(&good.as_bytes()[..cut]).unwrap_err();
                assert!(
                    matches!(
                        err,
                        CheckpointError::Parse { .. } | CheckpointError::Dataset(_)
                    ),
                    "cut at {cut}: {err}"
                );
            }
        }
        // A corrupted stats field is named in the message.
        let bad = good.replace("retries=5", "retries=x");
        let err = CrawlCheckpoint::read(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("retries"), "{err}");
    }

    #[test]
    fn errors_render_for_humans() {
        let err = CheckpointError::Parse {
            line: 3,
            message: "boom".into(),
        };
        assert!(err.to_string().contains("line 3"));
        let io = CheckpointError::from(std::io::Error::other("disk gone"));
        assert!(io.to_string().contains("disk gone"));
    }
}
