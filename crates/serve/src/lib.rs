//! `tagdist-serve` — the online face of the study: a zero-dependency
//! HTTP/1.1 query service over published [`EpochSnapshot`]s, plus the
//! seeded Zipf load generator that stress-tests it.
//!
//! The paper's end goal is not an offline report but *serving*
//! geographic tag knowledge to online systems (proactive CDN
//! placement, §6). This crate puts real readers on the epoch machinery
//! the ingest engine publishes into:
//!
//! * [`http`] — a minimal, bounded HTTP/1.1 request parser and
//!   response writer over `std::net` (no external dependencies, GET
//!   only, hard limits on request size).
//! * [`query`] — the route renderers. Every body is produced by the
//!   *same* functions the offline CLI uses, so a served response is
//!   byte-identical to the corresponding `tagdist stats`/`tag`/
//!   `country`/`ingest --cold` output: the repo's determinism
//!   contract extended to the network boundary.
//! * [`server`] — the accept loop: non-blocking accepts drained in
//!   batches onto the `tagdist-par` worker pool, each connection
//!   pinning the current epoch (an `Arc` clone) for its whole
//!   lifetime. Publishing a new epoch under live traffic never locks
//!   the read path.
//! * [`signal`] — SIGTERM/SIGINT → graceful-shutdown flag (the one
//!   sanctioned `unsafe` outside `tagdist-dataset`'s mmap module).
//! * [`loadgen`] — `tagdist bench-serve`: replays seeded synthetic
//!   requests with Zipf-distributed tag popularity sampled from the
//!   corpus itself, asserts every response body against the offline
//!   answer, and reports p50/p99 latency and throughput.
//!
//! [`EpochSnapshot`]: tagdist::reconstruct::EpochSnapshot

#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod http;
pub mod loadgen;
pub mod query;
pub mod server;
pub mod signal;

pub use http::{HttpError, Request};
pub use loadgen::{LoadConfig, LoadReport, SmokeQuery};
pub use query::{load_clean, QueryError};
pub use server::{ServeState, ServeStats, Server, ServerConfig};
