//! `tagdist bench-serve`: a seeded load generator with Zipf-shaped tag
//! popularity, plus the fixed smoke query set the CI serve-oracle lane
//! replays.
//!
//! Measurement studies of YouTube popularity (Figueiredo et al.;
//! Barjasteh et al.) consistently find heavy-tailed view
//! concentration, so the generator does not draw tags uniformly: it
//! ranks the corpus's tags by total reconstructed views and samples
//! rank *r* with probability ∝ 1/r — a Zipf distribution over the
//! corpus's own popularity order. The request mix mirrors the study's
//! questions (mostly `/tag`, some `/country`, `/video`, `/predict`,
//! `/stats`).
//!
//! Every generated target's *expected* body is precomputed offline via
//! [`ServeState::respond`] — the same renderers the CLI prints with —
//! and every response is compared byte for byte. A load run is thus
//! simultaneously a latency benchmark and a determinism oracle at the
//! network boundary.
//!
//! This is the one serve module allowed to read the wall clock
//! (latency percentiles need real time; see the xtask `wall-clock`
//! allowlist).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tagdist::dataset::CleanDataset;
use tagdist::geo::{world, TrafficModel};
use tagdist::reconstruct::TagViewTable;

use crate::http::percent_encode;
use crate::server::ServeState;

/// Distinct top-ranked tags the Zipf sampler draws from.
const ZIPF_TAG_RANKS: usize = 1024;

/// Distinct video keys the `/video` mix draws from.
const VIDEO_KEY_POOL: usize = 512;

/// Requests sent per connection before reconnecting (bounds ephemeral
/// port churn without pinning a server worker forever).
const REQUESTS_PER_CONNECTION: u64 = 256;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target address (`host:port`).
    pub addr: String,
    /// Total requests to replay.
    pub requests: u64,
    /// Concurrent client workers.
    pub concurrency: usize,
    /// Seed for the request plan (same seed → same plan, bytes and
    /// order).
    pub seed: u64,
    /// Per-response read timeout in milliseconds.
    pub read_timeout_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:0".to_owned(),
            requests: 10_000,
            concurrency: 4,
            seed: 42,
            read_timeout_ms: 10_000,
        }
    }
}

/// One named smoke query (the name is the dump-file stem the CI lane
/// `cmp`s against the offline answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmokeQuery {
    /// Stable artifact stem, e.g. `country_BR`.
    pub name: String,
    /// Request target, e.g. `/country/BR`.
    pub target: String,
}

/// What a load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests completed (success or failure).
    pub requests: u64,
    /// Transport-level failures (connect/read/write errors).
    pub failures: u64,
    /// Responses whose `(status, body)` differed from the offline
    /// answer — the number that must be zero.
    pub identity_failures: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Wall time of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Response bytes received (bodies only).
    pub body_bytes: u64,
}

impl LoadReport {
    /// The human summary `tagdist bench-serve` prints.
    pub fn summary(&self) -> String {
        format!(
            "bench-serve: {} requests, {} failures, {} identity failures\n\
             latency: p50 {} us, p99 {} us\n\
             throughput: {:.0} req/s over {} ms ({} body bytes)\n",
            self.requests,
            self.failures,
            self.identity_failures,
            self.p50_us,
            self.p99_us,
            self.throughput_rps,
            self.elapsed_ms,
            self.body_bytes
        )
    }

    /// The machine summary (`--summary FILE`, uploaded as a CI
    /// artifact and embedded in `BENCH_PR10.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"failures\": {}, \"identity_failures\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"elapsed_ms\": {}, \
             \"throughput_rps\": {:.1}, \"body_bytes\": {}}}",
            self.requests,
            self.failures,
            self.identity_failures,
            self.p50_us,
            self.p99_us,
            self.elapsed_ms,
            self.throughput_rps,
            self.body_bytes
        )
    }
}

/// The bench report's seeded LCG (splitmix-style update, top bits).
#[derive(Debug, Clone)]
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 53) as f64
    }
}

/// The corpus-derived sampling pools: tags in view-rank order, video
/// keys, country codes.
#[derive(Debug, Clone, Default)]
struct Pools {
    /// Tag names, most viewed first (Zipf rank order).
    tags: Vec<String>,
    /// Zipf cumulative weights, aligned with `tags`.
    zipf_cdf: Vec<f64>,
    keys: Vec<String>,
    codes: Vec<String>,
}

fn pools(clean: &CleanDataset, table: &TagViewTable) -> Pools {
    let tags: Vec<String> = table
        .top_by_views(ZIPF_TAG_RANKS)
        .into_iter()
        .map(|(tag, _)| clean.tags().name(tag).to_owned())
        .collect();
    // Zipf over ranks: weight(r) = 1/(r+1); the prefix accumulation is
    // an order-fixed scalar loop, not a data reduction.
    let mut zipf_cdf = Vec::with_capacity(tags.len());
    let mut acc = 0.0f64;
    for rank in 0..tags.len() {
        acc += 1.0 / (rank as f64 + 1.0);
        zipf_cdf.push(acc);
    }
    let stride = (clean.len() / VIDEO_KEY_POOL).max(1);
    let keys: Vec<String> = (0..clean.len())
        .step_by(stride)
        .take(VIDEO_KEY_POOL)
        .map(|pos| clean.key_of(pos).to_owned())
        .collect();
    let codes: Vec<String> = world().iter().map(|c| c.code.to_owned()).collect();
    Pools {
        tags,
        zipf_cdf,
        keys,
        codes,
    }
}

/// Draws a Zipf-distributed tag rank (0 = most viewed).
fn zipf_rank(cdf: &[f64], rng: &mut Lcg) -> usize {
    let last = match cdf.last() {
        Some(&total) => total,
        None => return 0,
    };
    let needle = rng.next_f64() * last;
    cdf.partition_point(|&c| c < needle).min(cdf.len() - 1)
}

/// Builds the seeded request plan: `requests` targets over the study's
/// query mix with Zipf-shaped tag popularity. Same corpus + seed →
/// same plan, at any thread count.
pub fn zipf_plan(
    clean: &CleanDataset,
    table: &TagViewTable,
    requests: u64,
    seed: u64,
) -> Vec<String> {
    let pools = pools(clean, table);
    let mut rng = Lcg::new(seed);
    let mut plan = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        let roll = rng.next() % 100;
        let target = if roll < 60 && !pools.tags.is_empty() {
            let rank = zipf_rank(&pools.zipf_cdf, &mut rng);
            format!("/tag/{}", percent_encode(&pools.tags[rank]))
        } else if roll < 75 && !pools.codes.is_empty() {
            let i = (rng.next() % pools.codes.len() as u64) as usize;
            format!("/country/{}", pools.codes[i])
        } else if roll < 85 && !pools.keys.is_empty() {
            let i = (rng.next() % pools.keys.len() as u64) as usize;
            format!("/video/{}", percent_encode(&pools.keys[i]))
        } else if roll < 92 && pools.tags.len() >= 2 {
            let a = zipf_rank(&pools.zipf_cdf, &mut rng);
            let b = zipf_rank(&pools.zipf_cdf, &mut rng);
            format!(
                "/predict/{}/{}",
                percent_encode(&pools.tags[a]),
                percent_encode(&pools.tags[b])
            )
        } else {
            "/stats".to_owned()
        };
        plan.push(target);
    }
    plan
}

/// The fixed query set the CI lane replays: stable names, targets
/// derived only from the corpus. `/stats`, `/country/BR` and `/report`
/// are `cmp`d against offline CLI output by name; the tag/video/
/// predict entries are identity-checked in-process like every other
/// request.
pub fn smoke_queries(clean: &CleanDataset, table: &TagViewTable) -> Vec<SmokeQuery> {
    let mut queries = vec![
        SmokeQuery {
            name: "stats".to_owned(),
            target: "/stats".to_owned(),
        },
        SmokeQuery {
            name: "country_BR".to_owned(),
            target: "/country/BR".to_owned(),
        },
        SmokeQuery {
            name: "report".to_owned(),
            target: "/report".to_owned(),
        },
    ];
    let top = table.top_by_views(2);
    if let Some((tag, _)) = top.first() {
        queries.push(SmokeQuery {
            name: "tag_top".to_owned(),
            target: format!("/tag/{}", percent_encode(clean.tags().name(*tag))),
        });
    }
    if !clean.is_empty() {
        queries.push(SmokeQuery {
            name: "video_first".to_owned(),
            target: format!("/video/{}", percent_encode(clean.key_of(0))),
        });
    }
    if let [(a, _), (b, _)] = top.as_slice() {
        queries.push(SmokeQuery {
            name: "predict_top2".to_owned(),
            target: format!(
                "/predict/{}/{}",
                percent_encode(clean.tags().name(*a)),
                percent_encode(clean.tags().name(*b))
            ),
        });
    }
    queries
}

/// Polls `addr` until `GET /healthz` answers 200 (or attempts run
/// out) — how `bench-serve` waits for a separately booted server.
pub fn wait_ready(addr: &str, attempts: u32, delay: Duration) -> bool {
    for _ in 0..attempts {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let sent = stream
                .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                .is_ok();
            if sent {
                let mut client = Client::from_stream(stream);
                if let Ok((200, _)) = client.read_response() {
                    return true;
                }
            }
        }
        std::thread::sleep(delay);
    }
    false
}

/// A tiny blocking HTTP/1.1 client over one connection, buffering
/// across keep-alive responses.
#[derive(Debug)]
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str, read_timeout_ms: u64) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(read_timeout_ms.max(1))))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    fn from_stream(stream: TcpStream) -> Client {
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, target: &str, keep_alive: bool) -> Result<(), String> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!("GET {target} HTTP/1.1\r\nConnection: {connection}\r\n\r\n");
        self.stream
            .write_all(head.as_bytes())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Reads one full response; returns `(status, body)`.
    fn read_response(&mut self) -> Result<(u16, Vec<u8>), String> {
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line in {head:?}"))?;
        let length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or("response without Content-Length")?;
        while self.buf.len() < head_end + length {
            self.fill()?;
        }
        let body = self.buf[head_end..head_end + length].to_vec();
        self.buf.drain(..head_end + length);
        Ok((status, body))
    }

    fn fill(&mut self) -> Result<(), String> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-response".to_owned());
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

/// Replays `plan` against `cfg.addr` with `cfg.concurrency` workers,
/// asserting every response against `expected` (target → offline
/// `(status, body)`).
///
/// # Errors
///
/// Returns a message when no worker completes a single request (the
/// server is unreachable); individual request failures are *counted*,
/// not fatal.
pub fn replay(
    cfg: &LoadConfig,
    plan: &[String],
    expected: &HashMap<String, (u16, Vec<u8>)>,
) -> Result<LoadReport, String> {
    let workers = cfg.concurrency.max(1);
    let failures = AtomicU64::new(0);
    let identity_failures = AtomicU64::new(0);
    let body_bytes = AtomicU64::new(0);
    let started = Instant::now();
    let mut lanes: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let failures = &failures;
            let identity_failures = &identity_failures;
            let body_bytes = &body_bytes;
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut client: Option<Client> = None;
                let mut on_conn = 0u64;
                for target in plan.iter().skip(w).step_by(workers) {
                    if on_conn >= REQUESTS_PER_CONNECTION {
                        client = None;
                    }
                    let t0 = Instant::now();
                    let outcome = exchange(
                        &mut client,
                        &mut on_conn,
                        &cfg.addr,
                        cfg.read_timeout_ms,
                        target,
                    );
                    match outcome {
                        Ok((status, body)) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            body_bytes.fetch_add(body.len() as u64, Ordering::Relaxed);
                            if let Some((want_status, want_body)) = expected.get(target) {
                                if status != *want_status || body != *want_body {
                                    identity_failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => {
                            latencies.push(t0.elapsed().as_micros() as u64);
                            failures.fetch_add(1, Ordering::Relaxed);
                            client = None;
                        }
                    }
                }
                latencies
            }));
        }
        for handle in handles {
            if let Ok(latencies) = handle.join() {
                lanes.push(latencies);
            }
        }
    });

    let elapsed = started.elapsed();
    let mut latencies: Vec<u64> = lanes.into_iter().flatten().collect();
    if latencies.is_empty() {
        return Err(format!("no request completed against {}", cfg.addr));
    }
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let pct = |p: u64| latencies[((requests - 1) * p / 100) as usize];
    let secs = elapsed.as_secs_f64();
    Ok(LoadReport {
        requests,
        failures: failures.load(Ordering::Relaxed),
        identity_failures: identity_failures.load(Ordering::Relaxed),
        p50_us: pct(50),
        p99_us: pct(99),
        elapsed_ms: elapsed.as_millis() as u64,
        throughput_rps: if secs > 0.0 {
            requests as f64 / secs
        } else {
            requests as f64
        },
        body_bytes: body_bytes.load(Ordering::Relaxed),
    })
}

/// One request over a (re)usable keep-alive connection, reconnecting
/// once if the pooled connection went stale.
fn exchange(
    client: &mut Option<Client>,
    on_conn: &mut u64,
    addr: &str,
    read_timeout_ms: u64,
    target: &str,
) -> Result<(u16, Vec<u8>), String> {
    for attempt in 0..2 {
        if client.is_none() {
            *client = Some(Client::connect(addr, read_timeout_ms)?);
            *on_conn = 0;
        }
        let Some(c) = client.as_mut() else {
            continue;
        };
        let result = c.send(target, true).and_then(|()| c.read_response());
        match result {
            Ok(answer) => {
                *on_conn += 1;
                return Ok(answer);
            }
            Err(e) => {
                // A stale pooled connection fails the first attempt;
                // retry once on a fresh one.
                *client = None;
                if attempt == 1 {
                    return Err(e);
                }
            }
        }
    }
    Err("unreachable: both attempts returned".to_owned())
}

/// Precomputes offline `(status, body)` answers for every distinct
/// target in `plan` — the identity oracle a load run checks against.
pub fn expected_bodies(
    state: &ServeState,
    traffic: &TrafficModel,
    plan: &[String],
) -> HashMap<String, (u16, Vec<u8>)> {
    let mut expected = HashMap::new();
    for target in plan {
        if !expected.contains_key(target) {
            let (status, _reason, body) = state.respond(traffic, target);
            expected.insert(target.clone(), (status, body.into_bytes()));
        }
    }
    expected
}

/// Runs the full Zipf load: builds the plan from the offline state,
/// precomputes expected bodies, replays, and reports.
///
/// # Errors
///
/// As for [`replay`].
pub fn run(
    cfg: &LoadConfig,
    state: &ServeState,
    traffic: &TrafficModel,
) -> Result<LoadReport, String> {
    let plan = zipf_plan(
        &state.snapshot.clean,
        &state.snapshot.table,
        cfg.requests,
        cfg.seed,
    );
    let expected = expected_bodies(state, traffic, &plan);
    replay(cfg, &plan, &expected)
}

/// Replays the fixed smoke set sequentially (one `Connection: close`
/// request each), asserting identity and optionally dumping each body
/// to `dump_dir/<name>.body` for the CI lane to `cmp`.
///
/// # Errors
///
/// Returns a message on transport failure or when a dump file cannot
/// be written; identity mismatches are counted in the report.
pub fn run_smoke(
    cfg: &LoadConfig,
    state: &ServeState,
    traffic: &TrafficModel,
    dump_dir: Option<&str>,
) -> Result<LoadReport, String> {
    let queries = smoke_queries(&state.snapshot.clean, &state.snapshot.table);
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(queries.len());
    let mut identity_failures = 0u64;
    let mut body_bytes = 0u64;
    for query in &queries {
        let t0 = Instant::now();
        let mut client = Client::connect(&cfg.addr, cfg.read_timeout_ms)?;
        client.send(&query.target, false)?;
        let (status, body) = client.read_response()?;
        latencies.push(t0.elapsed().as_micros() as u64);
        body_bytes += body.len() as u64;
        let (want_status, _reason, want_body) = state.respond(traffic, &query.target);
        if status != want_status || body != want_body.as_bytes() {
            identity_failures += 1;
        }
        if let Some(dir) = dump_dir {
            let path = format!("{dir}/{}.body", query.name);
            std::fs::write(&path, &body).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let pct = |p: u64| {
        if requests == 0 {
            0
        } else {
            latencies[((requests - 1) * p / 100) as usize]
        }
    };
    let secs = elapsed.as_secs_f64();
    Ok(LoadReport {
        requests,
        failures: 0,
        identity_failures,
        p50_us: pct(50),
        p99_us: pct(99),
        elapsed_ms: elapsed.as_millis() as u64,
        throughput_rps: if secs > 0.0 {
            requests as f64 / secs
        } else {
            requests as f64
        },
        body_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use tagdist::dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist::par::Pool;
    use tagdist::reconstruct::{EpochSnapshot, SnapshotCell};

    use crate::server::{Server, ServerConfig};

    fn state() -> (ServeState, TrafficModel) {
        let traffic = TrafficModel::reference(world());
        let cc = world().len();
        let mut b = DatasetBuilder::new(cc);
        for i in 0..300usize {
            let raw: Vec<u8> = (0..cc).map(|c| ((i * 11 + c * 3) % 62) as u8).collect();
            let tags: Vec<String> = (0..1 + i % 3)
                .map(|t| format!("z{}", (i + t) % 19))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video(
                &format!("vid{i}"),
                100 + (i * 31) as u64,
                &tag_refs,
                RawPopularity::decode(raw, cc),
            );
        }
        let clean = filter(&b.build());
        let snapshot = Arc::new(EpochSnapshot::rebuild(1, clean, traffic.distribution()).unwrap());
        (ServeState::build(snapshot, traffic.distribution()), traffic)
    }

    #[test]
    fn plans_are_seed_deterministic_and_zipf_skewed() {
        let (state, _) = state();
        let clean = &state.snapshot.clean;
        let table = &state.snapshot.table;
        let a = zipf_plan(clean, table, 2_000, 7);
        let b = zipf_plan(clean, table, 2_000, 7);
        assert_eq!(a, b);
        let c = zipf_plan(clean, table, 2_000, 8);
        assert_ne!(a, c, "different seeds must reshuffle the plan");

        // Zipf skew: the single most frequent /tag target must clearly
        // outnumber the average /tag target.
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let mut tag_total = 0u64;
        for t in &a {
            if t.starts_with("/tag/") {
                *counts.entry(t.as_str()).or_default() += 1;
                tag_total += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        let mean = tag_total / counts.len() as u64;
        assert!(
            max > mean * 4,
            "head tag ({max}) should dominate the mean ({mean})"
        );
    }

    #[test]
    fn smoke_set_is_fixed_and_named() {
        let (state, _) = state();
        let queries = smoke_queries(&state.snapshot.clean, &state.snapshot.table);
        let names: Vec<&str> = queries.iter().map(|q| q.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "stats",
                "country_BR",
                "report",
                "tag_top",
                "video_first",
                "predict_top2"
            ]
        );
    }

    #[test]
    fn load_run_against_a_live_server_is_byte_identical() {
        let (offline, traffic) = state();
        let cell = Arc::new(SnapshotCell::new());
        cell.store(Arc::clone(&offline.snapshot));
        let server = Server::bind(
            "127.0.0.1:0",
            cell,
            traffic.clone(),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let pool = Pool::new(2);
            server.run(&pool, &flag)
        });
        assert!(wait_ready(&addr, 100, Duration::from_millis(10)));

        let cfg = LoadConfig {
            addr: addr.clone(),
            requests: 400,
            concurrency: 3,
            seed: 11,
            read_timeout_ms: 5_000,
        };
        let report = run(&cfg, &offline, &traffic).unwrap();
        assert_eq!(report.requests, 400);
        assert_eq!(report.failures, 0, "transport failures against localhost");
        assert_eq!(report.identity_failures, 0, "served bytes != offline bytes");
        assert!(report.throughput_rps > 0.0);

        let tmp = std::env::temp_dir().join(format!("tagdist-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let smoke = run_smoke(&cfg, &offline, &traffic, tmp.to_str()).unwrap();
        assert_eq!(smoke.identity_failures, 0);
        assert_eq!(smoke.requests, 6);
        let stats_dump = std::fs::read(tmp.join("stats.body")).unwrap();
        assert_eq!(
            stats_dump,
            crate::query::stats_body(&offline.snapshot.clean).into_bytes()
        );
        std::fs::remove_dir_all(&tmp).unwrap();

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
    }
}
