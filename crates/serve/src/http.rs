//! A minimal, bounded HTTP/1.1 layer over `std::io` streams.
//!
//! The service is deliberately zero-dependency: its needs are one
//! method (`GET`), plain-text bodies, and `Connection: close` /
//! keep-alive — a few hundred lines of `std` cover that. The parser is
//! *bounded* everywhere a client controls a size: the whole request
//! head (request line + headers) is capped at [`MAX_REQUEST_BYTES`]
//! and the header count at [`MAX_HEADERS`], so a hostile client can
//! neither balloon memory nor wedge a worker. Every malformed input
//! maps to a 4xx/close on *that* connection only — the robustness
//! suite's degradation contract.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on the request head (request line + all headers).
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// A parsed request head. Bodies are never read: every route is a GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token (only `GET` is ever dispatched).
    pub method: String,
    /// The raw request target (percent-encoded path).
    pub target: String,
    /// Whether the connection should be kept open after the response
    /// (HTTP/1.1 default, overridable by a `Connection` header).
    pub keep_alive: bool,
}

/// Everything that can go wrong reading one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken request line or header.
    BadRequest(String),
    /// The request head exceeded [`MAX_REQUEST_BYTES`] or
    /// [`MAX_HEADERS`].
    TooLarge,
    /// A syntactically valid method other than `GET`.
    MethodNotAllowed,
    /// An HTTP version outside 1.0/1.1.
    UnsupportedVersion,
    /// The client vanished mid-request (premature EOF).
    Disconnected,
    /// Transport error (read timeout included).
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::TooLarge => write!(f, "request head too large"),
            HttpError::MethodNotAllowed => write!(f, "method not allowed"),
            HttpError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            HttpError::Disconnected => write!(f, "client disconnected"),
            HttpError::Io(why) => write!(f, "transport error: {why}"),
        }
    }
}

impl HttpError {
    /// The response to send for this error, if one is sendable at all
    /// (`None`: the client is gone — just close).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::TooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::MethodNotAllowed => Some((405, "Method Not Allowed")),
            HttpError::UnsupportedVersion => Some((505, "HTTP Version Not Supported")),
            HttpError::Disconnected | HttpError::Io(_) => None,
        }
    }
}

/// Incremental request reader for one connection. Bytes read past the
/// current request's terminator stay buffered for the next call, so
/// keep-alive (and even pipelined) clients parse correctly.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    /// A reader with an empty buffer.
    pub fn new() -> RequestReader {
        RequestReader::default()
    }

    /// Reads and parses the next request head from `stream`.
    ///
    /// Returns `Ok(None)` on a clean EOF *between* requests — the
    /// normal end of a keep-alive connection.
    ///
    /// # Errors
    ///
    /// [`HttpError::Disconnected`] on EOF mid-request, `TooLarge` /
    /// `BadRequest` / `MethodNotAllowed` / `UnsupportedVersion` on
    /// malformed input, `Io` on transport failure (timeouts included).
    pub fn read_request<R: Read>(&mut self, stream: &mut R) -> Result<Option<Request>, HttpError> {
        let head = loop {
            if let Some(end) = find_terminator(&self.buf) {
                if end + 4 > MAX_REQUEST_BYTES {
                    return Err(HttpError::TooLarge);
                }
                let head: Vec<u8> = self.buf.drain(..end + 4).collect();
                break head;
            }
            if self.buf.len() > MAX_REQUEST_BYTES {
                return Err(HttpError::TooLarge);
            }
            let mut chunk = [0u8; 4096];
            let n = stream
                .read(&mut chunk)
                .map_err(|e| HttpError::Io(e.to_string()))?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Disconnected);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        parse_head(&head).map(Some)
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a complete request head (terminator included).
fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text =
        std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::UnsupportedVersion),
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target {target:?} is not an absolute path"
        )));
    }

    let mut keep_alive = http11;
    let mut count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the blank line before the terminator
        }
        count += 1;
        if count > MAX_HEADERS {
            return Err(HttpError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header line {line:?} has no colon")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("bad header name {name:?}")));
        }
        if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if method != "GET" {
        return Err(HttpError::MethodNotAllowed);
    }
    Ok(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        keep_alive,
    })
}

/// Writes a complete response and returns the total bytes written
/// (head + body). No `Date` header: responses are byte-deterministic,
/// which is what lets the smoke counters sit behind the bench gate.
///
/// # Errors
///
/// Propagates transport errors from the underlying writer.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<u64> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(head.len() as u64 + body.len() as u64)
}

/// Percent-encodes every byte outside the RFC 3986 unreserved set, so
/// any tag name or video key — tabs, commas, backslashes included —
/// round-trips through a path segment.
pub fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for b in raw.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char);
            }
            _ => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("%{b:02X}"));
            }
        }
    }
    out
}

/// Decodes `%XX` escapes; `None` on truncated/invalid escapes or when
/// the decoded bytes are not UTF-8.
pub fn percent_decode(raw: &str) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = hex_val(*bytes.get(i + 1)?)?;
            let lo = hex_val(*bytes.get(i + 2)?)?;
            out.push(hi * 16 + lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut reader = RequestReader::new();
        let mut cursor = io::Cursor::new(raw.to_vec());
        reader.read_request(&mut cursor)
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/stats");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_overrides_the_11_default() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert_eq!(parse(b""), Ok(None));
    }

    #[test]
    fn eof_mid_request_is_disconnected() {
        assert_eq!(parse(b"GET /stats HT"), Err(HttpError::Disconnected));
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn non_get_methods_are_rejected_politely() {
        assert_eq!(
            parse(b"POST /stats HTTP/1.1\r\n\r\n"),
            Err(HttpError::MethodNotAllowed)
        );
        assert_eq!(
            parse(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        );
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut raw = b"GET /stats HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(
            format!("X-Pad: {}\r\n\r\n", "a".repeat(MAX_REQUEST_BYTES)).as_bytes(),
        );
        assert_eq!(parse(&raw), Err(HttpError::TooLarge));

        let mut raw = b"GET /stats HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("X-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw), Err(HttpError::TooLarge));
    }

    #[test]
    fn bytes_past_the_terminator_stay_buffered() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new();
        let mut cursor = io::Cursor::new(two.to_vec());
        let first = reader.read_request(&mut cursor).unwrap().unwrap();
        let second = reader.read_request(&mut cursor).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(second.target, "/b");
        assert_eq!(reader.read_request(&mut cursor), Ok(None));
    }

    #[test]
    fn percent_round_trips_hostile_names() {
        for raw in ["plain", "genre,\\42\tlive", "ü%20ber/deep", "a b~c"] {
            let enc = percent_encode(raw);
            assert!(
                enc.bytes()
                    .all(|b| b.is_ascii_alphanumeric()
                        || matches!(b, b'-' | b'.' | b'_' | b'~' | b'%')),
                "{enc}"
            );
            assert_eq!(percent_decode(&enc).as_deref(), Some(raw));
        }
        assert_eq!(percent_decode("%"), None);
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%ff"), None, "lone 0xff is not UTF-8");
    }

    #[test]
    fn responses_carry_length_and_connection() {
        let mut out = Vec::new();
        let n = write_response(&mut out, 200, "OK", "text/plain", b"body\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbody\n"));
        assert!(!text.contains("Date:"), "dated responses break determinism");
    }
}
