//! Route renderers — the single source of every answer body.
//!
//! The CLI's offline `stats`/`tag`/`country`/`ingest --cold` commands
//! and the HTTP server's `/stats`, `/tag/*`, `/country/*`, `/report`
//! routes all call *these* functions, so the bytes a socket carries
//! are definitionally the bytes the offline report prints. The CI
//! serve-oracle lane `cmp`s the two anyway — contracts are nicer when
//! enforced.
//!
//! Renderers take snapshot *parts* (`CleanDataset`, `Reconstruction`,
//! `TagViewTable`), not an [`EpochSnapshot`], so the offline path can
//! cold-build the parts and the server can borrow them from a pinned
//! epoch — the equality of those two states is PR 9's rebuild oracle.
//!
//! [`EpochSnapshot`]: tagdist::reconstruct::EpochSnapshot

use std::fmt;
use std::fmt::Write as _;

use tagdist::dataset::{
    binfmt, decode_any, filter, filter_columnar, sniff, CleanDataset, DatasetFormat, DatasetStats,
    Mmap,
};
use tagdist::geo::{world, GeoDist, TrafficModel};
use tagdist::reconstruct::{Reconstruction, TagViewTable};
use tagdist::tags::{GeoTagIndex, Predictor, TagProfile};
use tagdist::{render_distribution, render_views};

/// Canonical `GeoTagIndex` shape: top-8 per ranking, 10k-view floor,
/// 3-carrier minimum — the `tagdist country` parameters, frozen here
/// so every caller builds the identical index.
pub const INDEX_TOP_K: usize = 8;
/// See [`INDEX_TOP_K`].
pub const INDEX_MIN_VIEWS: f64 = 10_000.0;
/// See [`INDEX_TOP_K`].
pub const INDEX_MIN_VIDEOS: usize = 3;

/// A query that reached valid machinery but no data. The `Display`
/// text is the user-facing message — the CLI prints it verbatim, the
/// server sends it as a 404 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The tag was never interned.
    UnknownTag(String),
    /// The tag exists but every carrier was filtered out.
    TagNotRetained(String),
    /// No such ISO code in the reference world.
    UnknownCountry(String),
    /// No retained video has this key.
    UnknownVideo(String),
    /// A predict query with an empty tag list.
    NoTags,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTag(name) => {
                write!(f, "tag {name:?} does not occur in the dataset")
            }
            QueryError::TagNotRetained(name) => {
                write!(f, "tag {name:?} has no retained videos")
            }
            QueryError::UnknownCountry(code) => write!(f, "unknown country code {code:?}"),
            QueryError::UnknownVideo(key) => {
                write!(f, "video key {key:?} is not in the filtered dataset")
            }
            QueryError::NoTags => write!(f, "predict needs at least one tag"),
        }
    }
}

/// Loads and filters a dataset along the cheapest path its format
/// allows: a binary file is memory-mapped and filtered straight off
/// the borrowed sections (no record materialization, payload bytes
/// never copied to the heap); a TSV file parses into records first.
/// Both paths produce the identical [`CleanDataset`].
///
/// # Errors
///
/// Returns a user-facing message when the file cannot be opened or
/// parsed.
pub fn load_clean(path: &str) -> Result<CleanDataset, String> {
    let map = Mmap::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if sniff(&map) == Some(DatasetFormat::Binary) {
        let view =
            binfmt::decode_borrowed(&map).map_err(|e| format!("cannot parse {path}: {e}"))?;
        return Ok(filter_columnar(&view));
    }
    let dataset = decode_any(&map).map_err(|e| format!("cannot parse {path}: {e}"))?;
    Ok(filter(&dataset))
}

/// Builds the canonical signature-tag index (see [`INDEX_TOP_K`]).
pub fn build_geo_index(table: &TagViewTable, traffic: &GeoDist) -> GeoTagIndex {
    GeoTagIndex::build(
        table,
        traffic,
        INDEX_TOP_K,
        INDEX_MIN_VIEWS,
        INDEX_MIN_VIDEOS,
    )
}

/// The `tagdist stats` body: §2 filtering report + corpus statistics.
pub fn stats_body(clean: &CleanDataset) -> String {
    let mut text = String::new();
    let _ = writeln!(text, "{}", clean.report());
    let _ = writeln!(text, "{}", DatasetStats::compute(clean));
    text
}

/// The `tagdist tag NAME` body: one tag's geographic profile
/// (Figs. 2–3) over the given snapshot parts.
///
/// # Errors
///
/// [`QueryError::UnknownTag`] / [`QueryError::TagNotRetained`].
pub fn tag_body(
    clean: &CleanDataset,
    table: &TagViewTable,
    traffic: &GeoDist,
    name: &str,
) -> Result<String, QueryError> {
    let tag_id = clean
        .tags()
        .id(name)
        .ok_or_else(|| QueryError::UnknownTag(name.to_owned()))?;
    let profile = TagProfile::build(tag_id, clean, table, traffic)
        .ok_or_else(|| QueryError::TagNotRetained(name.to_owned()))?;
    let mut text = String::new();
    let _ = writeln!(text, "{profile}");
    let _ = write!(text, "{}", render_distribution(&profile.dist, 10));
    Ok(text)
}

/// The `tagdist country CODE` body: one country's most-viewed and
/// signature (highest-lift) tags.
///
/// # Errors
///
/// [`QueryError::UnknownCountry`].
pub fn country_body(
    clean: &CleanDataset,
    index: &GeoTagIndex,
    traffic: &TrafficModel,
    code: &str,
) -> Result<String, QueryError> {
    let country = world()
        .by_code(code)
        .ok_or_else(|| QueryError::UnknownCountry(code.to_owned()))?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} ({}) — traffic share {:.1}%",
        country.name,
        country.code,
        100.0 * traffic.share(country.id)
    );
    let _ = writeln!(text, "most viewed tags:");
    for s in index.top_by_views(country.id) {
        let _ = writeln!(
            text,
            "  {:<24} {:>14.0} views",
            clean.tags().name(s.tag),
            s.views
        );
    }
    let _ = writeln!(text, "signature tags (highest lift):");
    for s in index.top_by_lift(country.id) {
        let _ = writeln!(
            text,
            "  {:<24} lift {:>6.1}x ({:.0} views here)",
            clean.tags().name(s.tag),
            s.lift,
            s.views
        );
    }
    Ok(text)
}

/// Clean-dataset position of the video with external key `key`.
/// Linear scan — the offline one-shot path; the server keeps a
/// per-epoch key index instead.
pub fn find_video(clean: &CleanDataset, key: &str) -> Option<usize> {
    (0..clean.len()).find(|&pos| clean.key_of(pos) == key)
}

/// The per-video reconstruction body (`tagdist video KEY`,
/// `/video/KEY`): the §3 inversion of one video's popularity map.
///
/// # Errors
///
/// [`QueryError::UnknownVideo`] when `pos` has no reconstruction row
/// (out of range).
pub fn video_body(
    clean: &CleanDataset,
    recon: &Reconstruction,
    pos: usize,
) -> Result<String, QueryError> {
    let (video, views) = match (clean.get(pos), recon.views(pos)) {
        (Some(video), Some(views)) => (video, views),
        _ => return Err(QueryError::UnknownVideo(format!("#{pos}"))),
    };
    let names: Vec<&str> = video.tags.iter().map(|&t| clean.tags().name(t)).collect();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "{} — {} views, {} tags: {names:?}",
        video.key,
        video.total_views,
        names.len()
    );
    let _ = writeln!(text, "reconstructed views by country:");
    let _ = write!(text, "{}", render_views(views, 10));
    Ok(text)
}

/// The E6-style cache-prediction body (`tagdist predict`,
/// `/predict/TAG[/TAG…]`): the audience distribution predicted from a
/// tag set alone — what a proactive cache would use for a *new* video
/// that has tags but no view history yet.
///
/// # Errors
///
/// [`QueryError::NoTags`] on an empty tag list,
/// [`QueryError::UnknownTag`] on the first tag the corpus has never
/// seen.
pub fn predict_body(
    clean: &CleanDataset,
    table: &TagViewTable,
    traffic: &GeoDist,
    names: &[&str],
) -> Result<String, QueryError> {
    if names.is_empty() {
        return Err(QueryError::NoTags);
    }
    let mut ids = Vec::with_capacity(names.len());
    for name in names {
        ids.push(
            clean
                .tags()
                .id(name)
                .ok_or_else(|| QueryError::UnknownTag((*name).to_owned()))?,
        );
    }
    let predictor = Predictor::new(table, traffic);
    let dist = predictor.predict(&ids, None);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "predicted audience for {} tags: {names:?}",
        names.len()
    );
    let _ = write!(text, "{}", render_distribution(&dist, 10));
    Ok(text)
}

/// Renders a pipeline state — streamed epoch snapshot or cold rebuild
/// alike — as a deterministic text report: `{:?}` on f64 round-trips
/// every bit, so byte-equal reports mean bit-equal state. This is the
/// artifact the CI incremental-oracle lane `cmp`s, and the `/report`
/// route's body.
pub fn ingest_report_body(clean: &CleanDataset, table: &TagViewTable) -> String {
    let mut text = String::new();
    let _ = writeln!(text, "{}", clean.report());
    let _ = writeln!(text, "unique tags: {}", clean.tags().len());
    let _ = writeln!(text, "total views: {}", clean.total_views());
    let _ = writeln!(text, "countries: {}", clean.country_count());
    let _ = writeln!(text, "populated tags: {}", table.populated_tags());
    for (tag, row) in table.iter() {
        let _ = writeln!(text, "{}\t{row:?}", tag.index());
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist::dataset::{DatasetBuilder, RawPopularity};

    /// A corpus over the *reference* world (so `country_body` and
    /// `TrafficModel::reference` line up), with predictable content.
    fn parts() -> (CleanDataset, Reconstruction, TagViewTable, TrafficModel) {
        let traffic = TrafficModel::reference(world());
        let cc = world().len();
        let mut b = DatasetBuilder::new(cc);
        for i in 0..200usize {
            let raw: Vec<u8> = (0..cc).map(|c| ((i * 13 + c * 7) % 62) as u8).collect();
            let tags: Vec<String> = (0..1 + i % 3)
                .map(|t| format!("t{}", (i + t) % 11))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video(
                &format!("v{i}"),
                1_000 + (i * i) as u64,
                &tag_refs,
                RawPopularity::decode(raw, cc),
            );
        }
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, traffic.distribution()).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, recon, table, traffic)
    }

    #[test]
    fn stats_body_matches_the_report_displays() {
        let (clean, _, _, _) = parts();
        let body = stats_body(&clean);
        assert!(body.starts_with(&clean.report().to_string()));
        assert!(body.ends_with('\n'));
    }

    #[test]
    fn tag_body_round_trips_known_tags_and_rejects_unknown() {
        let (clean, _, table, traffic) = parts();
        let body = tag_body(&clean, &table, traffic.distribution(), "t0").unwrap();
        assert!(body.starts_with("t0: "));
        assert!(body.contains('%'));
        assert_eq!(
            tag_body(&clean, &table, traffic.distribution(), "nope"),
            Err(QueryError::UnknownTag("nope".into()))
        );
        assert_eq!(
            tag_body(&clean, &table, traffic.distribution(), "nope")
                .unwrap_err()
                .to_string(),
            "tag \"nope\" does not occur in the dataset"
        );
    }

    #[test]
    fn country_body_lists_both_rankings() {
        let (clean, _, table, traffic) = parts();
        let index = build_geo_index(&table, traffic.distribution());
        let body = country_body(&clean, &index, &traffic, "BR").unwrap();
        assert!(body.contains("(BR) — traffic share"));
        assert!(body.contains("most viewed tags:"));
        assert!(body.contains("signature tags (highest lift):"));
        assert_eq!(
            country_body(&clean, &index, &traffic, "XX"),
            Err(QueryError::UnknownCountry("XX".into()))
        );
    }

    #[test]
    fn video_body_renders_the_reconstruction_row() {
        let (clean, recon, _, _) = parts();
        let pos = find_video(&clean, clean.key_of(0)).unwrap();
        assert_eq!(pos, 0);
        let body = video_body(&clean, &recon, pos).unwrap();
        assert!(body.contains("reconstructed views by country:"));
        assert!(body.starts_with(clean.key_of(0)));
        assert!(video_body(&clean, &recon, clean.len()).is_err());
        assert_eq!(find_video(&clean, "missing"), None);
    }

    #[test]
    fn predict_body_blends_known_tags() {
        let (clean, _, table, traffic) = parts();
        let body = predict_body(&clean, &table, traffic.distribution(), &["t0", "t1"]).unwrap();
        assert!(body.starts_with("predicted audience for 2 tags:"));
        assert_eq!(
            predict_body(&clean, &table, traffic.distribution(), &[]),
            Err(QueryError::NoTags)
        );
        assert_eq!(
            predict_body(&clean, &table, traffic.distribution(), &["t0", "nope"]),
            Err(QueryError::UnknownTag("nope".into()))
        );
    }

    #[test]
    fn ingest_report_body_is_the_oracle_artifact() {
        let (clean, _, table, _) = parts();
        let body = ingest_report_body(&clean, &table);
        assert!(body.contains("unique tags: "));
        assert!(body.contains("populated tags: "));
        // One matrix row per populated tag, each `{:?}`-rendered.
        let rows = body.lines().filter(|l| l.contains("\t[")).count();
        assert_eq!(rows, table.populated_tags());
    }
}
