//! The accept loop: non-blocking accepts drained in batches onto the
//! `tagdist-par` worker pool, every connection served from a pinned
//! epoch.
//!
//! # Read path
//!
//! The server never holds a lock while answering. Each loop iteration
//! polls the [`SnapshotCell`] (one mutex-guarded `Arc` clone — the
//! same cost a reader of the ingest engine pays); when the published
//! epoch changes, it derives a fresh [`ServeState`] (signature-tag
//! index + key index) and swaps its local `Arc`. Connections clone
//! that `Arc` — *pinning* the epoch — and keep it for their whole
//! lifetime, so an `--ingest` crawl or a `--watch` reload can publish
//! new epochs under live traffic while in-flight requests keep reading
//! a consistent, immutable state.
//!
//! # Determinism at the socket
//!
//! Response bodies come from [`crate::query`] — the offline CLI's own
//! renderers over snapshot parts — and response heads carry no `Date`
//! or other varying header. A fixed query set therefore produces a
//! byte-fixed response stream and byte-fixed `serve.*` counters at any
//! `TAGDIST_THREADS`, which is what the CI serve-oracle lane `cmp`s
//! and the bench gate locks in.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tagdist::geo::{GeoDist, TrafficModel};
use tagdist::obs::{Recorder, SpanGuard};
use tagdist::par::Pool;
use tagdist::reconstruct::{EpochSnapshot, SnapshotCell};
use tagdist::tags::GeoTagIndex;

use crate::http::{percent_decode, write_response, RequestReader};
use crate::query;

/// How many ready connections one loop iteration drains, per pool
/// thread. Connections beyond the batch wait in the OS backlog.
const ACCEPTS_PER_THREAD: usize = 4;

/// Idle nap between empty accept polls.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// The default per-connection read timeout.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 5_000;

/// Accept-loop iterations between `--watch` stat polls (iterations are
/// ~1 ms when idle, so ~4 polls per second).
const WATCH_POLL_ITERATIONS: u64 = 256;

/// Derived per-epoch read state: the pinned snapshot plus the two
/// indices queries need (built once per epoch flip, never mutated).
pub struct ServeState {
    /// The pinned epoch.
    pub snapshot: Arc<EpochSnapshot>,
    index: GeoTagIndex,
    keys: HashMap<String, usize>,
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("epoch", &self.snapshot.epoch)
            .field("videos", &self.snapshot.clean.len())
            .finish_non_exhaustive()
    }
}

impl ServeState {
    /// Builds the read state for one epoch: the canonical signature
    /// index ([`query::build_geo_index`]) and the key → position map.
    pub fn build(snapshot: Arc<EpochSnapshot>, traffic: &GeoDist) -> ServeState {
        let index = query::build_geo_index(&snapshot.table, traffic);
        let keys = (0..snapshot.clean.len())
            .map(|pos| (snapshot.clean.key_of(pos).to_owned(), pos))
            .collect();
        ServeState {
            snapshot,
            index,
            keys,
        }
    }

    /// Routes one request target to `(status, reason, body)`. Pure:
    /// the same target against the same state yields the same bytes,
    /// and every 200 body is the corresponding offline command's
    /// output. (`/metrics` is served by the connection handler — it
    /// reads live counters, not epoch state.)
    pub fn respond(&self, traffic: &TrafficModel, target: &str) -> (u16, &'static str, String) {
        // Queries (`?…`) are accepted and ignored: routes are
        // path-shaped.
        let path = target.split('?').next().unwrap_or(target);
        let mut segments = path.split('/').skip(1);
        let head = segments.next().unwrap_or("");
        let clean = &self.snapshot.clean;
        let table = &self.snapshot.table;
        let answer = match (head, segments.next()) {
            ("healthz", None) => return (200, "OK", format!("ok epoch {}\n", self.snapshot.epoch)),
            ("stats", None) => Ok(query::stats_body(clean)),
            ("report", None) => Ok(query::ingest_report_body(clean, table)),
            ("tag", Some(enc)) => match percent_decode(enc) {
                Some(name) => query::tag_body(clean, table, traffic.distribution(), &name),
                None => return bad_encoding(enc),
            },
            ("country", Some(code)) => match percent_decode(code) {
                Some(code) => query::country_body(clean, &self.index, traffic, &code),
                None => return bad_encoding(code),
            },
            ("video", Some(enc)) => match percent_decode(enc) {
                Some(key) => match self.keys.get(&key) {
                    Some(&pos) => query::video_body(clean, &self.snapshot.recon, pos),
                    None => Err(query::QueryError::UnknownVideo(key)),
                },
                None => return bad_encoding(enc),
            },
            ("predict", Some(first)) => {
                let mut names = Vec::new();
                for enc in std::iter::once(first).chain(segments) {
                    match percent_decode(enc) {
                        Some(name) => names.push(name),
                        None => return bad_encoding(enc),
                    }
                }
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                query::predict_body(clean, table, traffic.distribution(), &refs)
            }
            _ => return (404, "Not Found", format!("no route for {path:?}\n")),
        };
        match answer {
            Ok(body) => (200, "OK", body),
            Err(e) => (404, "Not Found", format!("{e}\n")),
        }
    }
}

fn bad_encoding(segment: &str) -> (u16, &'static str, String) {
    (
        400,
        "Bad Request",
        format!("bad percent-encoding in {segment:?}\n"),
    )
}

/// Deterministic `serve.*` counters. Totals over the server's
/// lifetime; none depends on `TAGDIST_THREADS` for a fixed query set.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed and routed.
    pub requests: AtomicU64,
    /// Epoch pins taken (one per connection).
    pub epoch_pins: AtomicU64,
    /// Epoch flips observed by the accept loop.
    pub epoch_flips: AtomicU64,
    /// Total response bytes written (heads + bodies).
    pub bytes_written: AtomicU64,
    /// Connections that ended in a protocol error / disconnect.
    pub http_errors: AtomicU64,
    /// Successful `--watch` reloads published.
    pub reloads: AtomicU64,
    /// Failed `--watch` reload attempts (old epoch kept serving).
    pub reload_errors: AtomicU64,
}

impl ServeStats {
    /// Records the counters under a `serve` child span of `parent` —
    /// the shape the bench smoke report gates (`serve.requests`,
    /// `.epoch_pins`, `.bytes_written`, …).
    pub fn record_obs(&self, parent: &SpanGuard) {
        let span = parent.child("serve");
        let obs = span.recorder();
        obs.add(
            "serve.connections",
            self.connections.load(Ordering::Relaxed),
        );
        obs.add("serve.requests", self.requests.load(Ordering::Relaxed));
        obs.add("serve.epoch_pins", self.epoch_pins.load(Ordering::Relaxed));
        obs.add(
            "serve.epoch_flips",
            self.epoch_flips.load(Ordering::Relaxed),
        );
        obs.add(
            "serve.bytes_written",
            self.bytes_written.load(Ordering::Relaxed),
        );
        obs.add(
            "serve.http_errors",
            self.http_errors.load(Ordering::Relaxed),
        );
        obs.add("serve.reloads", self.reloads.load(Ordering::Relaxed));
        obs.add(
            "serve.reload_errors",
            self.reload_errors.load(Ordering::Relaxed),
        );
    }

    /// The live counters as the obs JSON tree — the `/metrics` body.
    pub fn metrics_json(&self) -> String {
        let recorder = Recorder::new();
        {
            let span = recorder.span("metrics");
            self.record_obs(&span);
        }
        recorder.finish().to_json()
    }
}

/// Server tunables.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Per-connection read timeout in milliseconds (0 → default).
    pub read_timeout_ms: u64,
    /// Re-sniff this file on mtime change and publish the reload as a
    /// new epoch (the cross-process composition with `tagdist crawl
    /// --ingest` / repeated `convert` runs).
    pub watch: Option<String>,
}

/// A bound listener plus everything the accept loop reads from.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    cell: Arc<SnapshotCell>,
    traffic: TrafficModel,
    config: ServerConfig,
    stats: Arc<ServeStats>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// server answers from whatever epochs `cell` publishes.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message when binding fails.
    pub fn bind(
        addr: &str,
        cell: Arc<SnapshotCell>,
        traffic: TrafficModel,
        config: ServerConfig,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server {
            listener,
            cell,
            traffic,
            config,
            stats: Arc::new(ServeStats::default()),
        })
    }

    /// The bound address (the actual port when `:0` was requested).
    ///
    /// # Errors
    ///
    /// Propagates the OS error as a message.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// The live counters (shared; clone the `Arc` to read them from
    /// another thread while the server runs).
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Runs the accept loop until `shutdown` goes true: drain ready
    /// connections, dispatch the batch onto `pool`, repeat. Returns
    /// cleanly on shutdown — the CI lane asserts exit code 0 after
    /// `kill -TERM`.
    ///
    /// # Errors
    ///
    /// Returns a message when the listener cannot enter non-blocking
    /// mode. Per-connection failures never abort the loop.
    pub fn run(&self, pool: &Pool, shutdown: &AtomicBool) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set non-blocking accept: {e}"))?;
        let read_timeout = match self.config.read_timeout_ms {
            0 => DEFAULT_READ_TIMEOUT_MS,
            ms => ms,
        };
        let batch_limit = pool.threads().max(1) * ACCEPTS_PER_THREAD;
        let mut state: Option<Arc<ServeState>> = None;
        let mut watch_mtime = self.config.watch.as_deref().and_then(mtime_of);
        let mut iteration: u64 = 0;

        while !shutdown.load(Ordering::SeqCst) {
            iteration = iteration.wrapping_add(1);

            // Epoch flip check: one Arc clone under the cell's mutex.
            if let Some(snapshot) = self.cell.load() {
                let stale = state
                    .as_ref()
                    .is_none_or(|s| s.snapshot.epoch != snapshot.epoch);
                if stale {
                    if state.is_some() {
                        self.stats.epoch_flips.fetch_add(1, Ordering::Relaxed);
                    }
                    state = Some(Arc::new(ServeState::build(
                        snapshot,
                        self.traffic.distribution(),
                    )));
                }
            }

            // --watch: poll the file's mtime every few hundred
            // iterations; on change, re-sniff and publish a new epoch.
            // A failed reload keeps the old epoch serving.
            if iteration % WATCH_POLL_ITERATIONS == 0 {
                if let Some(path) = self.config.watch.as_deref() {
                    let modified = mtime_of(path);
                    if modified.is_some() && modified != watch_mtime {
                        watch_mtime = modified;
                        let epoch = state.as_ref().map_or(0, |s| s.snapshot.epoch);
                        match reload(path, epoch + 1, &self.traffic) {
                            Ok(snapshot) => {
                                self.cell.store(snapshot);
                                self.stats.reloads.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                self.stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }

            let Some(current) = state.as_ref() else {
                // Nothing published yet: nothing to answer from.
                std::thread::sleep(IDLE_SLEEP);
                continue;
            };

            // Drain ready connections into one batch.
            let mut batch = Vec::new();
            while batch.len() < batch_limit {
                match self.listener.accept() {
                    Ok((stream, _peer)) => batch.push(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            if batch.is_empty() {
                std::thread::sleep(IDLE_SLEEP);
                continue;
            }
            self.stats
                .connections
                .fetch_add(batch.len() as u64, Ordering::Relaxed);

            let traffic = &self.traffic;
            let stats = &self.stats;
            pool.par_map_heavy(&batch, |_, stream| {
                // Each connection pins the epoch for its lifetime.
                let pinned = Arc::clone(current);
                stats.epoch_pins.fetch_add(1, Ordering::Relaxed);
                handle_connection(stream, &pinned, traffic, stats, read_timeout);
            });
        }
        Ok(())
    }
}

/// Stats a file into an opaque change fingerprint (length + the debug
/// form of its modification stamp). The stamp is only ever compared
/// for *change*, never read as a time, so no wall-clock type appears
/// here.
fn mtime_of(path: &str) -> Option<(u64, String)> {
    let meta = std::fs::metadata(path).ok()?;
    let stamp = meta.modified().ok().map(|t| format!("{t:?}"))?;
    Some((meta.len(), stamp))
}

/// Re-sniffs `path` and cold-builds the next epoch from it.
fn reload(path: &str, epoch: u64, traffic: &TrafficModel) -> Result<Arc<EpochSnapshot>, String> {
    let clean = query::load_clean(path)?;
    EpochSnapshot::rebuild(epoch, clean, traffic.distribution())
        .map(Arc::new)
        .map_err(|e| format!("reconstruction failed: {e}"))
}

/// Serves one connection to completion: requests in, responses out,
/// until close/EOF/error. Never panics — a poisoned pool worker would
/// take the whole server down, so every failure degrades to a 4xx or
/// a close on *this* connection only.
fn handle_connection(
    stream: &TcpStream,
    state: &ServeState,
    traffic: &TrafficModel,
    stats: &ServeStats,
    read_timeout_ms: u64,
) {
    // Accepted sockets are blocking (O_NONBLOCK does not carry over
    // from the listener on any tier-1 platform), but make it explicit
    // and bound the read wait. Responses are written in one buffered
    // burst, so Nagle buys nothing and costs a delayed-ACK stall
    // (~40ms per keep-alive round trip) — disable it.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(read_timeout_ms.max(1))));
    let mut reader = RequestReader::new();
    let mut read_half = stream;
    let mut write_half = stream;
    loop {
        match reader.read_request(&mut read_half) {
            Ok(None) => break,
            Ok(Some(request)) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let (status, reason, body, content_type) = if request.target == "/metrics" {
                    (200, "OK", stats.metrics_json(), "application/json")
                } else {
                    let (status, reason, body) = state.respond(traffic, &request.target);
                    (status, reason, body, "text/plain; charset=utf-8")
                };
                match write_response(
                    &mut write_half,
                    status,
                    reason,
                    content_type,
                    body.as_bytes(),
                    request.keep_alive,
                ) {
                    Ok(n) => {
                        stats.bytes_written.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(_) => {
                        stats.http_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
                if !request.keep_alive {
                    break;
                }
            }
            Err(e) => {
                stats.http_errors.fetch_add(1, Ordering::Relaxed);
                if let Some((status, reason)) = e.status() {
                    let body = format!("{e}\n");
                    if let Ok(n) = write_response(
                        &mut write_half,
                        status,
                        reason,
                        "text/plain; charset=utf-8",
                        body.as_bytes(),
                        false,
                    ) {
                        stats.bytes_written.fetch_add(n, Ordering::Relaxed);
                    }
                }
                break;
            }
        }
    }
    let _ = write_half.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use tagdist::dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist::geo::world;

    fn snapshot(videos: usize, epoch: u64) -> Arc<EpochSnapshot> {
        let traffic = TrafficModel::reference(world());
        let cc = world().len();
        let mut b = DatasetBuilder::new(cc);
        for i in 0..videos {
            let raw: Vec<u8> = (0..cc).map(|c| ((i * 17 + c * 5) % 62) as u8).collect();
            let tags: Vec<String> = (0..1 + i % 2)
                .map(|t| format!("s{}", (i + t) % 7))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video(
                &format!("k{i}"),
                500 + i as u64,
                &tag_refs,
                RawPopularity::decode(raw, cc),
            );
        }
        let clean = filter(&b.build());
        Arc::new(EpochSnapshot::rebuild(epoch, clean, traffic.distribution()).unwrap())
    }

    fn state() -> (ServeState, TrafficModel) {
        let traffic = TrafficModel::reference(world());
        (
            ServeState::build(snapshot(120, 1), traffic.distribution()),
            traffic,
        )
    }

    #[test]
    fn routes_answer_with_the_offline_bodies() {
        let (state, traffic) = state();
        let clean = &state.snapshot.clean;
        let table = &state.snapshot.table;

        let (status, _, body) = state.respond(&traffic, "/stats");
        assert_eq!(status, 200);
        assert_eq!(body, query::stats_body(clean));

        let (status, _, body) = state.respond(&traffic, "/tag/s0");
        assert_eq!(status, 200);
        assert_eq!(
            body,
            query::tag_body(clean, table, traffic.distribution(), "s0").unwrap()
        );

        let (status, _, body) = state.respond(&traffic, "/country/BR");
        assert_eq!(status, 200);
        let index = query::build_geo_index(table, traffic.distribution());
        assert_eq!(
            body,
            query::country_body(clean, &index, &traffic, "BR").unwrap()
        );

        let (status, _, body) = state.respond(&traffic, "/report");
        assert_eq!(status, 200);
        assert_eq!(body, query::ingest_report_body(clean, table));

        let key = clean.key_of(0);
        let target = format!("/video/{}", crate::http::percent_encode(key));
        let (status, _, body) = state.respond(&traffic, &target);
        assert_eq!(status, 200);
        assert_eq!(
            body,
            query::video_body(clean, &state.snapshot.recon, 0).unwrap()
        );

        let (status, _, body) = state.respond(&traffic, "/predict/s0/s1");
        assert_eq!(status, 200);
        assert_eq!(
            body,
            query::predict_body(clean, table, traffic.distribution(), &["s0", "s1"]).unwrap()
        );

        let (status, _, body) = state.respond(&traffic, "/healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok epoch 1\n");
    }

    #[test]
    fn unknown_routes_and_names_are_404s() {
        let (state, traffic) = state();
        assert_eq!(state.respond(&traffic, "/nope").0, 404);
        assert_eq!(state.respond(&traffic, "/tag/absent").0, 404);
        assert_eq!(state.respond(&traffic, "/country/XX").0, 404);
        assert_eq!(state.respond(&traffic, "/video/absent").0, 404);
        assert_eq!(state.respond(&traffic, "/tag/%zz").0, 400);
        assert_eq!(state.respond(&traffic, "/").0, 404);
    }

    /// Everything a socket-level test needs from a booted server:
    /// address, shutdown flag, stats handle, and the accept-loop join
    /// handle.
    type Booted = (
        SocketAddr,
        Arc<AtomicBool>,
        Arc<ServeStats>,
        std::thread::JoinHandle<Result<(), String>>,
    );

    /// Boots a real server on an ephemeral port against `cell`.
    fn boot(cell: Arc<SnapshotCell>) -> Booted {
        let traffic = TrafficModel::reference(world());
        let server = Server::bind(
            "127.0.0.1:0",
            cell,
            traffic,
            ServerConfig {
                read_timeout_ms: 200,
                watch: None,
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stats = server.stats();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let pool = Pool::new(2);
            server.run(&pool, &flag)
        });
        (addr, shutdown, stats, handle)
    }

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn end_to_end_over_a_socket_with_an_epoch_flip() {
        let cell = Arc::new(SnapshotCell::new());
        cell.store(snapshot(60, 1));
        let (addr, shutdown, stats, handle) = boot(Arc::clone(&cell));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "ok epoch 1\n");

        // Publish a new epoch under the running server; it must flip.
        cell.store(snapshot(90, 2));
        let deadline = 200;
        let mut flipped = false;
        for _ in 0..deadline {
            if get(addr, "/healthz").1 == "ok epoch 2\n" {
                flipped = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(flipped, "server never observed epoch 2");

        let (head, body) = get(addr, "/metrics");
        assert!(head.contains("application/json"));
        assert!(body.contains("serve.requests"));

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap().unwrap();
        assert!(stats.requests.load(Ordering::Relaxed) >= 3);
        assert_eq!(stats.http_errors.load(Ordering::Relaxed), 0);
        assert!(stats.epoch_flips.load(Ordering::Relaxed) >= 1);
    }
}
