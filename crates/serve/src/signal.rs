//! SIGTERM/SIGINT → a graceful-shutdown flag the accept loop polls.
//!
//! The CI serve-oracle lane asserts that `kill -TERM` produces a clean
//! exit (code 0) — which requires actually catching the signal. `std`
//! exposes no signal API and the workspace is dependency-free, so this
//! module declares the two libc calls it needs (`signal(2)`,
//! `raise(3)`) itself. This is — deliberately — the only `unsafe`
//! outside `tagdist-dataset`'s mmap module.
//!
//! # Safety
//!
//! The FFI surface is kept trivially auditable:
//!
//! 1. `signal` and `raise` are declared with their C prototypes
//!    (handlers passed as `sighandler_t`, here `usize`); both are in
//!    libc, which `std` already links on every unix target.
//! 2. The installed handler does exactly one async-signal-safe thing:
//!    a relaxed-to-SeqCst store to a `static AtomicBool`. No
//!    allocation, no locks, no formatting — nothing that could
//!    deadlock or reenter the runtime from signal context.
//! 3. The flag is only ever *read* by ordinary threads
//!    ([`shutdown_flag`]); a missed store is impossible to observe as
//!    corruption, at worst the loop polls once more.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide shutdown flag the handler stores into.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The flag [`install`] wires SIGTERM/SIGINT to. Accept loops poll it;
/// anything (tests included) may set it directly to request shutdown.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(unix)]
mod unix {
    use super::{Ordering, SHUTDOWN};
    use std::ffi::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    /// `SIG_ERR` is `(sighandler_t)-1`.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    #[cfg(test)]
    extern "C" {
        fn raise(signum: c_int) -> c_int;
    }

    /// The handler: one atomic store, nothing else (async-signal-safe
    /// by construction — see the module's `# Safety` notes).
    extern "C" fn on_signal(_signum: c_int) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to the shutdown flag. Returns `false`
    /// if the OS rejected either registration (the caller may still
    /// serve; Ctrl-C then kills instead of draining).
    pub fn install() -> bool {
        let handler: extern "C" fn(c_int) = on_signal;
        // SAFETY: `signal` is the documented libc prototype; the
        // handler passed is a valid `extern "C"` fn for the whole
        // program lifetime and touches only an atomic (obligation 2).
        let term = unsafe { signal(SIGTERM, handler as usize) };
        // SAFETY: as above, for SIGINT.
        let int = unsafe { signal(SIGINT, handler as usize) };
        term != SIG_ERR && int != SIG_ERR
    }

    /// Sends SIGTERM to the current process — test-only plumbing to
    /// prove the handler path end to end.
    #[cfg(test)]
    pub fn raise_sigterm() {
        // SAFETY: `raise(3)` with a valid signal number is always safe
        // to call; the installed handler only stores to an atomic.
        let _ = unsafe { raise(SIGTERM) };
    }
}

/// Routes SIGTERM/SIGINT to [`shutdown_flag`]; `false` when the
/// platform has no signals (non-unix) or registration failed.
pub fn install() -> bool {
    #[cfg(unix)]
    {
        unix::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sigterm_sets_the_flag_instead_of_killing_us() {
        assert!(install());
        assert!(!shutdown_flag().load(Ordering::SeqCst));
        unix::raise_sigterm();
        assert!(shutdown_flag().load(Ordering::SeqCst));
        // Leave the flag clean for any other test in this process.
        shutdown_flag().store(false, Ordering::SeqCst);
    }
}
