//! `tagdist` binary entry point; see [`commands::USAGE`].

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match commands::dispatch(&parsed, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("try `tagdist help`");
            ExitCode::FAILURE
        }
    }
}
