//! Minimal argument parsing.
//!
//! The CLI deliberately avoids an argument-parsing dependency: its
//! grammar is one subcommand, positional arguments, and `--key value`
//! / `--flag` options, which thirty lines of code parse unambiguously.

use std::collections::HashMap;

/// Parsed command line: subcommand, positionals, options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--flag`s (mapped to `"true"`).
    options: HashMap<String, String>,
}

/// Options whose presence alone is meaningful (no value follows).
const BARE_FLAGS: &[&str] = &[
    "cold",
    "full",
    "help",
    "ingest",
    "smoke",
    "watch",
    "with-caching",
];

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when an option is dangling (`--out` with no
    /// value) or repeated.
    pub fn parse<I, S>(raw: I) -> Result<Args, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = if BARE_FLAGS.contains(&name) {
                    "true".to_owned()
                } else {
                    iter.next()
                        .ok_or_else(|| format!("option --{name} expects a value"))?
                };
                if args.options.insert(name.to_owned(), value).is_some() {
                    return Err(format!("option --{name} given twice"));
                }
            } else if args.command.is_empty() {
                args.command = token;
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// String option by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Returns `true` if a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.options.get(name).is_some_and(|v| v == "true")
    }

    /// Numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name} expects an integer, got {v:?}")),
        }
    }

    /// u64 option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name} expects an integer, got {v:?}")),
        }
    }

    /// The `n`-th positional argument.
    ///
    /// # Errors
    ///
    /// Returns a message naming `what` when it is missing.
    pub fn positional(&self, n: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).unwrap()
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = parse(&["stats", "crawl.tsv", "extra"]);
        assert_eq!(a.command, "stats");
        assert_eq!(a.positional, vec!["crawl.tsv", "extra"]);
        assert_eq!(a.positional(0, "file").unwrap(), "crawl.tsv");
        assert!(a.positional(5, "missing thing").is_err());
    }

    #[test]
    fn options_and_flags() {
        let a = parse(&["generate", "--videos", "500", "--out", "x.tsv", "--full"]);
        assert_eq!(a.get("videos"), Some("500"));
        assert_eq!(a.get_usize("videos", 1).unwrap(), 500);
        assert_eq!(a.get_usize("absent", 7).unwrap(), 7);
        assert_eq!(a.get("out"), Some("x.tsv"));
        assert!(a.flag("full"));
        assert!(!a.flag("help"));
    }

    #[test]
    fn dangling_option_is_an_error() {
        assert!(Args::parse(["cmd", "--out"]).is_err());
    }

    #[test]
    fn repeated_option_is_an_error() {
        assert!(Args::parse(["cmd", "--seed", "1", "--seed", "2"]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["cmd", "--videos", "lots"]);
        assert!(a.get_usize("videos", 1).is_err());
        assert!(a.get_u64("videos", 1).is_err());
    }

    #[test]
    fn empty_input_is_empty_command() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert!(a.command.is_empty());
    }

    #[test]
    fn flags_do_not_eat_values() {
        let a = parse(&["report", "--full", "out.md"]);
        assert!(a.flag("full"));
        assert_eq!(a.positional, vec!["out.md"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any sequence of plain words parses: first = command, rest
        /// positional.
        #[test]
        fn plain_words_always_parse(words in proptest::collection::vec("[a-z0-9.]{1,10}", 0..8)) {
            let parsed = Args::parse(words.iter().cloned()).unwrap();
            if let Some(first) = words.first() {
                prop_assert_eq!(&parsed.command, first);
                prop_assert_eq!(parsed.positional.len(), words.len() - 1);
            } else {
                prop_assert!(parsed.command.is_empty());
            }
        }
    }
}
