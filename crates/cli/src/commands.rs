//! Subcommand implementations.
//!
//! Each command is a plain function from parsed [`Args`] to
//! `Result<(), String>` writing human-readable output to the given
//! writer, so the test suite can run commands end to end against
//! in-memory buffers.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use tagdist::cache::{run_static, Placement, RequestStream};
use tagdist::crawler::{
    crawl_parallel, crawl_parallel_stepwise, crawl_parallel_with_batches, recrawl, CrawlCheckpoint,
    CrawlConfig, CrawlRun, PlatformApi,
};
use tagdist::dataset::{
    binfmt, decode_any, merge, read_any, sample_stratified, sniff, tsv, write_binary, CleanDataset,
    ColumnarRead, Dataset, DatasetFormat, Mmap,
};
use tagdist::geo::GeoDist;
use tagdist::geo::{world, TrafficModel};
use tagdist::obs::Recorder;
use tagdist::par::Pool;
use tagdist::reconstruct::{
    EpochSnapshot, IngestEngine, Reconstruction, SnapshotCell, TagViewTable,
};
use tagdist::tags::Predictor;
use tagdist::ytsim::{FaultProfile, FlakyPlatform, Platform, WorldConfig};
use tagdist::{markdown_report_obs, ReportOptions, Study, StudyConfig};
use tagdist_serve::loadgen::{self, LoadConfig};
use tagdist_serve::query;
use tagdist_serve::server::{ServeState, Server, ServerConfig};
use tagdist_serve::signal;

use crate::args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
tagdist — reproduction of “From Views to Tags Distribution in Youtube”

USAGE:
  tagdist generate [--videos N] [--seed S] [--budget B]
                   [--fault PROFILE] [--fault-seed S] --out FILE
      Generate a synthetic platform, snowball-crawl it, save the raw
      dataset as TSV. --fault off|flaky|hostile injects transient
      platform faults; faults masked by the retry budget leave the
      dataset byte-identical.
  tagdist crawl [--videos N] [--seed S] [--budget B]
                [--fault PROFILE] [--fault-seed S]
                [--checkpoint FILE [--checkpoint-every L]]
                [--stop-after-levels L] [--resume FILE]
                [--failure-report FILE]
                [--ingest [--ingest-report FILE]] --out FILE
      Fault-tolerant crawl with checkpoint/resume. --checkpoint-every
      writes the checkpoint after every L BFS levels;
      --stop-after-levels suspends the crawl into the checkpoint
      (--out may be omitted: nothing is saved on suspension);
      --resume continues from a checkpoint (world, budget and fault
      parameters are restored from it) and yields a dataset
      byte-identical to an uninterrupted crawl. --failure-report
      writes the markdown fault ledger. --ingest streams each BFS
      level through the incremental ingest engine, publishing an
      epoch snapshot per batch; --ingest-report writes the final
      epoch's deterministic report (byte-identical to
      `tagdist ingest --cold` over the saved dataset).
  tagdist stats FILE
      §2 filtering report and corpus statistics of a saved dataset.
  tagdist tag FILE NAME
      Geographic profile of one tag in a saved dataset (Figs. 2-3).
  tagdist country FILE CODE
      Signature tags of one country (most viewed + highest lift).
  tagdist video FILE KEY
      Reconstructed per-country views of one video (the §3 inversion
      applied to a single popularity map).
  tagdist predict FILE TAG...
      E6-style audience prediction for a tag set alone — what a
      proactive cache would use for a new video with no view history.
  tagdist sample FILE N --out FILE [--seed S]
      Views-stratified subsample of a saved dataset.
  tagdist cache FILE [--requests N] [--capacity-pct P]
      Proactive-caching sweep over a saved dataset (tag-predictive vs
      geo-blind vs random placements).
  tagdist report [--videos N] [--seed S] [--with-caching] --out FILE
                 [--metrics FILE] [--fault PROFILE] [--fault-seed S]
      Run the full study pipeline and write a markdown report. With
      --metrics, record per-stage spans and counters, save them as
      JSON, print the summary table, and force the caching sweep on so
      every subsystem is covered.
  tagdist recrawl FILE [--videos N] [--seed S] --out FILE
      Incrementally extend a saved crawl against a (grown) platform
      regenerated from the same seed; only new videos are fetched.
  tagdist merge FILE... --out FILE
      Merge several saved crawls, deduplicating by key and keeping the
      richest metadata per video.
  tagdist convert FILE --to FORMAT --out FILE
      Re-encode a saved dataset. --to tsv|bin selects the text or the
      binary columnar on-disk format; the input format is sniffed from
      the file's magic line, so either direction works. Converting a
      binary file to bin verifies its checksums and copies the bytes
      through without re-encoding. Every command that reads a dataset
      accepts both formats.
  tagdist ingest FILE [--batches N] [--cold] [--out FILE]
      Re-stream a saved dataset through the incremental ingest engine
      in N fixed-size batches (default 8), publishing an epoch
      snapshot per batch, and emit the final epoch's report — or, with
      --cold, rebuild the same report from scratch. The two reports
      are byte-identical for the same input: the incremental engine's
      headline guarantee, and what the CI incremental-oracle lane
      `cmp`s. Without --out the report prints to stdout.
  tagdist serve FILE [--addr HOST:PORT] [--watch]
                [--read-timeout-ms MS]
      Serve the dataset's epoch snapshot over HTTP/1.1. Routes:
      /healthz, /stats, /report, /tag/NAME, /country/CODE, /video/KEY,
      /predict/TAG[/TAG...], /metrics — every 200 body byte-identical
      to the matching offline command's output. --addr defaults to
      127.0.0.1:0 (ephemeral; the bound address is printed first).
      --watch re-sniffs FILE on modification and publishes the reload
      as a new epoch under live traffic — the single-process
      composition with `tagdist crawl`/`convert` rewriting FILE
      between runs (in-flight requests keep their pinned epoch).
      SIGTERM/SIGINT drain the accept loop and exit 0.
  tagdist bench-serve FILE --addr HOST:PORT [--requests N]
                      [--concurrency C] [--seed S] [--smoke]
                      [--dump DIR] [--summary FILE]
      Replay seeded load with Zipf-distributed tag popularity against
      a running `tagdist serve`, asserting every response body
      byte-identical to the offline answer rebuilt from FILE, and
      report p50/p99 latency + throughput. --smoke replays the fixed
      named query set once instead (optionally dumping each body to
      DIR/<name>.body for CI to cmp); --summary writes the JSON
      report. Exits nonzero on any transport or identity failure.
  tagdist help
      Show this message.
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns a user-facing message on any failure (bad arguments, I/O,
/// malformed dataset files).
pub fn dispatch<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    match args.command.as_str() {
        "generate" => generate(args, out),
        "crawl" => crawl_cmd(args, out),
        "stats" => stats(args, out),
        "tag" => tag(args, out),
        "country" => country(args, out),
        "video" => video(args, out),
        "predict" => predict(args, out),
        "serve" => serve_cmd(args, out),
        "bench-serve" => bench_serve_cmd(args, out),
        "sample" => sample(args, out),
        "cache" => cache_sweep(args, out),
        "report" => report(args, out),
        "recrawl" => recrawl_cmd(args, out),
        "merge" => merge_cmd(args, out),
        "convert" => convert_cmd(args, out),
        "ingest" => ingest_cmd(args, out),
        "help" | "" => {
            writeln!(out, "{USAGE}").map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `tagdist help`")),
    }
}

fn load(path: &str) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    // The format (TSV or binary columnar) is sniffed from the magic.
    read_any(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Loads and filters a dataset along the cheapest path its format
/// allows — delegated to [`query::load_clean`], the same loader the
/// HTTP server boots from, so the CLI and the socket read identical
/// state by construction.
fn load_clean(path: &str) -> Result<CleanDataset, String> {
    query::load_clean(path)
}

fn save(dataset: &Dataset, path: &str) -> Result<(), String> {
    let mut file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    tsv::write(dataset, &mut file).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Resolves the `--fault` / `--fault-seed` flags into a profile.
fn fault_from_args(args: &Args) -> Result<FaultProfile, String> {
    let mut profile = FaultProfile::by_name(args.get("fault").unwrap_or("off"))?;
    if let Some(seed) = args.get("fault-seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| "--fault-seed must be an integer".to_owned())?;
        profile.with_seed(seed);
    }
    Ok(profile)
}

fn generate<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let out_path = args
        .get("out")
        .ok_or("generate needs --out FILE")?
        .to_owned();
    let mut world_cfg = WorldConfig::small();
    world_cfg.with_videos(args.get_usize("videos", world_cfg.videos)?);
    world_cfg.with_seed(args.get_u64("seed", world_cfg.seed)?);
    let fault = fault_from_args(args)?;
    let platform = Platform::generate(world_cfg);
    let mut crawl_cfg = CrawlConfig::default();
    crawl_cfg.with_budget(args.get_usize("budget", usize::MAX)?);
    let outcome = if fault.is_enabled() {
        let flaky = FlakyPlatform::new(&platform, fault);
        crawl_parallel(&flaky, &crawl_cfg)
    } else {
        crawl_parallel(&platform, &crawl_cfg)
    };
    save(&outcome.dataset, &out_path)?;
    writeln!(out, "{}", outcome.stats).map_err(|e| e.to_string())?;
    writeln!(out, "saved {} records to {out_path}", outcome.dataset.len())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// The fault-tolerant crawl command: checkpointed, resumable,
/// fault-injectable.
fn crawl_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let checkpoint_path = args.get("checkpoint").map(str::to_owned);
    let checkpoint_every = args.get_usize("checkpoint-every", 0)?;
    let stop_after = args
        .get("stop-after-levels")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| "--stop-after-levels must be an integer".to_owned())
        })
        .transpose()?;
    let failure_report_path = args.get("failure-report").map(str::to_owned);
    let ingest_on = args.flag("ingest");
    let ingest_report_path = args.get("ingest-report").map(str::to_owned);
    if stop_after.is_some() && checkpoint_path.is_none() {
        return Err("--stop-after-levels needs --checkpoint FILE to suspend into".into());
    }
    if ingest_report_path.is_some() && !ingest_on {
        return Err("--ingest-report needs --ingest".into());
    }
    if ingest_on && (checkpoint_path.is_some() || stop_after.is_some() || checkpoint_every > 0) {
        return Err(
            "--ingest steps the crawl internally; it cannot combine with --checkpoint, \
             --checkpoint-every or --stop-after-levels (resuming with --resume is fine)"
                .into(),
        );
    }
    // A --stop-after-levels run suspends without writing a dataset, so
    // --out is only mandatory when the crawl can run to completion.
    let out_path = match args.get("out") {
        Some(path) => path.to_owned(),
        None if stop_after.is_some() => String::new(),
        None => return Err("crawl needs --out FILE".into()),
    };

    let resume = args
        .get("resume")
        .map(|path| {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            CrawlCheckpoint::read(file).map_err(|e| format!("cannot parse {path}: {e}"))
        })
        .transpose()?;

    // World, budget and fault parameters come from the checkpoint on
    // resume (the platform must be regenerated identically); from the
    // flags otherwise.
    let (videos, world_seed, budget, mut fault);
    if let Some(cp) = &resume {
        let meta = |key: &str| {
            cp.meta
                .get(key)
                .ok_or_else(|| format!("checkpoint is missing meta key {key:?}"))
        };
        videos = meta("world_videos")?
            .parse::<usize>()
            .map_err(|e| format!("bad world_videos in checkpoint: {e}"))?;
        world_seed = meta("world_seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad world_seed in checkpoint: {e}"))?;
        let b = meta("budget")?;
        budget = if b == "unlimited" {
            usize::MAX
        } else {
            b.parse::<usize>()
                .map_err(|e| format!("bad budget in checkpoint: {e}"))?
        };
        fault = FaultProfile::by_name(meta("fault")?)?;
        let fault_seed = meta("fault_seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad fault_seed in checkpoint: {e}"))?;
        fault.with_seed(fault_seed);
    } else {
        let defaults = WorldConfig::small();
        videos = args.get_usize("videos", defaults.videos)?;
        world_seed = args.get_u64("seed", defaults.seed)?;
        budget = args.get_usize("budget", usize::MAX)?;
        fault = fault_from_args(args)?;
    }

    let mut meta = BTreeMap::new();
    meta.insert("world_videos".to_owned(), videos.to_string());
    meta.insert("world_seed".to_owned(), world_seed.to_string());
    meta.insert(
        "budget".to_owned(),
        if budget == usize::MAX {
            "unlimited".to_owned()
        } else {
            budget.to_string()
        },
    );
    meta.insert(
        "fault".to_owned(),
        if fault.is_enabled() {
            args.get("fault").unwrap_or("flaky").to_owned()
        } else {
            "off".to_owned()
        },
    );
    meta.insert("fault_seed".to_owned(), fault.seed.to_string());
    if let Some(cp) = &resume {
        // Resume must not silently switch worlds: the stamped meta is
        // authoritative.
        meta.clone_from(&cp.meta);
    }

    let mut world_cfg = WorldConfig::small();
    world_cfg.with_videos(videos).with_seed(world_seed);
    let platform = Platform::generate(world_cfg);
    let flaky_holder;
    let api: &(dyn PlatformApi + Sync) = if fault.is_enabled() {
        flaky_holder = FlakyPlatform::new(&platform, fault);
        &flaky_holder
    } else {
        &platform
    };
    let mut crawl_cfg = CrawlConfig::default();
    crawl_cfg.with_budget(budget);

    let step = stop_after.or(if checkpoint_every > 0 {
        Some(checkpoint_every)
    } else {
        None
    });
    let mut pending = resume;

    if ingest_on {
        return crawl_ingest(
            api,
            &crawl_cfg,
            pending,
            &out_path,
            ingest_report_path.as_deref(),
            failure_report_path.as_deref(),
            out,
        );
    }

    let outcome = loop {
        match crawl_parallel_stepwise(api, &crawl_cfg, pending.take(), step) {
            CrawlRun::Complete(outcome) => break outcome,
            CrawlRun::Suspended(mut cp) => {
                cp.meta.clone_from(&meta);
                if let Some(path) = &checkpoint_path {
                    let mut file =
                        File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
                    cp.write(&mut file)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    writeln!(
                        out,
                        "checkpoint at depth {} ({} fetched) -> {path}",
                        cp.depth, cp.stats.fetched
                    )
                    .map_err(|e| e.to_string())?;
                }
                if stop_after.is_some() {
                    writeln!(out, "suspended; resume with --resume").map_err(|e| e.to_string())?;
                    return Ok(());
                }
                pending = Some(*cp);
            }
        }
    };

    save(&outcome.dataset, &out_path)?;
    writeln!(out, "{}", outcome.stats).map_err(|e| e.to_string())?;
    if let Some(path) = failure_report_path {
        std::fs::write(&path, outcome.stats.failure_report_markdown())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote failure report to {path}").map_err(|e| e.to_string())?;
    }
    writeln!(out, "saved {} records to {out_path}", outcome.dataset.len())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Renders a pipeline state as the deterministic ingest report — now
/// [`query::ingest_report_body`], shared with the server's `/report`
/// route; this is the artifact the CI incremental-oracle and
/// serve-oracle lanes `cmp`.
fn render_ingest_report(clean: &CleanDataset, table: &TagViewTable) -> String {
    query::ingest_report_body(clean, table)
}

/// The `crawl --ingest` streaming path: feeds each BFS level's new
/// videos through an [`IngestEngine`], publishing an epoch snapshot
/// per batch, then saves the raw dataset exactly as a plain crawl
/// would.
fn crawl_ingest<W: Write>(
    api: &(dyn PlatformApi + Sync),
    crawl_cfg: &CrawlConfig,
    resume: Option<CrawlCheckpoint>,
    out_path: &str,
    ingest_report_path: Option<&str>,
    failure_report_path: Option<&str>,
    out: &mut W,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let traffic = TrafficModel::reference(world());
    let mut engine = IngestEngine::new(traffic.distribution().clone());
    // A resumed crawl's checkpoint holds everything already fetched;
    // apply it as the first batch so the engine catches up before the
    // crawl continues. Kill-mid-stream + resume thereby converges on
    // the exact state of an uninterrupted streamed crawl (the
    // robustness suite proves it byte for byte).
    if let Some(cp) = &resume {
        engine
            .apply(&cp.dataset)
            .map_err(|e| format!("reconstruction failed: {e}"))?;
        engine
            .publish()
            .map_err(|e| format!("publish failed: {e}"))?;
    }
    let mut apply_error = None;
    let mut progress = String::new();
    let outcome = crawl_parallel_with_batches(api, crawl_cfg, resume, |dataset, from| {
        if apply_error.is_some() {
            return;
        }
        let applied = engine
            .apply_from(dataset, from)
            .and_then(|delta| engine.publish().map(|snapshot| (delta, snapshot)));
        match applied {
            Ok((delta, snapshot)) => {
                let _ = writeln!(
                    progress,
                    "epoch {}: +{} videos ({} kept), {} kept total",
                    snapshot.epoch,
                    delta.unique,
                    delta.kept,
                    engine.clean().kept()
                );
            }
            Err(e) => apply_error = Some(e),
        }
    });
    if let Some(e) = apply_error {
        return Err(format!("ingest failed mid-crawl: {e}"));
    }
    // Even a crawl that fetched nothing publishes one (empty) epoch.
    let snapshot = match engine.cell().load() {
        Some(snapshot) => snapshot,
        None => engine
            .publish()
            .map_err(|e| format!("publish failed: {e}"))?,
    };
    write!(out, "{progress}").map_err(|e| e.to_string())?;
    let stats = engine.stats();
    writeln!(
        out,
        "ingest: {} batches, {} epochs, {} rows touched, kept {} of {} crawled",
        stats.batches,
        engine.epoch(),
        stats.rows_touched,
        engine.clean().kept(),
        engine.clean().crawled()
    )
    .map_err(|e| e.to_string())?;

    save(&outcome.dataset, out_path)?;
    writeln!(out, "{}", outcome.stats).map_err(|e| e.to_string())?;
    if let Some(path) = failure_report_path {
        std::fs::write(path, outcome.stats.failure_report_markdown())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote failure report to {path}").map_err(|e| e.to_string())?;
    }
    if let Some(path) = ingest_report_path {
        std::fs::write(path, render_ingest_report(&snapshot.clean, &snapshot.table))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote ingest report to {path}").map_err(|e| e.to_string())?;
    }
    writeln!(out, "saved {} records to {out_path}", outcome.dataset.len())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Re-streams a saved dataset through the incremental ingest engine in
/// fixed-size batches — or rebuilds the identical report cold — the
/// CLI face of the incremental-equivalence oracle.
fn ingest_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let out_path = args.get("out").map(str::to_owned);
    let batches = args.get_usize("batches", 8)?;
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    let traffic = TrafficModel::reference(world());

    let report = if args.flag("cold") {
        let clean = load_clean(path)?;
        let recon = Reconstruction::compute(&clean, traffic.distribution())
            .map_err(|e| format!("reconstruction failed: {e}"))?;
        let table = TagViewTable::aggregate(&clean, &recon);
        writeln!(
            out,
            "cold rebuild: kept {} of {} crawled",
            clean.len(),
            clean.report().crawled
        )
        .map_err(|e| e.to_string())?;
        render_ingest_report(&clean, &table)
    } else {
        let dataset = load(path)?;
        if dataset.country_count() != traffic.distribution().len() {
            return Err(format!(
                "{path} covers {} countries, the reference world has {}",
                dataset.country_count(),
                traffic.distribution().len()
            ));
        }
        let mut engine = IngestEngine::new(traffic.distribution().clone());
        let total = dataset.len();
        let size = total.div_ceil(batches).max(1);
        let mut from = 0;
        while from < total {
            let to = (from + size).min(total);
            let delta = engine
                .apply_range(&dataset, from, to)
                .map_err(|e| format!("reconstruction failed: {e}"))?;
            let snapshot = engine
                .publish()
                .map_err(|e| format!("publish failed: {e}"))?;
            writeln!(
                out,
                "epoch {}: applied records {from}..{to} ({} kept), {} kept total",
                snapshot.epoch,
                delta.kept,
                engine.clean().kept()
            )
            .map_err(|e| e.to_string())?;
            from = to;
        }
        // An empty dataset still publishes one (empty) epoch.
        let snapshot = match engine.cell().load() {
            Some(snapshot) => snapshot,
            None => engine
                .publish()
                .map_err(|e| format!("publish failed: {e}"))?,
        };
        writeln!(
            out,
            "ingest: {} batches, {} epochs, kept {} of {} crawled",
            engine.stats().batches,
            engine.epoch(),
            engine.clean().kept(),
            engine.clean().crawled()
        )
        .map_err(|e| e.to_string())?;
        render_ingest_report(&snapshot.clean, &snapshot.table)
    };

    match out_path {
        Some(p) => {
            std::fs::write(&p, &report).map_err(|e| format!("cannot write {p}: {e}"))?;
            writeln!(out, "wrote ingest report to {p}").map_err(|e| e.to_string())?;
        }
        None => write!(out, "{report}").map_err(|e| e.to_string())?,
    }
    Ok(())
}

fn stats<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let clean = load_clean(args.positional(0, "dataset file")?)?;
    write!(out, "{}", query::stats_body(&clean)).map_err(|e| e.to_string())
}

/// Cold-builds the snapshot parts every offline query command answers
/// from. Without the generating platform, the CLI is in the paper's
/// exact situation: it must use the Alexa-substitute reference prior.
fn query_parts(path: &str) -> Result<(CleanDataset, Reconstruction, TagViewTable), String> {
    let clean = load_clean(path)?;
    let traffic = TrafficModel::reference(world());
    let recon = Reconstruction::compute(&clean, traffic.distribution())
        .map_err(|e| format!("reconstruction failed: {e}"))?;
    let table = TagViewTable::aggregate(&clean, &recon);
    Ok((clean, recon, table))
}

fn tag<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let name = args.positional(1, "tag name")?;
    let (clean, _, table) = query_parts(path)?;
    let traffic = TrafficModel::reference(world());
    let body =
        query::tag_body(&clean, &table, traffic.distribution(), name).map_err(|e| e.to_string())?;
    write!(out, "{body}").map_err(|e| e.to_string())
}

fn country<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let code = args.positional(1, "country code")?;
    let (clean, _, table) = query_parts(path)?;
    let traffic = TrafficModel::reference(world());
    let index = query::build_geo_index(&table, traffic.distribution());
    let body = query::country_body(&clean, &index, &traffic, code).map_err(|e| e.to_string())?;
    write!(out, "{body}").map_err(|e| e.to_string())
}

fn video<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let key = args.positional(1, "video key")?;
    let (clean, recon, _) = query_parts(path)?;
    let pos = query::find_video(&clean, key)
        .ok_or_else(|| query::QueryError::UnknownVideo(key.to_owned()).to_string())?;
    let body = query::video_body(&clean, &recon, pos).map_err(|e| e.to_string())?;
    write!(out, "{body}").map_err(|e| e.to_string())
}

fn predict<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    if args.positional.len() < 2 {
        return Err("predict needs at least one tag".into());
    }
    let names: Vec<&str> = args.positional[1..].iter().map(String::as_str).collect();
    let (clean, _, table) = query_parts(path)?;
    let traffic = TrafficModel::reference(world());
    let body = query::predict_body(&clean, &table, traffic.distribution(), &names)
        .map_err(|e| e.to_string())?;
    write!(out, "{body}").map_err(|e| e.to_string())
}

/// `tagdist serve`: publish the dataset as epoch 1 and run the accept
/// loop until SIGTERM/SIGINT (or a failed bind).
fn serve_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let clean = load_clean(path)?;
    let traffic = TrafficModel::reference(world());
    let snapshot = EpochSnapshot::rebuild(1, clean, traffic.distribution())
        .map_err(|e| format!("reconstruction failed: {e}"))?;
    let cell = Arc::new(SnapshotCell::new());
    cell.store(Arc::new(snapshot));
    let config = ServerConfig {
        read_timeout_ms: args.get_u64("read-timeout-ms", 0)?,
        watch: args.flag("watch").then(|| path.to_owned()),
    };
    let server = Server::bind(addr, cell, traffic, config)?;
    let bound = server.local_addr()?;
    signal::install();
    writeln!(out, "serving {path} on http://{bound}/").map_err(|e| e.to_string())?;
    // The CI lane backgrounds this process and reads the port from the
    // log, so the address line must land before the loop starts.
    out.flush().map_err(|e| e.to_string())?;
    server.run(&Pool::from_env(), signal::shutdown_flag())
}

/// `tagdist bench-serve`: replay load against a running server, with
/// the offline state rebuilt from the same file as the identity
/// oracle.
fn bench_serve_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let addr = args
        .get("addr")
        .ok_or("bench-serve needs --addr HOST:PORT")?;
    let clean = load_clean(path)?;
    let traffic = TrafficModel::reference(world());
    let snapshot = EpochSnapshot::rebuild(1, clean, traffic.distribution())
        .map_err(|e| format!("reconstruction failed: {e}"))?;
    let state = ServeState::build(Arc::new(snapshot), traffic.distribution());
    let cfg = LoadConfig {
        addr: addr.to_owned(),
        requests: args.get_u64("requests", 10_000)?,
        concurrency: args.get_usize("concurrency", 4)?,
        seed: args.get_u64("seed", 42)?,
        read_timeout_ms: args.get_u64("read-timeout-ms", 10_000)?,
    };
    if !loadgen::wait_ready(addr, 400, Duration::from_millis(25)) {
        return Err(format!("server at {addr} never answered /healthz"));
    }
    let report = if args.flag("smoke") {
        loadgen::run_smoke(&cfg, &state, &traffic, args.get("dump"))?
    } else {
        loadgen::run(&cfg, &state, &traffic)?
    };
    write!(out, "{}", report.summary()).map_err(|e| e.to_string())?;
    if let Some(p) = args.get("summary") {
        std::fs::write(p, report.to_json()).map_err(|e| format!("cannot write {p}: {e}"))?;
        writeln!(out, "wrote summary to {p}").map_err(|e| e.to_string())?;
    }
    if report.failures > 0 || report.identity_failures > 0 {
        return Err(format!(
            "{} transport failures, {} identity failures",
            report.failures, report.identity_failures
        ));
    }
    Ok(())
}

fn sample<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let n: usize = args
        .positional(1, "sample size")?
        .parse()
        .map_err(|_| "sample size must be an integer".to_owned())?;
    let out_path = args.get("out").ok_or("sample needs --out FILE")?;
    let seed = args.get_u64("seed", 7)?;
    let dataset = load(path)?;
    let sampled = sample_stratified(&dataset, n, 10, seed);
    save(&sampled, out_path)?;
    writeln!(
        out,
        "sampled {} of {} records into {out_path}",
        sampled.len(),
        dataset.len()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn cache_sweep<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let requests = args.get_usize("requests", 60_000)?;
    let capacity_pct = args
        .get("capacity-pct")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| "bad --capacity-pct".to_owned())
        })
        .transpose()?
        .unwrap_or(2.0);
    let clean = load_clean(path)?;
    if clean.is_empty() {
        return Err("no usable videos after filtering".into());
    }
    let traffic = TrafficModel::reference(world());
    let recon = Reconstruction::compute(&clean, traffic.distribution())
        .map_err(|e| format!("reconstruction failed: {e}"))?;
    let table = TagViewTable::aggregate(&clean, &recon);
    let predictor = Predictor::new(&table, traffic.distribution());

    // Demand is simulated from the reconstructed distributions — the
    // only geographic signal available to a file-based analysis.
    let dists: Vec<GeoDist> = (0..clean.len())
        .map(|p| {
            recon
                .distribution(p)
                .map_err(|e| format!("row {p} does not normalize: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let weights: Vec<f64> = clean.iter().map(|v| v.total_views as f64).collect();
    let stream = RequestStream::generate(&dists, &weights, requests, 2014);
    let predicted: Vec<GeoDist> = clean
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, recon.views(pos)))
        .collect();

    let countries = world().len();
    let capacity = ((clean.len() as f64) * capacity_pct / 100.0).ceil() as usize;
    writeln!(
        out,
        "{} videos, {requests} requests, capacity {capacity}/country ({capacity_pct}%)",
        clean.len()
    )
    .map_err(|e| e.to_string())?;
    for placement in [
        Placement::predictive("tag-proactive", countries, capacity, &predicted, &weights),
        Placement::geo_blind(countries, capacity, &weights),
        Placement::random(countries, clean.len(), capacity, 99),
    ] {
        writeln!(out, "{}", run_static(&placement, &stream)).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn report<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let out_path = args.get("out").ok_or("report needs --out FILE")?;
    let metrics_path = args.get("metrics");
    let mut config = StudyConfig::small();
    config
        .world
        .with_videos(args.get_usize("videos", config.world.videos)?);
    config
        .world
        .with_seed(args.get_u64("seed", config.world.seed)?);
    config.fault = fault_from_args(args)?;
    let obs = if metrics_path.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let study = Study::try_run_with(config, &obs).map_err(|e| format!("study failed: {e}"))?;
    let options = ReportOptions {
        // The metrics tree should cover every subsystem, so a metrics
        // run always includes the cache simulation.
        with_caching: args.flag("with-caching") || metrics_path.is_some(),
        ..ReportOptions::default()
    };
    let markdown = markdown_report_obs(&study, &options, &obs);
    std::fs::write(out_path, &markdown).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(out, "wrote {} bytes to {out_path}", markdown.len()).map_err(|e| e.to_string())?;
    if let Some(metrics_path) = metrics_path {
        let metrics = obs.finish();
        std::fs::write(metrics_path, metrics.to_json())
            .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
        writeln!(out, "wrote metrics to {metrics_path}").map_err(|e| e.to_string())?;
        write!(out, "{}", metrics.summary()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn recrawl_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let out_path = args.get("out").ok_or("recrawl needs --out FILE")?;
    let existing = load(path)?;
    let mut world_cfg = WorldConfig::small();
    world_cfg.with_videos(args.get_usize("videos", world_cfg.videos)?);
    world_cfg.with_seed(args.get_u64("seed", world_cfg.seed)?);
    let platform = Platform::generate(world_cfg);
    let outcome = recrawl(&platform, &CrawlConfig::default(), &existing);
    save(&outcome.dataset, out_path)?;
    writeln!(
        out,
        "reused {} records, fetched {} new; saved {} to {out_path}",
        outcome.reused,
        outcome.newly_fetched,
        outcome.dataset.len()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn merge_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("merge needs at least one dataset file".into());
    }
    let out_path = args.get("out").ok_or("merge needs --out FILE")?;
    let datasets = args
        .positional
        .iter()
        .map(|p| load(p))
        .collect::<Result<Vec<_>, _>>()?;
    let refs: Vec<&Dataset> = datasets.iter().collect();
    let merged = merge(&refs).map_err(|e| format!("merge failed: {e}"))?;
    save(&merged, out_path)?;
    writeln!(
        out,
        "merged {} files ({} records) into {out_path}",
        datasets.len(),
        merged.len()
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn convert_cmd<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args.positional(0, "dataset file")?;
    let out_path = args.get("out").ok_or("convert needs --out FILE")?;
    let format = match args.get("to").ok_or("convert needs --to tsv|bin")? {
        "tsv" => DatasetFormat::Tsv,
        "bin" => DatasetFormat::Binary,
        other => return Err(format!("unknown format {other:?}; --to takes tsv or bin")),
    };
    let map = Mmap::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if format == DatasetFormat::Binary && sniff(&map) == Some(DatasetFormat::Binary) {
        // Already binary: validate the image in place (magic, section
        // table, checksums, section contents) and copy the bytes
        // through — no record decode, no re-encode, and the output is
        // byte-identical to the input.
        let view =
            binfmt::decode_borrowed(&map).map_err(|e| format!("cannot verify {path}: {e}"))?;
        std::fs::write(out_path, &map[..]).map_err(|e| format!("cannot write {out_path}: {e}"))?;
        writeln!(
            out,
            "verified {} records; copied binary image through to {out_path}",
            view.len()
        )
        .map_err(|e| e.to_string())?;
        return Ok(());
    }
    let dataset = decode_any(&map).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let mut file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    match format {
        DatasetFormat::Tsv => tsv::write(&dataset, &mut file),
        DatasetFormat::Binary => write_binary(&dataset, &mut file),
    }
    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(
        out,
        "converted {} records to {} {out_path}",
        dataset.len(),
        match format {
            DatasetFormat::Tsv => "TSV",
            DatasetFormat::Binary => "binary",
        }
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, String> {
        let args = Args::parse(tokens.iter().copied())?;
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("commands emit UTF-8"))
    }

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tagdist-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let text = run(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("generate"));
        let empty = run(&[]).unwrap();
        assert!(empty.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn generate_stats_tag_sample_round_trip() {
        let crawl_path = temp("crawl.tsv");
        let sample_path = temp("sample.tsv");

        let text = run(&[
            "generate",
            "--videos",
            "1500",
            "--seed",
            "5",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        assert!(text.contains("saved"), "{text}");

        let text = run(&["stats", &crawl_path]).unwrap();
        assert!(text.contains("crawled"), "{text}");
        assert!(text.contains("unique tags"), "{text}");

        let text = run(&["tag", &crawl_path, "pop"]).unwrap();
        assert!(text.contains("pop:"), "{text}");
        assert!(text.contains("JS(traffic)"), "{text}");

        let text = run(&["sample", &crawl_path, "200", "--out", &sample_path]).unwrap();
        assert!(text.contains("sampled 200"), "{text}");
        let text = run(&["stats", &sample_path]).unwrap();
        assert!(text.contains("crawled 200"), "{text}");

        std::fs::remove_file(&crawl_path).ok();
        std::fs::remove_file(&sample_path).ok();
    }

    #[test]
    fn tag_command_reports_missing_tags() {
        let crawl_path = temp("crawl2.tsv");
        run(&["generate", "--videos", "800", "--out", &crawl_path]).unwrap();
        let err = run(&["tag", &crawl_path, "no-such-tag-ever"]).unwrap_err();
        assert!(err.contains("does not occur"));
        std::fs::remove_file(&crawl_path).ok();
    }

    #[test]
    fn cache_sweep_runs_on_a_saved_dataset() {
        let crawl_path = temp("crawl4.tsv");
        run(&[
            "generate",
            "--videos",
            "1500",
            "--seed",
            "7",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        let text = run(&[
            "cache",
            &crawl_path,
            "--requests",
            "5000",
            "--capacity-pct",
            "2",
        ])
        .unwrap();
        assert!(text.contains("tag-proactive"), "{text}");
        assert!(text.contains("geo-blind"), "{text}");
        assert!(text.contains("random"), "{text}");
        std::fs::remove_file(&crawl_path).ok();
    }

    #[test]
    fn report_writes_markdown() {
        let report_path = temp("report.md");
        let text = run(&["report", "--videos", "1500", "--out", &report_path]).unwrap();
        assert!(text.contains("wrote"), "{text}");
        let markdown = std::fs::read_to_string(&report_path).unwrap();
        assert!(markdown.contains("# tagdist study report"));
        assert!(markdown.contains("## E6"));
        std::fs::remove_file(&report_path).ok();
    }

    #[test]
    fn report_metrics_flag_writes_span_tree() {
        let report_path = temp("report-metrics.md");
        let metrics_path = temp("metrics.json");
        let text = run(&[
            "report",
            "--videos",
            "1500",
            "--out",
            &report_path,
            "--metrics",
            &metrics_path,
        ])
        .unwrap();
        assert!(text.contains("wrote metrics to"), "{text}");
        // The printed summary shows the span tree and counter tables.
        assert!(text.contains("study"), "{text}");
        assert!(text.contains("counters"), "{text}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        let metrics = tagdist::obs::MetricsReport::from_json(&json).unwrap();
        let names = metrics.span_names();
        for stage in [
            "study",
            "generate",
            "crawl",
            "filter",
            "reconstruct",
            "aggregate",
            "report",
            "e6_prediction",
            "e7_caching",
        ] {
            assert!(names.contains(&stage), "missing span {stage:?}: {names:?}");
        }
        assert!(metrics.counters.contains_key("cache.requests"));
        assert!(metrics.counters.contains_key("crawl.fetched"));
        assert!(metrics.counters.contains_key("par.calls"));
        // A metrics run forces the caching sweep on.
        let markdown = std::fs::read_to_string(&report_path).unwrap();
        assert!(markdown.contains("## E7"));
        std::fs::remove_file(&report_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn missing_required_options_error_clearly() {
        assert!(run(&["generate"]).unwrap_err().contains("--out"));
        assert!(run(&["stats"]).unwrap_err().contains("dataset file"));
        assert!(run(&["sample", "x.tsv"])
            .unwrap_err()
            .contains("sample size"));
        assert!(run(&["report"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn country_command_prints_signatures() {
        let crawl_path = temp("crawl3.tsv");
        run(&[
            "generate",
            "--videos",
            "1500",
            "--seed",
            "6",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        let text = run(&["country", &crawl_path, "BR"]).unwrap();
        assert!(text.contains("Brazil"), "{text}");
        assert!(text.contains("signature tags"), "{text}");
        let err = run(&["country", &crawl_path, "XX"]).unwrap_err();
        assert!(err.contains("unknown country"));
        std::fs::remove_file(&crawl_path).ok();
    }

    #[test]
    fn recrawl_and_merge_commands_work() {
        let first = temp("inc1.tsv");
        let grown = temp("inc2.tsv");
        let merged = temp("merged.tsv");
        run(&[
            "generate", "--videos", "900", "--seed", "3", "--budget", "400", "--out", &first,
        ])
        .unwrap();
        let text = run(&[
            "recrawl", &first, "--videos", "900", "--seed", "3", "--out", &grown,
        ])
        .unwrap();
        assert!(text.contains("reused 400"), "{text}");
        let text = run(&["merge", &first, &grown, "--out", &merged]).unwrap();
        assert!(text.contains("merged 2 files"), "{text}");
        for p in [&first, &grown, &merged] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn convert_round_trips_between_formats() {
        let crawl_path = temp("conv.tsv");
        let bin_path = temp("conv.bin");
        let back_path = temp("conv-back.tsv");
        run(&[
            "generate",
            "--videos",
            "1200",
            "--seed",
            "9",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        let text = run(&["convert", &crawl_path, "--to", "bin", "--out", &bin_path]).unwrap();
        assert!(text.contains("binary"), "{text}");
        // Every reading command sniffs the format: stats works on the
        // binary file and reports the same corpus.
        let from_tsv = run(&["stats", &crawl_path]).unwrap();
        let from_bin = run(&["stats", &bin_path]).unwrap();
        assert_eq!(from_tsv, from_bin);
        // Converting back to TSV reproduces the original bytes.
        run(&["convert", &bin_path, "--to", "tsv", "--out", &back_path]).unwrap();
        assert_eq!(
            std::fs::read(&crawl_path).unwrap(),
            std::fs::read(&back_path).unwrap(),
            "TSV -> bin -> TSV must be byte-identical"
        );
        let err = run(&["convert", &crawl_path, "--to", "xml", "--out", &back_path]).unwrap_err();
        assert!(err.contains("tsv or bin"), "{err}");
        for p in [&crawl_path, &bin_path, &back_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn convert_bin_to_bin_verifies_and_copies_through() {
        let crawl_path = temp("pass.tsv");
        let bin_path = temp("pass.bin");
        let copy_path = temp("pass-copy.bin");
        run(&[
            "generate",
            "--videos",
            "1000",
            "--seed",
            "17",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        run(&["convert", &crawl_path, "--to", "bin", "--out", &bin_path]).unwrap();
        let text = run(&["convert", &bin_path, "--to", "bin", "--out", &copy_path]).unwrap();
        assert!(text.contains("copied binary image through"), "{text}");
        assert_eq!(
            std::fs::read(&bin_path).unwrap(),
            std::fs::read(&copy_path).unwrap(),
            "bin -> bin must be a byte-identical passthrough"
        );
        // The passthrough still validates: a corrupted payload byte
        // breaks a section checksum and the copy is refused.
        let mut bytes = std::fs::read(&bin_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&bin_path, &bytes).unwrap();
        let err = run(&["convert", &bin_path, "--to", "bin", "--out", &copy_path]).unwrap_err();
        assert!(err.contains("cannot verify"), "{err}");
        for p in [&crawl_path, &bin_path, &copy_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn stats_agree_between_tsv_and_mmapped_binary() {
        // `stats` on a binary file runs the mmap + borrowed-decode +
        // columnar-filter path; on TSV it runs the record path. Both
        // must print the same report.
        let crawl_path = temp("mmap.tsv");
        let bin_path = temp("mmap.bin");
        run(&[
            "generate",
            "--videos",
            "1000",
            "--seed",
            "19",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        run(&["convert", &crawl_path, "--to", "bin", "--out", &bin_path]).unwrap();
        assert_eq!(
            run(&["stats", &crawl_path]).unwrap(),
            run(&["stats", &bin_path]).unwrap()
        );
        assert_eq!(
            run(&["tag", &crawl_path, "pop"]).unwrap(),
            run(&["tag", &bin_path, "pop"]).unwrap()
        );
        for p in [&crawl_path, &bin_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn load_reports_unreadable_files() {
        let err = run(&["stats", "/nonexistent/nowhere.tsv"]).unwrap_err();
        assert!(err.contains("cannot open"));
    }

    #[test]
    fn crawl_with_masked_faults_matches_generate() {
        let clean = temp("clean.tsv");
        let faulty = temp("faulty.tsv");
        let report = temp("faults.md");
        run(&[
            "generate", "--videos", "900", "--seed", "11", "--out", &clean,
        ])
        .unwrap();
        let text = run(&[
            "crawl",
            "--videos",
            "900",
            "--seed",
            "11",
            "--fault",
            "flaky",
            "--failure-report",
            &report,
            "--out",
            &faulty,
        ])
        .unwrap();
        assert!(text.contains("saved"), "{text}");
        assert_eq!(
            std::fs::read(&clean).unwrap(),
            std::fs::read(&faulty).unwrap(),
            "masked faults must leave the dataset byte-identical"
        );
        let ledger = std::fs::read_to_string(&report).unwrap();
        assert!(ledger.starts_with("# Crawl failure report"), "{ledger}");
        for p in [&clean, &faulty, &report] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn crawl_suspends_and_resumes_byte_identically() {
        let whole = temp("whole.tsv");
        let resumed = temp("resumed.tsv");
        let ckpt = temp("crawl.ckpt");
        run(&["crawl", "--videos", "900", "--seed", "12", "--out", &whole]).unwrap();
        let text = run(&[
            "crawl",
            "--videos",
            "900",
            "--seed",
            "12",
            "--checkpoint",
            &ckpt,
            "--stop-after-levels",
            "2",
            "--out",
            &resumed,
        ])
        .unwrap();
        assert!(text.contains("suspended"), "{text}");
        assert!(
            !std::path::Path::new(&resumed).exists(),
            "suspension must not write the dataset"
        );
        // World/fault parameters come from the checkpoint, not flags.
        let text = run(&["crawl", "--resume", &ckpt, "--out", &resumed]).unwrap();
        assert!(text.contains("saved"), "{text}");
        assert_eq!(
            std::fs::read(&whole).unwrap(),
            std::fs::read(&resumed).unwrap(),
            "resumed crawl must be byte-identical to the uninterrupted one"
        );
        for p in [&whole, &resumed, &ckpt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn crawl_periodic_checkpoints_do_not_change_the_result() {
        let plain = temp("plain.tsv");
        let stepped = temp("stepped.tsv");
        let ckpt = temp("periodic.ckpt");
        run(&["crawl", "--videos", "900", "--seed", "13", "--out", &plain]).unwrap();
        let text = run(&[
            "crawl",
            "--videos",
            "900",
            "--seed",
            "13",
            "--checkpoint",
            &ckpt,
            "--checkpoint-every",
            "1",
            "--out",
            &stepped,
        ])
        .unwrap();
        assert!(text.contains("checkpoint at depth"), "{text}");
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&stepped).unwrap()
        );
        for p in [&plain, &stepped, &ckpt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn crawl_flag_validation() {
        assert!(run(&["crawl"]).unwrap_err().contains("--out"));
        let err = run(&[
            "crawl",
            "--stop-after-levels",
            "1",
            "--out",
            "/tmp/never.tsv",
        ])
        .unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
        let err = run(&["generate", "--fault", "bogus", "--out", "/tmp/never.tsv"]).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    /// The CLI face of the rebuild oracle: streaming a saved dataset in
    /// any number of batches writes the byte-identical report a cold
    /// rebuild writes.
    #[test]
    fn ingest_report_matches_cold_rebuild_byte_for_byte() {
        let data = temp("ing.tsv");
        let cold = temp("ing-cold.txt");
        let inc = temp("ing-inc.txt");
        run(&[
            "generate", "--videos", "900", "--seed", "21", "--out", &data,
        ])
        .unwrap();
        run(&["ingest", &data, "--cold", "--out", &cold]).unwrap();
        for batches in ["1", "3", "8"] {
            let text = run(&["ingest", &data, "--batches", batches, "--out", &inc]).unwrap();
            assert!(text.contains("epoch 1:"), "{text}");
            assert_eq!(
                std::fs::read(&cold).unwrap(),
                std::fs::read(&inc).unwrap(),
                "{batches}-batch ingest must equal the cold rebuild"
            );
        }
        for p in [&data, &cold, &inc] {
            std::fs::remove_file(p).ok();
        }
    }

    /// `crawl --ingest` publishes per-level epochs whose final report
    /// equals an offline cold rebuild of the dataset the crawl saved.
    #[test]
    fn crawl_ingest_matches_offline_cold_rebuild() {
        let data = temp("crawl-ing.tsv");
        let live = temp("crawl-ing-live.txt");
        let cold = temp("crawl-ing-cold.txt");
        let text = run(&[
            "crawl",
            "--videos",
            "900",
            "--seed",
            "22",
            "--ingest",
            "--ingest-report",
            &live,
            "--out",
            &data,
        ])
        .unwrap();
        assert!(text.contains("epoch 1:"), "{text}");
        assert!(text.contains("ingest:"), "{text}");
        run(&["ingest", &data, "--cold", "--out", &cold]).unwrap();
        assert_eq!(
            std::fs::read(&live).unwrap(),
            std::fs::read(&cold).unwrap(),
            "mid-crawl ingest state must equal the cold rebuild"
        );
        for p in [&data, &live, &cold] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn ingest_flag_validation() {
        let err = run(&[
            "crawl",
            "--ingest",
            "--checkpoint",
            "/tmp/never.ckpt",
            "--out",
            "/tmp/never.tsv",
        ])
        .unwrap_err();
        assert!(err.contains("--ingest"), "{err}");
        let err = run(&[
            "crawl",
            "--ingest-report",
            "/tmp/never.txt",
            "--out",
            "/tmp/never.tsv",
        ])
        .unwrap_err();
        assert!(err.contains("--ingest"), "{err}");
        let err = run(&["ingest", "/tmp/never.tsv", "--batches", "0"]).unwrap_err();
        assert!(err.contains("--batches"), "{err}");
    }

    /// Regression (PR 9): an empty dataset must round-trip through
    /// convert in both directions and through the delta path without
    /// panicking.
    #[test]
    fn empty_dataset_survives_convert_and_ingest() {
        use tagdist::dataset::{tsv, DatasetBuilder};
        let empty = temp("empty.tsv");
        let bin = temp("empty.bin");
        let back = temp("empty-back.tsv");
        let cold = temp("empty-cold.txt");
        let inc = temp("empty-inc.txt");
        let cc = tagdist::geo::world().len();
        let mut file = std::fs::File::create(&empty).unwrap();
        tsv::write(&DatasetBuilder::new(cc).build(), &mut file).unwrap();
        drop(file);
        run(&["convert", &empty, "--to", "bin", "--out", &bin]).unwrap();
        run(&["convert", &bin, "--to", "tsv", "--out", &back]).unwrap();
        assert_eq!(
            std::fs::read(&empty).unwrap(),
            std::fs::read(&back).unwrap(),
            "empty TSV -> bin -> TSV must be byte-identical"
        );
        let text = run(&["ingest", &empty, "--out", &inc]).unwrap();
        assert!(
            text.contains("0 epochs") || text.contains("1 epochs"),
            "{text}"
        );
        run(&["ingest", &bin, "--cold", "--out", &cold]).unwrap();
        assert_eq!(
            std::fs::read(&cold).unwrap(),
            std::fs::read(&inc).unwrap(),
            "empty ingest must equal the empty cold rebuild"
        );
        for p in [&empty, &bin, &back, &cold, &inc] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn video_and_predict_commands_answer_offline() {
        let crawl_path = temp("vp.tsv");
        run(&[
            "generate",
            "--videos",
            "1200",
            "--seed",
            "23",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        let clean = query::load_clean(&crawl_path).unwrap();
        let key = clean.key_of(0).to_owned();
        let text = run(&["video", &crawl_path, &key]).unwrap();
        assert!(text.contains("reconstructed views by country:"), "{text}");
        assert!(text.starts_with(&key), "{text}");
        let err = run(&["video", &crawl_path, "no-such-key"]).unwrap_err();
        assert!(err.contains("not in the filtered dataset"), "{err}");
        let text = run(&["predict", &crawl_path, "pop"]).unwrap();
        assert!(text.starts_with("predicted audience for 1 tags:"), "{text}");
        let err = run(&["predict", &crawl_path]).unwrap_err();
        assert!(err.contains("at least one tag"), "{err}");
        std::fs::remove_file(&crawl_path).ok();
    }

    /// A `Write` sink the test can read while another thread (the
    /// serve loop) keeps writing.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// End to end through the real subcommands: `serve` boots on an
    /// ephemeral port, `bench-serve --smoke` replays the fixed set and
    /// dumps bodies that match the offline commands byte for byte, a
    /// Zipf load run asserts identity on every response, and setting
    /// the shutdown flag drains the loop to a clean exit.
    #[test]
    fn serve_and_bench_serve_round_trip() {
        let crawl_path = temp("serve.tsv");
        run(&[
            "generate",
            "--videos",
            "1200",
            "--seed",
            "29",
            "--out",
            &crawl_path,
        ])
        .unwrap();
        let buf = SharedBuf::default();
        let mut writer = buf.clone();
        let path = crawl_path.clone();
        let handle = std::thread::spawn(move || {
            let args = Args::parse(["serve", path.as_str(), "--addr", "127.0.0.1:0"]).unwrap();
            dispatch(&args, &mut writer)
        });
        let mut addr = None;
        for _ in 0..1_000 {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(a) = text
                .split("http://")
                .nth(1)
                .and_then(|r| r.split('/').next())
            {
                addr = Some(a.to_owned());
                break;
            }
            if handle.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let addr = addr.expect("serve never printed its bound address");

        let dump = std::env::temp_dir().join(format!("tagdist-cli-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&dump).unwrap();
        let text = run(&[
            "bench-serve",
            &crawl_path,
            "--addr",
            &addr,
            "--smoke",
            "--dump",
            dump.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("0 identity failures"), "{text}");
        // The dumped bodies are the offline commands' bytes — the same
        // comparison the CI serve-oracle lane `cmp`s across processes.
        let offline = run(&["stats", &crawl_path]).unwrap();
        let dumped = std::fs::read_to_string(dump.join("stats.body")).unwrap();
        assert_eq!(offline, dumped);
        let offline = run(&["country", &crawl_path, "BR"]).unwrap();
        let dumped = std::fs::read_to_string(dump.join("country_BR.body")).unwrap();
        assert_eq!(offline, dumped);

        let summary = temp("bench-serve.json");
        let text = run(&[
            "bench-serve",
            &crawl_path,
            "--addr",
            &addr,
            "--requests",
            "200",
            "--concurrency",
            "2",
            "--seed",
            "5",
            "--summary",
            &summary,
        ])
        .unwrap();
        assert!(
            text.contains("200 requests, 0 failures, 0 identity failures"),
            "{text}"
        );
        let json = std::fs::read_to_string(&summary).unwrap();
        assert!(json.contains("\"identity_failures\": 0"), "{json}");

        signal::shutdown_flag().store(true, std::sync::atomic::Ordering::SeqCst);
        handle.join().unwrap().unwrap();
        signal::shutdown_flag().store(false, std::sync::atomic::Ordering::SeqCst);
        std::fs::remove_dir_all(&dump).ok();
        std::fs::remove_file(&summary).ok();
        std::fs::remove_file(&crawl_path).ok();
    }

    /// Regression (PR 9): a batch whose every record is filtered out —
    /// tags interned but never carried — must flow through the delta
    /// path and match the cold rebuild, dangling references included.
    #[test]
    fn dangling_tag_batches_survive_the_delta_path() {
        use tagdist::dataset::{tsv, DatasetBuilder, RawPopularity};
        let cc = tagdist::geo::world().len();
        let mut b = DatasetBuilder::new(cc);
        b.push_video(
            "ghost1",
            10,
            &["phantom", "specter"],
            RawPopularity::Missing,
        );
        b.push_video("ghost2", 20, &[], RawPopularity::decode(vec![1; cc], cc));
        b.push_video(
            "ghost3",
            30,
            &["phantom"],
            RawPopularity::decode(vec![0; cc], cc),
        );
        let data = temp("ghost.tsv");
        let mut file = std::fs::File::create(&data).unwrap();
        tsv::write(&b.build(), &mut file).unwrap();
        drop(file);

        let cold = temp("ghost-cold.txt");
        let inc = temp("ghost-inc.txt");
        run(&["ingest", &data, "--cold", "--out", &cold]).unwrap();
        let text = run(&["ingest", &data, "--batches", "2", "--out", &inc]).unwrap();
        assert!(text.contains("kept 0 of 3 crawled"), "{text}");
        assert_eq!(
            std::fs::read(&cold).unwrap(),
            std::fs::read(&inc).unwrap(),
            "dangling-tag batches must equal the cold rebuild"
        );
        for p in [&data, &cold, &inc] {
            std::fs::remove_file(p).ok();
        }
    }
}
