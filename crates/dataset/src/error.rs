//! Error type for dataset construction and (de)serialization.

use core::fmt;
use std::io;

/// Errors produced while reading or writing datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in the TSV serialization.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A structural failure in the binary columnar serialization: bad
    /// magic, a truncated header or section, an out-of-bounds section
    /// table entry, or an invariant violation in a decoded column.
    Format {
        /// What was wrong.
        message: String,
    },
    /// A section's FNV-1a checksum did not match its bytes: the file
    /// was corrupted after writing.
    Checksum {
        /// Numeric id of the failing section (see `binfmt`).
        section: u32,
        /// Checksum recorded in the section table.
        expected: u64,
        /// Checksum recomputed over the section bytes.
        actual: u64,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DatasetError::Format { message } => {
                write!(f, "binary format error: {message}")
            }
            DatasetError::Checksum {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section {section}: \
                 recorded {expected:#018x}, computed {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Parse { .. }
            | DatasetError::Format { .. }
            | DatasetError::Checksum { .. } => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> DatasetError {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_line() {
        let e = DatasetError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error;
        let e = DatasetError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn format_errors_render_for_humans() {
        let e = DatasetError::Format {
            message: "truncated section table".into(),
        };
        assert!(e.to_string().contains("binary format error"));
        assert!(e.to_string().contains("truncated"));
        let e = DatasetError::Checksum {
            section: 7,
            expected: 0xdead,
            actual: 0xbeef,
        };
        assert!(e.to_string().contains("section 7"));
        assert!(e.to_string().contains("0x000000000000dead"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
