//! Error type for dataset construction and (de)serialization.

use core::fmt;
use std::io;

/// Errors produced while reading or writing datasets.
#[derive(Debug)]
pub enum DatasetError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in the TSV serialization.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> DatasetError {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_line() {
        let e = DatasetError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error;
        let e = DatasetError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
