//! Format sniffing: one entry point for both dataset serializations.
//!
//! Both on-disk formats open with the ASCII prefix `#tagdist-dataset `
//! — the TSV header continues `v1 countries=N`, the binary magic
//! `bin v1` — so the first few bytes identify the format without
//! consuming the input. [`read_any`] / [`decode_any`] dispatch on that
//! sniff, letting `tagdist crawl`, `report`, checkpoint embedding and
//! `convert` accept either format transparently.

use std::io::Read;

use crate::binfmt;
use crate::columnar::ColumnarDataset;
use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::tsv;

/// Which serialization a byte image carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// The line-oriented `#tagdist-dataset v1` text format.
    Tsv,
    /// The `#tagdist-dataset bin v1` binary columnar format.
    Binary,
}

/// Sniffs the serialization format from the first bytes of an image.
///
/// Returns `None` when the prefix matches neither format.
#[must_use]
pub fn sniff(bytes: &[u8]) -> Option<DatasetFormat> {
    if bytes.starts_with(binfmt::MAGIC) {
        Some(DatasetFormat::Binary)
    } else if bytes.starts_with(b"#tagdist-dataset v1") {
        Some(DatasetFormat::Tsv)
    } else {
        None
    }
}

/// Decodes a dataset from an in-memory image in either format.
///
/// # Errors
///
/// * [`DatasetError::Parse`] with line 1 when the image matches
///   neither magic.
/// * Whatever the format-specific decoder reports otherwise.
pub fn decode_any(bytes: &[u8]) -> Result<Dataset, DatasetError> {
    match sniff(bytes) {
        Some(DatasetFormat::Binary) => Ok(binfmt::decode(bytes)?.to_dataset()),
        Some(DatasetFormat::Tsv) => tsv::read(bytes),
        None => Err(DatasetError::Parse {
            line: 1,
            message: "unrecognized dataset format: expected a `#tagdist-dataset` TSV header \
                      or `bin v1` magic"
                .into(),
        }),
    }
}

/// Reads a dataset from a reader in either format (one `read_to_end`,
/// then [`decode_any`]).
///
/// # Errors
///
/// As for [`decode_any`], plus [`DatasetError::Io`] on read failure.
pub fn read_any<R: Read>(mut reader: R) -> Result<Dataset, DatasetError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    decode_any(&buf)
}

/// Serializes a dataset in the binary columnar format.
///
/// Convenience wrapper over [`ColumnarDataset::from_dataset`] +
/// [`binfmt::write`].
///
/// # Errors
///
/// Propagates any I/O failure from `writer`, and
/// [`DatasetError::Format`] if the dataset exceeds the `u32` section
/// limits of `bin v1`.
pub fn write_binary<W: std::io::Write>(dataset: &Dataset, writer: W) -> Result<(), DatasetError> {
    binfmt::write(&ColumnarDataset::from_dataset(dataset)?, writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(2);
        b.push_video_titled(
            "k1",
            "title",
            10,
            &["pop"],
            RawPopularity::decode(vec![3, 0], 2),
        );
        b.push_video("k2", 5, &[], RawPopularity::Missing);
        b.build()
    }

    #[test]
    fn sniffs_both_formats() {
        let d = sample();
        let mut text = Vec::new();
        tsv::write(&d, &mut text).unwrap();
        assert_eq!(sniff(&text), Some(DatasetFormat::Tsv));
        let mut bin = Vec::new();
        write_binary(&d, &mut bin).unwrap();
        assert_eq!(sniff(&bin), Some(DatasetFormat::Binary));
        assert_eq!(sniff(b"not a dataset"), None);
        assert_eq!(sniff(b""), None);
    }

    #[test]
    fn reads_either_format_transparently() {
        let d = sample();
        let mut text = Vec::new();
        tsv::write(&d, &mut text).unwrap();
        let mut bin = Vec::new();
        write_binary(&d, &mut bin).unwrap();
        for image in [text, bin] {
            let r = read_any(&image[..]).unwrap();
            assert_eq!(r.len(), d.len());
            for (a, b) in d.iter().zip(r.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn unknown_format_is_a_parse_error() {
        let err = decode_any(b"garbage\n").unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 1, .. }), "{err}");
        assert!(err.to_string().contains("unrecognized dataset format"));
    }

    #[test]
    fn convert_cycle_is_lossless_and_stable() {
        // TSV → bin → TSV reproduces the text bytes; bin → TSV → bin
        // reproduces the binary bytes.
        let d = sample();
        let mut text = Vec::new();
        tsv::write(&d, &mut text).unwrap();
        let mut bin = Vec::new();
        write_binary(&decode_any(&text).unwrap(), &mut bin).unwrap();
        let mut text2 = Vec::new();
        tsv::write(&decode_any(&bin).unwrap(), &mut text2).unwrap();
        assert_eq!(text, text2);
        let mut bin2 = Vec::new();
        write_binary(&decode_any(&text2).unwrap(), &mut bin2).unwrap();
        assert_eq!(bin, bin2);
    }
}
