//! Self-contained line-oriented dataset serialization.
//!
//! Crawls take minutes at paper scale, so datasets need to be saved
//! and reloaded. The format is a plain tab-separated text file — no
//! external format crate required — with one video per line:
//!
//! ```text
//! #tagdist-dataset v1 countries=60
//! <key> \t <title> \t <total_views> \t <tag,tag,…> \t <popularity>
//! ```
//!
//! * Tags are comma-separated; `\` escapes commas, tabs, newlines and
//!   itself inside a tag.
//! * The popularity field is `-` (missing), `!b0,b1,…` (corrupt raw
//!   bytes) or `i0,i1,…` (a valid intensity vector).
//!
//! Readers accept any writer output byte-for-byte
//! ([`write()`](write())/[`read()`](read()) round-trip, property-tested
//! below).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DatasetError;
use crate::record::RawPopularity;

const MAGIC: &str = "#tagdist-dataset v1";

/// Serializes a dataset to the TSV format.
///
/// A `&mut` reference can be passed for `writer` (e.g. `&mut file`).
///
/// Every field streams straight into the (buffered) writer — no
/// per-video `String` assembly — so writing allocates O(1) regardless
/// of corpus size.
///
/// # Errors
///
/// Propagates any I/O failure from `writer`.
pub fn write<W: Write>(dataset: &Dataset, writer: W) -> Result<(), DatasetError> {
    let mut writer = BufWriter::new(writer);
    writeln!(writer, "{MAGIC} countries={}", dataset.country_count())?;
    for video in dataset.iter() {
        write_escaped(&mut writer, &video.key)?;
        writer.write_all(b"\t")?;
        write_escaped(&mut writer, &video.title)?;
        write!(writer, "\t{}\t", video.total_views)?;
        for (i, &tag) in video.tags.iter().enumerate() {
            if i > 0 {
                writer.write_all(b",")?;
            }
            write_escaped(&mut writer, dataset.tags().name(tag))?;
        }
        writer.write_all(b"\t")?;
        match &video.popularity {
            RawPopularity::Missing => writer.write_all(b"-")?,
            RawPopularity::Corrupt(bytes) => {
                writer.write_all(b"!")?;
                write_bytes_csv(&mut writer, bytes)?;
            }
            RawPopularity::Valid(p) => write_bytes_csv(&mut writer, p.as_slice())?,
        }
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(())
}

/// Streams [`escape`]d text: unescaped runs are written whole, escape
/// sequences as two-byte chunks, with no intermediate `String`.
fn write_escaped<W: Write>(writer: &mut W, s: &str) -> Result<(), DatasetError> {
    let mut rest = s;
    while let Some(pos) = rest.find(['\\', ',', '\t', '\n']) {
        writer.write_all(&rest.as_bytes()[..pos])?;
        let escaped: &[u8] = match rest.as_bytes()[pos] {
            b'\\' => b"\\\\",
            b',' => b"\\,",
            b'\t' => b"\\t",
            _ => b"\\n",
        };
        writer.write_all(escaped)?;
        rest = &rest[pos + 1..];
    }
    writer.write_all(rest.as_bytes())?;
    Ok(())
}

/// Streams a comma-separated decimal byte list.
fn write_bytes_csv<W: Write>(writer: &mut W, bytes: &[u8]) -> Result<(), DatasetError> {
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 {
            writer.write_all(b",")?;
        }
        write!(writer, "{b}")?;
    }
    Ok(())
}

/// Deserializes a dataset from the TSV format.
///
/// A `&mut` reference can be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// * [`DatasetError::Io`] on read failure.
/// * [`DatasetError::Parse`] on a malformed header or record line.
pub fn read<R: Read>(reader: R) -> Result<Dataset, DatasetError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    let (_, header) = lines.next().ok_or_else(|| DatasetError::Parse {
        line: 1,
        message: "empty input, expected header".into(),
    })?;
    let header = header?;
    let countries = parse_header(&header).ok_or_else(|| DatasetError::Parse {
        line: 1,
        message: format!("bad header {header:?}, expected `{MAGIC} countries=N`"),
    })?;

    let mut builder = DatasetBuilder::new(countries);
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let (key, title, views, tags, pop) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(k), Some(ti), Some(v), Some(t), Some(p), None) => (k, ti, v, t, p),
            _ => {
                return Err(DatasetError::Parse {
                    line: line_no,
                    message: "expected exactly 5 tab-separated fields".into(),
                })
            }
        };
        let key = unescape(key).ok_or_else(|| DatasetError::Parse {
            line: line_no,
            message: "bad escape in key".into(),
        })?;
        let title = unescape(title).ok_or_else(|| DatasetError::Parse {
            line: line_no,
            message: "bad escape in title".into(),
        })?;
        let total_views: u64 = views.parse().map_err(|_| DatasetError::Parse {
            line: line_no,
            message: format!("bad view count {views:?}"),
        })?;
        let tag_strings = split_tags(tags).ok_or_else(|| DatasetError::Parse {
            line: line_no,
            message: "bad escape in tags".into(),
        })?;
        let popularity = parse_popularity(pop, countries).ok_or_else(|| DatasetError::Parse {
            line: line_no,
            message: format!("bad popularity field {pop:?}"),
        })?;
        let tag_refs: Vec<&str> = tag_strings.iter().map(String::as_str).collect();
        builder.push_video_titled(&key, &title, total_views, &tag_refs, popularity);
    }
    Ok(builder.build())
}

fn parse_header(header: &str) -> Option<usize> {
    let rest = header.strip_prefix(MAGIC)?.trim();
    let n = rest.strip_prefix("countries=")?;
    n.parse().ok()
}

fn parse_popularity(field: &str, countries: usize) -> Option<RawPopularity> {
    if field == "-" {
        return Some(RawPopularity::Missing);
    }
    let (raw, _corrupt_marker) = match field.strip_prefix('!') {
        Some(rest) => (rest, true),
        None => (field, false),
    };
    let mut bytes = Vec::new();
    if !raw.is_empty() {
        for part in raw.split(',') {
            bytes.push(part.parse::<u8>().ok()?);
        }
    }
    // `decode` re-derives validity, so a `!` marker on well-formed
    // bytes and a plain encoding of corrupt bytes both converge to the
    // same classification.
    Some(RawPopularity::decode(bytes, countries))
}

/// Escapes a field for the TSV format: `\` escapes commas, tabs,
/// newlines and itself, so any string fits on one line in one column.
/// Public because the crawler's checkpoint format reuses the scheme
/// for frontier keys.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ',' => out.push_str("\\,"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence.
#[must_use]
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                ',' => out.push(','),
                't' => out.push('\t'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Splits a comma-separated tag list honouring `\,` escapes.
fn split_tags(field: &str) -> Option<Vec<String>> {
    if field.is_empty() {
        return Some(Vec::new());
    }
    let mut tags = Vec::new();
    let mut current = String::new();
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '\\' => current.push('\\'),
                ',' => current.push(','),
                't' => current.push('\t'),
                'n' => current.push('\n'),
                _ => return None,
            },
            ',' => {
                tags.push(core::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    tags.push(current);
    Some(tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RawPopularity;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_video_titled(
            "vid,with\tweird",
            "A title, with\tescapes",
            123,
            &["pop", "hip hop", "a,b"],
            RawPopularity::decode(vec![61, 0, 7], 3),
        );
        b.push_video("plain", 0, &[], RawPopularity::Missing);
        b.push_video_titled(
            "corrupt",
            "c",
            9,
            &["x"],
            RawPopularity::decode(vec![1, 2], 3),
        );
        b.build()
    }

    fn round_trip(d: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write(d, &mut buf).unwrap();
        read(&buf[..]).unwrap()
    }

    #[test]
    fn round_trips_records_and_tags() {
        let d = sample();
        let r = round_trip(&d);
        assert_eq!(r.len(), d.len());
        assert_eq!(r.country_count(), 3);
        for (a, b) in d.iter().zip(r.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.title, b.title);
            assert_eq!(a.total_views, b.total_views);
            assert_eq!(a.popularity, b.popularity);
            let a_tags: Vec<&str> = a.tags.iter().map(|&t| d.tags().name(t)).collect();
            let b_tags: Vec<&str> = b.tags.iter().map(|&t| r.tags().name(t)).collect();
            assert_eq!(a_tags, b_tags);
        }
    }

    #[test]
    fn written_bytes_are_pinned() {
        // Golden output: the streaming writer must keep emitting the
        // exact bytes the Vec-and-join writer produced.
        let mut buf = Vec::new();
        write(&sample(), &mut buf).unwrap();
        let expected = "#tagdist-dataset v1 countries=3\n\
                        vid\\,with\\tweird\tA title\\, with\\tescapes\t123\tpop,hip hop,a\\,b\t61,0,7\n\
                        plain\t\t0\t\t-\n\
                        corrupt\tc\t9\tx\t!1,2\n";
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
    }

    #[test]
    fn header_is_versioned() {
        let mut buf = Vec::new();
        write(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#tagdist-dataset v1 countries=3\n"));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read("not a header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 1, .. }));
        let err = read("".as_bytes()).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_records() {
        let base = "#tagdist-dataset v1 countries=2\n";
        for (bad, what) in [
            ("key\tt\t12\ttags", "too few fields"),
            ("key\tt\t12\ttags\tpop\textra", "too many fields"),
            ("key\tt\tNaN\ttags\t-", "bad views"),
            ("key\tt\t12\tt\t0,999", "pop value over u8"),
            ("key\tt\t12\tbad\\escape\t-", "bad tag escape"),
            ("key\tbad\\escape\t12\ttags\t-", "bad title escape"),
        ] {
            let input = format!("{base}{bad}\n");
            let err = read(input.as_bytes()).unwrap_err();
            assert!(
                matches!(err, DatasetError::Parse { line: 2, .. }),
                "{what}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_vectors_survive_round_trip() {
        let d = sample();
        let r = round_trip(&d);
        assert!(matches!(
            r.by_key("corrupt").unwrap().popularity,
            RawPopularity::Corrupt(_)
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "#tagdist-dataset v1 countries=1\n\nk\tt\t1\tx\t61\n\n";
        let d = read(input.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "a,b", "tab\there", "back\\slash", "new\nline", ""] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pop() -> impl Strategy<Value = RawPopularity> {
        prop_oneof![
            Just(RawPopularity::Missing),
            proptest::collection::vec(0u8..=255, 0..8).prop_map(|v| RawPopularity::decode(v, 4)),
            proptest::collection::vec(0u8..=61, 4..=4).prop_map(|v| RawPopularity::decode(v, 4)),
        ]
    }

    proptest! {
        #[test]
        fn any_dataset_round_trips(
            videos in proptest::collection::vec(
                ("[a-zA-Z0-9,\\\\\t ]{1,12}", "[a-zA-Z0-9,\\\\\t ]{0,16}",
                 0u64..1_000_000,
                 proptest::collection::vec("[a-z0-9 ,]{1,8}", 0..5),
                 arb_pop()),
                0..20
            )
        ) {
            let mut b = DatasetBuilder::new(4);
            for (key, title, views, tags, pop) in &videos {
                let refs: Vec<&str> = tags.iter().map(String::as_str).collect();
                b.push_video_titled(key, title, *views, &refs, pop.clone());
            }
            let d = b.build();
            let mut buf = Vec::new();
            write(&d, &mut buf).unwrap();
            let r = read(&buf[..]).unwrap();
            prop_assert_eq!(r.len(), d.len());
            for (a, b) in d.iter().zip(r.iter()) {
                prop_assert_eq!(&a.key, &b.key);
                prop_assert_eq!(&a.title, &b.title);
                prop_assert_eq!(a.total_views, b.total_views);
                prop_assert_eq!(&a.popularity, &b.popularity);
                prop_assert_eq!(a.tags.len(), b.tags.len());
            }
        }
    }
}
