//! Read-only memory mapping of dataset files, with no dependencies.
//!
//! [`Mmap::open`] maps a file into the address space so
//! [`decode_borrowed`](crate::binfmt::decode_borrowed) can serve a
//! `bin v1` corpus straight from the page cache: the kernel pages
//! bytes in on demand and the heap sees only the handful of section
//! descriptors, never the payload. On unix this is a direct
//! `unsafe extern "C"` binding to `mmap(2)`/`munmap(2)`; elsewhere it
//! degrades to one buffered `fs::read` with the identical API, so
//! callers never branch on platform.
//!
//! This and the serve layer's signal module
//! (`crates/serve/src/signal.rs`) are the only modules in the
//! workspace's checked crates that contain `unsafe` code, and the only
//! ones allowed to — the `unsafe-scope` pass of `cargo xtask check`
//! enforces both directions (see `crates/xtask/src/rules.rs`).
//!
//! # Safety
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the process can never
//! write through it, and writes by *this* process to the file are not
//! required to appear in it. Three obligations make the exposed
//! `&[u8]` sound, each discharged at the marked `SAFETY:` site:
//!
//! 1. **Validity** — `mmap` returns either `MAP_FAILED` (turned into
//!    an `io::Error`) or a pointer valid for exactly `len` bytes until
//!    `munmap`; [`Mmap`] calls `munmap` only in `Drop`, so the slice
//!    handed out through `Deref` can never outlive the mapping.
//! 2. **No zero-length maps** — POSIX leaves `mmap(len = 0)` to fail
//!    with `EINVAL`; empty files short-circuit to an empty slice and
//!    are never mapped (and never unmapped).
//! 3. **Aliasing** — the mapping is never exposed mutably, so `Send`
//!    and `Sync` are as safe as for any shared `&[u8]`. The one caveat
//!    inherent to *all* file mappings (the same one documented by the
//!    `memmap2` crate): if another process truncates or rewrites the
//!    file while it is mapped, reads may fault or observe torn bytes.
//!    The dataset tooling only ever replaces files by atomic rename,
//!    and the `bin v1` checksums detect torn content.

#![allow(unsafe_code)]

use std::fmt;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only mapping of a whole file (unix), or its buffered-read
/// stand-in (other platforms). Dereferences to `&[u8]`.
///
/// # Example
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// let map = tagdist_dataset::Mmap::open("corpus.bin")?;
/// let view = tagdist_dataset::binfmt::decode_borrowed(&map)
///     .expect("valid bin v1 image");
/// # let _ = view; Ok(())
/// # }
/// ```
pub struct Mmap {
    inner: imp::Map,
}

impl Mmap {
    /// Maps `path` read-only.
    ///
    /// An empty file yields an empty mapping without touching
    /// `mmap(2)` (which rejects zero-length maps).
    ///
    /// # Errors
    ///
    /// Any `open`, `metadata` or `mmap` failure, as an [`io::Error`].
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Mmap> {
        Ok(Mmap {
            inner: imp::Map::open(path.as_ref())?,
        })
    }

    /// Number of mapped bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.as_slice().len()
    }

    /// Returns `true` for a mapping of an empty file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mapped bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self.inner.as_slice()
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(unix)]
mod imp {
    //! The real `mmap(2)` binding. See the module-level `# Safety`
    //! section for the soundness argument each `SAFETY:` comment
    //! refers back to.

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;
    use std::ptr;

    // The stable subset of the POSIX mmap interface this module needs.
    // Values are identical across the unix targets the workspace
    // builds on (Linux, macOS, the BSDs).
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    // SAFETY: these signatures match POSIX `mmap(2)`/`munmap(2)`
    // exactly (libc links them on every unix target); declaring them
    // performs no operation by itself.
    unsafe extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `mmap`'s error sentinel (`(void *) -1`).
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    pub(super) struct Map {
        /// Base address; dangling (never dereferenced, never unmapped)
        /// when `len == 0`.
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never exposed mutably, so
    // sharing or sending it between threads is exactly as safe as
    // sharing a `&[u8]` (obligation 3 of the module safety argument).
    unsafe impl Send for Map {}
    // SAFETY: as above — read-only data is Sync.
    unsafe impl Sync for Map {}

    impl Map {
        pub(super) fn open(path: &Path) -> io::Result<Map> {
            let file = File::open(path)?;
            let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "file too large to map on this platform",
                )
            })?;
            if len == 0 {
                // Obligation 2: POSIX rejects zero-length mappings, so
                // empty files never reach mmap (and Drop never unmaps).
                return Ok(Map {
                    ptr: ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is open for reading for the duration of the
            // call and the arguments request a fresh PROT_READ,
            // MAP_PRIVATE mapping of len > 0 bytes at a kernel-chosen
            // address — nothing here can alias existing memory. The
            // fd may close right after: POSIX keeps mappings alive
            // independently of the descriptor.
            let ptr = unsafe {
                mmap(
                    ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: obligation 1 — `ptr` came from a successful mmap
            // of exactly `len` bytes, stays valid until the munmap in
            // Drop, and the returned slice's lifetime is tied to
            // `&self`, so it cannot outlive the mapping. The memory is
            // initialized (file-backed) and never written through this
            // process's mapping (PROT_READ).
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: `ptr`/`len` are exactly what mmap returned,
                // unmapped at most once (Drop runs once); a failure
                // leaks the mapping, which is safe.
                let _ = unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    //! Buffered-read fallback: same API, one heap buffer instead of a
    //! kernel mapping. No `unsafe` on this path.

    use std::io;
    use std::path::Path;

    pub(super) struct Map {
        data: Vec<u8>,
    }

    impl Map {
        pub(super) fn open(path: &Path) -> io::Result<Map> {
            Ok(Map {
                data: std::fs::read(path)?,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            &self.data
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tagdist-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.as_slice(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(&map[..], &[] as &[u8]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mmap::open(temp_path("does-not-exist")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn debug_reports_length() {
        let path = temp_path("debug");
        std::fs::write(&path, b"abc").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(format!("{map:?}"), "Mmap { len: 3 }");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
