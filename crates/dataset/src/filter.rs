//! The paper's §2 filtering step.
//!
//! > *“we filter out all videos containing no tags (6,736 videos), or
//! > with an incorrect or empty popularity vector. This filtering step
//! > results in a dataset with 691,349 videos, associated with 705,415
//! > unique tags, totaling 173,288,616,473 views.”*
//!
//! [`filter`] reproduces that step and reports the same accounting; the
//! output is a [`CleanDataset`] whose every record carries a
//! *validated, signal-bearing* [`PopularityVector`], so downstream
//! stages (reconstruction, tag aggregation) never re-check metadata.

use core::fmt;

use tagdist_geo::PopularityVector;

use crate::dataset::Dataset;
use crate::record::VideoId;
use crate::tag::{TagId, TagInterner};

/// A video that survived filtering: tags present, popularity valid.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanVideo {
    /// Id in the *original* dataset (stable across filtering so raw
    /// and clean views can be joined).
    pub id: VideoId,
    /// External platform key.
    pub key: String,
    /// Display title.
    pub title: String,
    /// Total worldwide views (the paper's `views(v)`).
    pub total_views: u64,
    /// Interned tags (non-empty).
    pub tags: Vec<TagId>,
    /// Validated, signal-bearing popularity vector (the paper's
    /// `pop(v)`).
    pub popularity: PopularityVector,
}

/// Accounting of the filtering step, mirroring §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterReport {
    /// Videos in the raw crawl (paper: 1,063,844).
    pub crawled: usize,
    /// Videos dropped for carrying no tags (paper: 6,736).
    pub no_tags: usize,
    /// Videos dropped for an incorrect or empty popularity vector.
    pub bad_popularity: usize,
    /// Videos kept (paper: 691,349).
    pub kept: usize,
}

impl FilterReport {
    /// Fraction of the crawl that survived filtering (paper: ≈ 65 %).
    pub fn keep_ratio(&self) -> f64 {
        if self.crawled == 0 {
            0.0
        } else {
            self.kept as f64 / self.crawled as f64
        }
    }
}

impl fmt::Display for FilterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crawled {} videos; dropped {} with no tags, {} with bad popularity; kept {} ({:.1}%)",
            self.crawled,
            self.no_tags,
            self.bad_popularity,
            self.kept,
            100.0 * self.keep_ratio()
        )
    }
}

/// The filtered dataset: the paper's 691,349-video working set.
#[derive(Debug, Clone)]
pub struct CleanDataset {
    videos: Vec<CleanVideo>,
    tags: TagInterner,
    tag_postings: Vec<Vec<usize>>,
    country_count: usize,
    report: FilterReport,
}

impl CleanDataset {
    /// Number of retained videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Returns `true` if filtering removed everything.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// World size the popularity vectors cover.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// The filtering accounting.
    pub fn report(&self) -> FilterReport {
        self.report
    }

    /// Iterates over retained videos.
    pub fn iter(&self) -> impl Iterator<Item = &CleanVideo> {
        self.videos.iter()
    }

    /// Retained video by position (0‥[`len`](CleanDataset::len)).
    pub fn get(&self, pos: usize) -> Option<&CleanVideo> {
        self.videos.get(pos)
    }

    /// Slice view of the retained videos, in position order.
    pub fn as_slice(&self) -> &[CleanVideo] {
        &self.videos
    }

    /// The shared tag interner (covers the *raw* vocabulary; tags used
    /// only by dropped videos have empty postings here).
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Positions (into [`iter`](CleanDataset::iter)/[`get`](CleanDataset::get))
    /// of retained videos carrying `tag` — Eq. 3's `videos(t)` on the
    /// clean set.
    pub fn videos_with_tag(&self, tag: TagId) -> &[usize] {
        self.tag_postings
            .get(tag.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct tags attached to at least one retained video
    /// (the paper's "705,415 unique tags").
    pub fn unique_tags(&self) -> usize {
        self.tag_postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Sum of views over retained videos (the paper's
    /// 173,288,616,473).
    pub fn total_views(&self) -> u128 {
        self.videos.iter().map(|v| v.total_views as u128).sum()
    }

    /// Most-viewed retained video (Fig. 1's subject), if any.
    pub fn most_viewed(&self) -> Option<&CleanVideo> {
        self.videos.iter().max_by_key(|v| v.total_views)
    }
}

impl core::ops::Index<usize> for CleanDataset {
    type Output = CleanVideo;

    /// Retained video by position, with `Vec` indexing semantics.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len()`; positions obtained from
    /// [`videos_with_tag`](CleanDataset::videos_with_tag) are always in
    /// range.
    fn index(&self, pos: usize) -> &CleanVideo {
        &self.videos[pos]
    }
}

/// Applies the paper's §2 filter to a raw crawl.
///
/// Videos with no tags are dropped first (and counted as `no_tags`
/// even if their popularity is also bad, matching the paper's
/// presentation order); remaining videos with a missing, corrupt or
/// all-zero popularity vector are dropped as `bad_popularity`.
pub fn filter(dataset: &Dataset) -> CleanDataset {
    let mut report = FilterReport {
        crawled: dataset.len(),
        ..FilterReport::default()
    };
    let mut videos = Vec::new();
    for record in dataset.iter() {
        if record.tags.is_empty() {
            report.no_tags += 1;
            continue;
        }
        let Some(pop) = record.popularity.usable() else {
            report.bad_popularity += 1;
            continue;
        };
        videos.push(CleanVideo {
            id: record.id,
            key: record.key.clone(),
            title: record.title.clone(),
            total_views: record.total_views,
            tags: record.tags.clone(),
            popularity: pop.clone(),
        });
    }
    report.kept = videos.len();

    let tags = dataset.tags().clone();
    let mut tag_postings = vec![Vec::new(); tags.len()];
    for (pos, video) in videos.iter().enumerate() {
        for &tag in &video.tags {
            tag_postings[tag.index()].push(pos);
        }
    }

    CleanDataset {
        videos,
        tags,
        tag_postings,
        country_count: dataset.country_count(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;

    fn build() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        // clean
        b.push_video("a", 100, &["pop"], RawPopularity::decode(vec![61, 0, 0], 3));
        // no tags
        b.push_video("b", 200, &[], RawPopularity::decode(vec![0, 61, 0], 3));
        // missing popularity
        b.push_video("c", 300, &["rock"], RawPopularity::Missing);
        // corrupt popularity (wrong length)
        b.push_video("d", 400, &["rock"], RawPopularity::decode(vec![61], 3));
        // empty (all-zero) popularity
        b.push_video("e", 500, &["jazz"], RawPopularity::decode(vec![0, 0, 0], 3));
        // no tags AND bad popularity → counted as no_tags
        b.push_video("f", 600, &[], RawPopularity::Missing);
        // clean, shares a tag
        b.push_video(
            "g",
            700,
            &["pop", "live"],
            RawPopularity::decode(vec![0, 0, 61], 3),
        );
        b.build()
    }

    #[test]
    fn report_matches_paper_accounting_rules() {
        let clean = filter(&build());
        let r = clean.report();
        assert_eq!(r.crawled, 7);
        assert_eq!(r.no_tags, 2);
        assert_eq!(r.bad_popularity, 3);
        assert_eq!(r.kept, 2);
        assert_eq!(r.crawled, r.no_tags + r.bad_popularity + r.kept);
        assert!((r.keep_ratio() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_videos_keep_original_ids() {
        let clean = filter(&build());
        let keys: Vec<&str> = clean.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys, vec!["a", "g"]);
        assert_eq!(clean.get(0).unwrap().id.index(), 0);
        assert_eq!(clean.get(1).unwrap().id.index(), 6);
    }

    #[test]
    fn unique_tags_counts_only_surviving_postings() {
        let clean = filter(&build());
        // "rock" and "jazz" only appear on dropped videos.
        assert_eq!(clean.unique_tags(), 2); // pop, live
        let rock = clean.tags().id("rock").unwrap();
        assert!(clean.videos_with_tag(rock).is_empty());
        let pop = clean.tags().id("pop").unwrap();
        assert_eq!(clean.videos_with_tag(pop), &[0, 1]);
    }

    #[test]
    fn totals_cover_retained_only() {
        let clean = filter(&build());
        assert_eq!(clean.total_views(), 800);
        assert_eq!(clean.most_viewed().unwrap().key, "g");
    }

    #[test]
    fn empty_dataset_filters_to_empty() {
        let clean = filter(&DatasetBuilder::new(3).build());
        assert!(clean.is_empty());
        assert_eq!(clean.report().keep_ratio(), 0.0);
        assert_eq!(clean.unique_tags(), 0);
    }

    #[test]
    fn report_display_is_informative() {
        let clean = filter(&build());
        let s = clean.report().to_string();
        assert!(s.contains("crawled 7"));
        assert!(s.contains("kept 2"));
    }
}
