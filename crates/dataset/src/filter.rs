//! The paper's §2 filtering step.
//!
//! > *“we filter out all videos containing no tags (6,736 videos), or
//! > with an incorrect or empty popularity vector. This filtering step
//! > results in a dataset with 691,349 videos, associated with 705,415
//! > unique tags, totaling 173,288,616,473 views.”*
//!
//! [`filter`] reproduces that step and reports the same accounting; the
//! output is a [`CleanDataset`] whose every record carries a
//! *validated, signal-bearing* popularity vector, so downstream stages
//! (reconstruction, tag aggregation) never re-check metadata.
//!
//! # Columnar storage
//!
//! `CleanDataset` stores its videos as flat columns, not as one struct
//! per video: offset-indexed key/title pools, a dense `u64` view
//! column, a CSR video→tag spine, a fixed-stride intensity block
//! (every retained popularity vector has exactly `country_count`
//! validated bytes), and a CSR tag→video postings spine. Filtering a
//! million videos is a dozen allocations instead of millions, and the
//! hot per-column accessors ([`views_column`](CleanDataset::views_column),
//! [`intensities_of`](CleanDataset::intensities_of), …) hand slices to
//! the reconstruction without any per-video indirection. [`CleanVideo`]
//! is a borrowed row view assembled on demand by
//! [`iter`](CleanDataset::iter)/[`get`](CleanDataset::get) for code
//! that wants record-shaped access.
//!
//! Two entry points build the same structure: [`filter`] from a
//! record-oriented [`Dataset`], and [`filter_columnar`] straight from
//! any [`ColumnarRead`] source (an owned
//! [`ColumnarDataset`](crate::columnar::ColumnarDataset) or a
//! zero-copy [`ColumnarView`](crate::binfmt::ColumnarView) over a
//! mapped file). Both visit videos in dataset order and apply the
//! identical predicate, so their outputs are equal field for field —
//! an invariant the proptest oracle below pins down.

use core::fmt;

use tagdist_geo::PopularityView;

use crate::columnar::{ColumnarRead, POP_VALID};
use crate::dataset::Dataset;
use crate::record::VideoId;
use crate::tag::{TagId, TagInterner};

/// A video that survived filtering: tags present, popularity valid.
///
/// This is a borrowed row view over [`CleanDataset`]'s columns — cheap
/// to copy, assembled on demand — with the same field names the old
/// owned struct had, so field-access call sites read identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanVideo<'a> {
    /// Id in the *original* dataset (stable across filtering so raw
    /// and clean views can be joined).
    pub id: VideoId,
    /// External platform key.
    pub key: &'a str,
    /// Display title.
    pub title: &'a str,
    /// Total worldwide views (the paper's `views(v)`).
    pub total_views: u64,
    /// Interned tags (non-empty).
    pub tags: &'a [TagId],
    /// Validated, signal-bearing popularity vector (the paper's
    /// `pop(v)`).
    pub popularity: PopularityView<'a>,
}

/// Accounting of the filtering step, mirroring §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterReport {
    /// Videos in the raw crawl (paper: 1,063,844).
    pub crawled: usize,
    /// Videos dropped for carrying no tags (paper: 6,736).
    pub no_tags: usize,
    /// Videos dropped for an incorrect or empty popularity vector.
    pub bad_popularity: usize,
    /// Videos kept (paper: 691,349).
    pub kept: usize,
}

impl FilterReport {
    /// Fraction of the crawl that survived filtering (paper: ≈ 65 %).
    pub fn keep_ratio(&self) -> f64 {
        if self.crawled == 0 {
            0.0
        } else {
            self.kept as f64 / self.crawled as f64
        }
    }
}

impl fmt::Display for FilterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crawled {} videos; dropped {} with no tags, {} with bad popularity; kept {} ({:.1}%)",
            self.crawled,
            self.no_tags,
            self.bad_popularity,
            self.kept,
            100.0 * self.keep_ratio()
        )
    }
}

/// The filtered dataset: the paper's 691,349-video working set,
/// stored columnar (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CleanDataset {
    /// Original dataset ids, one per retained video.
    ids: Vec<VideoId>,
    /// Byte offsets of each key in `key_pool`; length `kept + 1`.
    key_offsets: Vec<usize>,
    key_pool: String,
    /// Byte offsets of each title in `title_pool`; length `kept + 1`.
    title_offsets: Vec<usize>,
    title_pool: String,
    /// Worldwide view counts, one per retained video.
    views: Vec<u64>,
    /// CSR spine into `tag_ids`; length `kept + 1`.
    tag_rows: Vec<usize>,
    /// Flat per-video tag lists, in position order.
    tag_ids: Vec<TagId>,
    /// Fixed-stride intensity block: `kept × country_count` validated
    /// bytes (every retained vector has exactly `country_count`
    /// entries — the filter predicate guarantees it).
    intensities: Vec<u8>,
    tags: TagInterner,
    /// CSR spine into `postings`; length `tags.len() + 1`.
    posting_rows: Vec<usize>,
    /// Flat tag→video postings: positions of retained videos carrying
    /// each tag, in dataset order.
    postings: Vec<u32>,
    country_count: usize,
    report: FilterReport,
    /// Computed once at construction (printed per run; hot in report
    /// code).
    unique_tags: usize,
    /// Computed once at construction.
    total_views: u128,
}

impl CleanDataset {
    /// Number of retained videos.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` if filtering removed everything.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// World size the popularity vectors cover.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// The filtering accounting.
    pub fn report(&self) -> FilterReport {
        self.report
    }

    /// Iterates over retained videos as borrowed row views.
    pub fn iter(&self) -> impl Iterator<Item = CleanVideo<'_>> + '_ {
        (0..self.len()).map(move |pos| self.video(pos))
    }

    /// Retained video by position (0‥[`len`](CleanDataset::len)).
    pub fn get(&self, pos: usize) -> Option<CleanVideo<'_>> {
        (pos < self.len()).then(|| self.video(pos))
    }

    /// The shared tag interner (covers the *raw* vocabulary; tags used
    /// only by dropped videos have empty postings here).
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// Positions (into [`iter`](CleanDataset::iter)/[`get`](CleanDataset::get))
    /// of retained videos carrying `tag` — Eq. 3's `videos(t)` on the
    /// clean set, in dataset order.
    pub fn videos_with_tag(&self, tag: TagId) -> &[u32] {
        let t = tag.index();
        if t + 1 >= self.posting_rows.len() {
            return &[];
        }
        &self.postings[self.posting_rows[t]..self.posting_rows[t + 1]]
    }

    /// Number of distinct tags attached to at least one retained video
    /// (the paper's "705,415 unique tags"). Precomputed.
    pub fn unique_tags(&self) -> usize {
        self.unique_tags
    }

    /// Sum of views over retained videos (the paper's
    /// 173,288,616,473). Precomputed.
    pub fn total_views(&self) -> u128 {
        self.total_views
    }

    /// Most-viewed retained video (Fig. 1's subject), if any.
    pub fn most_viewed(&self) -> Option<CleanVideo<'_>> {
        // Scan with `>=` so ties resolve to the *last* maximal video,
        // exactly like the `Iterator::max_by_key` this replaced —
        // rendered reports must stay byte-identical.
        let mut best: Option<usize> = None;
        for (pos, &v) in self.views.iter().enumerate() {
            if best.is_none_or(|b| v >= self.views[b]) {
                best = Some(pos);
            }
        }
        best.map(|pos| self.video(pos))
    }

    /// Original dataset id of the retained video at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn id_of(&self, pos: usize) -> VideoId {
        self.ids[pos]
    }

    /// External platform key of the retained video at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn key_of(&self, pos: usize) -> &str {
        &self.key_pool[self.key_offsets[pos]..self.key_offsets[pos + 1]]
    }

    /// Display title of the retained video at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn title_of(&self, pos: usize) -> &str {
        &self.title_pool[self.title_offsets[pos]..self.title_offsets[pos + 1]]
    }

    /// The dense view-count column, one entry per retained video in
    /// position order — the natural slice for chunked parallel passes
    /// over the corpus.
    pub fn views_column(&self) -> &[u64] {
        &self.views
    }

    /// Interned tags of the retained video at `pos`, in upload order.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn tags_of(&self, pos: usize) -> &[TagId] {
        &self.tag_ids[self.tag_rows[pos]..self.tag_rows[pos + 1]]
    }

    /// Validated intensity bytes of the retained video at `pos`
    /// (exactly `country_count` entries).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn intensities_of(&self, pos: usize) -> &[u8] {
        let cc = self.country_count;
        assert!(pos < self.len(), "position {pos} out of range");
        &self.intensities[pos * cc..(pos + 1) * cc]
    }

    /// Assembles the borrowed row view at `pos` (callers guarantee
    /// `pos < len`).
    fn video(&self, pos: usize) -> CleanVideo<'_> {
        CleanVideo {
            id: self.ids[pos],
            key: self.key_of(pos),
            title: self.title_of(pos),
            total_views: self.views[pos],
            tags: self.tags_of(pos),
            popularity: PopularityView::from_validated(self.intensities_of(pos)),
        }
    }
}

/// Incremental column builder shared by [`filter`] and
/// [`filter_columnar`], so both paths construct the result through the
/// exact same sequence of column writes.
///
/// The streaming-ingest engine (`crate::ingest`) holds one of these
/// across batches and snapshots it with `clone().finish(..)`, which is
/// why the struct is `Clone` and crate-visible: a snapshot built that
/// way runs the identical column-write + counting-sort sequence a cold
/// [`filter`] of the concatenated corpus would, so the two are equal
/// field for field.
#[derive(Debug, Clone)]
pub(crate) struct CleanBuilder {
    country_count: usize,
    pub(crate) report: FilterReport,
    ids: Vec<VideoId>,
    key_offsets: Vec<usize>,
    key_pool: String,
    title_offsets: Vec<usize>,
    title_pool: String,
    pub(crate) views: Vec<u64>,
    pub(crate) tag_rows: Vec<usize>,
    pub(crate) tag_ids: Vec<TagId>,
    pub(crate) intensities: Vec<u8>,
    total_views: u128,
}

impl CleanBuilder {
    pub(crate) fn new(country_count: usize, crawled: usize) -> CleanBuilder {
        CleanBuilder {
            country_count,
            report: FilterReport {
                crawled,
                ..FilterReport::default()
            },
            ids: Vec::new(),
            key_offsets: vec![0],
            key_pool: String::new(),
            title_offsets: vec![0],
            title_pool: String::new(),
            views: Vec::new(),
            tag_rows: vec![0],
            tag_ids: Vec::new(),
            intensities: Vec::new(),
            total_views: 0,
        }
    }

    pub(crate) fn push<I>(
        &mut self,
        id: VideoId,
        key: &str,
        title: &str,
        views: u64,
        tags: I,
        pop: &[u8],
    ) where
        I: IntoIterator<Item = TagId>,
    {
        debug_assert_eq!(pop.len(), self.country_count);
        self.ids.push(id);
        self.key_pool.push_str(key);
        self.key_offsets.push(self.key_pool.len());
        self.title_pool.push_str(title);
        self.title_offsets.push(self.title_pool.len());
        self.views.push(views);
        self.tag_ids.extend(tags);
        self.tag_rows.push(self.tag_ids.len());
        self.intensities.extend_from_slice(pop);
        self.total_views += views as u128;
    }

    pub(crate) fn finish(mut self, tags: TagInterner) -> CleanDataset {
        self.report.kept = self.views.len();
        assert!(
            u32::try_from(self.views.len()).is_ok(),
            "dataset position overflows the u32 posting space"
        );

        // Invert the video→tag spine into tag→video postings with a
        // counting sort: per-tag counts, prefix sums, then a fill in
        // dataset order — so each posting list is sorted by position,
        // matching the old per-tag `Vec::push` order exactly.
        let tag_count = tags.len();
        let mut counts = vec![0usize; tag_count];
        for tag in &self.tag_ids {
            counts[tag.index()] += 1;
        }
        let unique_tags = counts.iter().filter(|&&c| c > 0).count();
        let mut posting_rows = vec![0usize; tag_count + 1];
        for (t, &c) in counts.iter().enumerate() {
            posting_rows[t + 1] = posting_rows[t] + c;
        }
        let mut cursor = posting_rows.clone();
        let mut postings = vec![0u32; self.tag_ids.len()];
        for pos in 0..self.views.len() {
            for tag in &self.tag_ids[self.tag_rows[pos]..self.tag_rows[pos + 1]] {
                postings[cursor[tag.index()]] = pos as u32;
                cursor[tag.index()] += 1;
            }
        }

        CleanDataset {
            ids: self.ids,
            key_offsets: self.key_offsets,
            key_pool: self.key_pool,
            title_offsets: self.title_offsets,
            title_pool: self.title_pool,
            views: self.views,
            tag_rows: self.tag_rows,
            tag_ids: self.tag_ids,
            intensities: self.intensities,
            tags,
            posting_rows,
            postings,
            country_count: self.country_count,
            report: self.report,
            unique_tags,
            total_views: self.total_views,
        }
    }
}

/// Applies the paper's §2 filter to a raw crawl.
///
/// Videos with no tags are dropped first (and counted as `no_tags`
/// even if their popularity is also bad, matching the paper's
/// presentation order); remaining videos with a missing, corrupt or
/// all-zero popularity vector are dropped as `bad_popularity`.
pub fn filter(dataset: &Dataset) -> CleanDataset {
    let mut b = CleanBuilder::new(dataset.country_count(), dataset.len());
    for record in dataset.iter() {
        if record.tags.is_empty() {
            b.report.no_tags += 1;
            continue;
        }
        let Some(pop) = record.popularity.usable() else {
            b.report.bad_popularity += 1;
            continue;
        };
        b.push(
            record.id,
            &record.key,
            &record.title,
            record.total_views,
            record.tags.iter().copied(),
            pop.as_slice(),
        );
    }
    b.finish(dataset.tags().clone())
}

/// Applies the paper's §2 filter directly to columnar storage — the
/// zero-copy path from a decoded (or memory-mapped) binary file to the
/// clean working set, skipping [`Dataset`] materialization entirely.
///
/// The predicate is the exact columnar restatement of [`filter`]'s:
/// an empty tag row is `no_tags`; a popularity that is not
/// `POP_VALID`-with-signal is `bad_popularity` (`POP_VALID` already
/// guarantees `country_count` in-range bytes — the decoder validated
/// the shape — so "usable" reduces to the sentinel plus a non-zero
/// byte). Output equals `filter(&src.to_dataset())` field for field.
pub fn filter_columnar<C: ColumnarRead>(src: &C) -> CleanDataset {
    let mut b = CleanBuilder::new(src.country_count(), src.len());
    for i in 0..src.len() {
        let tag_range = src.tag_range(i);
        if tag_range.is_empty() {
            b.report.no_tags += 1;
            continue;
        }
        let pop = src.pop_payload(i);
        if src.pop_kind(i) != POP_VALID || !pop.iter().any(|&v| v > 0) {
            b.report.bad_popularity += 1;
            continue;
        }
        b.push(
            VideoId::from_index(i),
            src.key(i),
            src.title(i),
            src.total_views(i),
            tag_range.map(|k| TagId::from_index(src.tag_id(k) as usize)),
            pop,
        );
    }
    let names: Vec<String> = (0..src.tag_count())
        .map(|t| src.tag_name(t).to_owned())
        .collect();
    b.finish(TagInterner::from_names(names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarDataset;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;

    fn build() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        // clean
        b.push_video("a", 100, &["pop"], RawPopularity::decode(vec![61, 0, 0], 3));
        // no tags
        b.push_video("b", 200, &[], RawPopularity::decode(vec![0, 61, 0], 3));
        // missing popularity
        b.push_video("c", 300, &["rock"], RawPopularity::Missing);
        // corrupt popularity (wrong length)
        b.push_video("d", 400, &["rock"], RawPopularity::decode(vec![61], 3));
        // empty (all-zero) popularity
        b.push_video("e", 500, &["jazz"], RawPopularity::decode(vec![0, 0, 0], 3));
        // no tags AND bad popularity → counted as no_tags
        b.push_video("f", 600, &[], RawPopularity::Missing);
        // clean, shares a tag
        b.push_video(
            "g",
            700,
            &["pop", "live"],
            RawPopularity::decode(vec![0, 0, 61], 3),
        );
        b.build()
    }

    #[test]
    fn report_matches_paper_accounting_rules() {
        let clean = filter(&build());
        let r = clean.report();
        assert_eq!(r.crawled, 7);
        assert_eq!(r.no_tags, 2);
        assert_eq!(r.bad_popularity, 3);
        assert_eq!(r.kept, 2);
        assert_eq!(r.crawled, r.no_tags + r.bad_popularity + r.kept);
        assert!((r.keep_ratio() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn clean_videos_keep_original_ids() {
        let clean = filter(&build());
        let keys: Vec<&str> = clean.iter().map(|v| v.key).collect();
        assert_eq!(keys, vec!["a", "g"]);
        assert_eq!(clean.get(0).unwrap().id.index(), 0);
        assert_eq!(clean.get(1).unwrap().id.index(), 6);
        assert_eq!(clean.id_of(1).index(), 6);
        assert!(clean.get(2).is_none());
    }

    #[test]
    fn unique_tags_counts_only_surviving_postings() {
        let clean = filter(&build());
        // "rock" and "jazz" only appear on dropped videos.
        assert_eq!(clean.unique_tags(), 2); // pop, live
        let rock = clean.tags().id("rock").unwrap();
        assert!(clean.videos_with_tag(rock).is_empty());
        let pop = clean.tags().id("pop").unwrap();
        assert_eq!(clean.videos_with_tag(pop), &[0, 1]);
    }

    #[test]
    fn totals_cover_retained_only() {
        let clean = filter(&build());
        assert_eq!(clean.total_views(), 800);
        assert_eq!(clean.most_viewed().unwrap().key, "g");
    }

    #[test]
    fn most_viewed_breaks_ties_like_max_by_key() {
        // `Iterator::max_by_key` returns the *last* maximal element;
        // Fig. 1 report bytes depend on replicating that.
        let mut b = DatasetBuilder::new(2);
        b.push_video("first", 9, &["t"], RawPopularity::decode(vec![61, 0], 2));
        b.push_video("second", 9, &["t"], RawPopularity::decode(vec![0, 61], 2));
        let clean = filter(&b.build());
        assert_eq!(clean.most_viewed().unwrap().key, "second");
    }

    #[test]
    fn columnar_accessors_match_the_row_views() {
        let clean = filter(&build());
        assert_eq!(clean.views_column(), &[100, 700]);
        for (pos, v) in clean.iter().enumerate() {
            assert_eq!(clean.key_of(pos), v.key);
            assert_eq!(clean.title_of(pos), v.title);
            assert_eq!(clean.views_column()[pos], v.total_views);
            assert_eq!(clean.tags_of(pos), v.tags);
            assert_eq!(clean.intensities_of(pos), v.popularity.as_slice());
        }
    }

    #[test]
    fn empty_dataset_filters_to_empty() {
        let clean = filter(&DatasetBuilder::new(3).build());
        assert!(clean.is_empty());
        assert_eq!(clean.report().keep_ratio(), 0.0);
        assert_eq!(clean.unique_tags(), 0);
        assert!(clean.most_viewed().is_none());
    }

    #[test]
    fn report_display_is_informative() {
        let clean = filter(&build());
        let s = clean.report().to_string();
        assert!(s.contains("crawled 7"));
        assert!(s.contains("kept 2"));
    }

    #[test]
    fn filter_columnar_equals_filter_via_records() {
        let d = build();
        let c = ColumnarDataset::from_dataset(&d).unwrap();
        let via_records = filter(&c.to_dataset());
        let via_columns = filter_columnar(&c);
        assert_eq!(via_records, via_columns);
        assert_eq!(via_columns.report(), filter(&d).report());
    }

    #[test]
    fn filter_columnar_on_empty_input() {
        let c = ColumnarDataset::from_dataset(&DatasetBuilder::new(4).build()).unwrap();
        let clean = filter_columnar(&c);
        assert!(clean.is_empty());
        assert_eq!(clean.country_count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::columnar::ColumnarDataset;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;
    use proptest::prelude::*;

    proptest! {
        /// The tentpole oracle: `filter(columnar.to_dataset())` and
        /// `filter_columnar(columnar)` agree field for field — columns,
        /// postings order, interner and `FilterReport` counts — on
        /// random corpora mixing every popularity shape.
        #[test]
        fn filter_columnar_matches_record_path(
            specs in proptest::collection::vec(
                (
                    0u64..1_000_000,
                    0usize..5,
                    prop_oneof![
                        Just(None),                                        // missing
                        proptest::collection::vec(0u8..=61, 3).prop_map(Some),  // valid shape
                        proptest::collection::vec(0u8..=255, 0..6).prop_map(Some), // maybe corrupt
                    ],
                ),
                0..40
            )
        ) {
            let mut b = DatasetBuilder::new(3);
            for (i, (views, tag_seed, raw)) in specs.iter().enumerate() {
                let tags: Vec<String> =
                    (0..*tag_seed).map(|t| format!("t{}", (i + t) % 11)).collect();
                let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
                let pop = match raw {
                    None => RawPopularity::Missing,
                    Some(bytes) => RawPopularity::decode(bytes.clone(), 3),
                };
                b.push_video(&format!("v{i}"), *views, &tag_refs, pop);
            }
            let columnar = ColumnarDataset::from_dataset(&b.build()).unwrap();
            let via_records = filter(&columnar.to_dataset());
            let via_columns = filter_columnar(&columnar);
            prop_assert_eq!(via_records.report(), via_columns.report());
            prop_assert_eq!(&via_records, &via_columns);
        }
    }
}
