//! The `tagdist-dataset bin v1` on-disk binary columnar format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "#tagdist-dataset bin v1\n"          ASCII magic line
//! u32 country_count
//! u32 video_count
//! u32 tag_count
//! u32 section_count                    12 in v1
//! section table, one 28-byte entry per section:
//!     u32 id                           SEC_* constant, ascending
//!     u64 offset                       from start of payload region
//!     u64 len                          section byte length
//!     u64 checksum                     FNV-1a 64 over the bytes
//! payload: the section bytes, concatenated in table order
//! ```
//!
//! | id | section          | contents                                |
//! |----|------------------|-----------------------------------------|
//! | 1  | key offsets      | `(n+1) × u32` into section 2            |
//! | 2  | key bytes        | UTF-8 pool of video keys                |
//! | 3  | title offsets    | `(n+1) × u32` into section 4            |
//! | 4  | title bytes      | UTF-8 pool of titles                    |
//! | 5  | total views      | `n × u64`                               |
//! | 6  | tag spine        | `(n+1) × u32` CSR rows into section 7   |
//! | 7  | tag ids          | flat `u32` per-video tag lists          |
//! | 8  | popularity kind  | `n × u8` `POP_*` sentinels              |
//! | 9  | pop offsets      | `(n+1) × u32` into section 10           |
//! | 10 | pop bytes        | raw popularity payloads                 |
//! | 11 | tag-name offsets | `(t+1) × u32` into section 12           |
//! | 12 | tag-name bytes   | UTF-8 pool of interned tag names        |
//!
//! The magic shares the `#tagdist-dataset ` prefix with the TSV header
//! so one 24-byte sniff distinguishes the two (see
//! [`format`](crate::format)). Encoding is deterministic — the same
//! dataset always produces byte-identical files — because every column
//! is emitted in dense id order and the section table is fixed.
//!
//! Decoding reads the whole input once, verifies each section's
//! checksum, then converts each section into exactly one typed column
//! (`chunks_exact` + `from_le_bytes`; no `unsafe`). Allocation count
//! is O(sections), never O(videos). All cross-section invariants
//! (monotone offsets, UTF-8 boundaries, tag-id bounds, popularity
//! shapes) are validated up front so [`ColumnarDataset`] accessors can
//! slice without further checks.

use std::io::{Read, Write};

use crate::columnar::{ColumnarDataset, POP_CORRUPT, POP_MISSING, POP_VALID};
use crate::error::DatasetError;

/// First bytes of every binary dataset file.
pub const MAGIC: &[u8] = b"#tagdist-dataset bin v1\n";

/// Section ids, in file order.
const SECTION_IDS: [u32; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash, the section checksum function.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn format_err(message: impl Into<String>) -> DatasetError {
    DatasetError::Format {
        message: message.into(),
    }
}

fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u64s_to_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bytes_to_u32s(bytes: &[u8], what: &str) -> Result<Vec<u32>, DatasetError> {
    if bytes.len() % 4 != 0 {
        return Err(format_err(format!(
            "section {what}: length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn bytes_to_u64s(bytes: &[u8], what: &str) -> Result<Vec<u64>, DatasetError> {
    if bytes.len() % 8 != 0 {
        return Err(format_err(format!(
            "section {what}: length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Serializes a columnar dataset to the binary format.
///
/// Deterministic: the same dataset produces byte-identical output.
///
/// # Errors
///
/// Propagates any I/O failure from `writer`.
pub fn write<W: Write>(dataset: &ColumnarDataset, mut writer: W) -> Result<(), DatasetError> {
    let sections: [Vec<u8>; 12] = [
        u32s_to_bytes(&dataset.key_offsets),
        dataset.key_bytes.as_bytes().to_vec(),
        u32s_to_bytes(&dataset.title_offsets),
        dataset.title_bytes.as_bytes().to_vec(),
        u64s_to_bytes(&dataset.total_views),
        u32s_to_bytes(&dataset.tag_rows),
        u32s_to_bytes(&dataset.tag_ids),
        dataset.pop_kind.clone(),
        u32s_to_bytes(&dataset.pop_offsets),
        dataset.pop_bytes.clone(),
        u32s_to_bytes(&dataset.tagname_offsets),
        dataset.tagname_bytes.as_bytes().to_vec(),
    ];

    writer.write_all(MAGIC)?;
    writer.write_all(&dataset.country_count.to_le_bytes())?;
    let video_count = u32::try_from(dataset.len())
        .map_err(|_| format_err(format!("video count {} overflows u32", dataset.len())))?;
    writer.write_all(&video_count.to_le_bytes())?;
    let tag_count = u32::try_from(dataset.tag_count())
        .map_err(|_| format_err(format!("tag count {} overflows u32", dataset.tag_count())))?;
    writer.write_all(&tag_count.to_le_bytes())?;
    writer.write_all(&u32::try_from(SECTION_IDS.len()).unwrap_or(0).to_le_bytes())?;

    let mut offset = 0u64;
    for (id, bytes) in SECTION_IDS.iter().zip(&sections) {
        writer.write_all(&id.to_le_bytes())?;
        writer.write_all(&offset.to_le_bytes())?;
        writer.write_all(&(bytes.len() as u64).to_le_bytes())?;
        writer.write_all(&fnv1a(bytes).to_le_bytes())?;
        offset += bytes.len() as u64;
    }
    for bytes in &sections {
        writer.write_all(bytes)?;
    }
    Ok(())
}

/// A little-endian reader over the header region.
struct Header<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Header<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DatasetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format_err(format!("truncated header: missing {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, DatasetError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DatasetError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// One parsed section-table entry.
struct Section {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Deserializes a columnar dataset from a full in-memory image.
///
/// # Errors
///
/// * [`DatasetError::Format`] on bad magic, a truncated header or
///   payload, an out-of-order section table, or any column invariant
///   violation.
/// * [`DatasetError::Checksum`] when a section's recorded FNV-1a hash
///   does not match its bytes.
pub fn decode(buf: &[u8]) -> Result<ColumnarDataset, DatasetError> {
    let body = buf
        .strip_prefix(MAGIC)
        .ok_or_else(|| format_err("bad magic: not a `#tagdist-dataset bin v1` file"))?;
    let mut h = Header { buf: body, pos: 0 };
    let country_count = h.u32("country count")?;
    let video_count = h.u32("video count")? as usize;
    let tag_count = h.u32("tag count")? as usize;
    let section_count = h.u32("section count")? as usize;
    if section_count != SECTION_IDS.len() {
        return Err(format_err(format!(
            "expected {} sections, header declares {section_count}",
            SECTION_IDS.len()
        )));
    }

    let mut sections = Vec::with_capacity(section_count);
    for expected_id in SECTION_IDS {
        let id = h.u32("section id")?;
        if id != expected_id {
            return Err(format_err(format!(
                "section table out of order: expected id {expected_id}, found {id}"
            )));
        }
        sections.push(Section {
            id,
            offset: h.u64("section offset")?,
            len: h.u64("section length")?,
            checksum: h.u64("section checksum")?,
        });
    }

    let payload = &body[h.pos..];
    let mut slices = Vec::with_capacity(section_count);
    let mut expected_offset = 0u64;
    for s in &sections {
        if s.offset != expected_offset {
            return Err(format_err(format!(
                "section {}: offset {} does not follow the previous section (expected {})",
                s.id, s.offset, expected_offset
            )));
        }
        let start = usize::try_from(s.offset)
            .map_err(|_| format_err(format!("section {}: offset overflows usize", s.id)))?;
        let end = usize::try_from(s.offset + s.len)
            .ok()
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| {
                format_err(format!(
                    "section {}: truncated payload ({} bytes needed, {} available)",
                    s.id,
                    s.offset + s.len,
                    payload.len()
                ))
            })?;
        let bytes = &payload[start..end];
        let actual = fnv1a(bytes);
        if actual != s.checksum {
            return Err(DatasetError::Checksum {
                section: s.id,
                expected: s.checksum,
                actual,
            });
        }
        slices.push(bytes);
        expected_offset += s.len;
    }
    if usize::try_from(expected_offset).ok() != Some(payload.len()) {
        return Err(format_err(format!(
            "{} trailing payload byte(s) after the last section",
            payload.len() as u64 - expected_offset
        )));
    }

    let key_offsets = bytes_to_u32s(slices[0], "key offsets")?;
    let key_bytes = String::from_utf8(slices[1].to_vec())
        .map_err(|_| format_err("key pool is not valid UTF-8"))?;
    let title_offsets = bytes_to_u32s(slices[2], "title offsets")?;
    let title_bytes = String::from_utf8(slices[3].to_vec())
        .map_err(|_| format_err("title pool is not valid UTF-8"))?;
    let total_views = bytes_to_u64s(slices[4], "total views")?;
    let tag_rows = bytes_to_u32s(slices[5], "tag spine")?;
    let tag_ids = bytes_to_u32s(slices[6], "tag ids")?;
    let pop_kind = slices[7].to_vec();
    let pop_offsets = bytes_to_u32s(slices[8], "pop offsets")?;
    let pop_bytes = slices[9].to_vec();
    let tagname_offsets = bytes_to_u32s(slices[10], "tag-name offsets")?;
    let tagname_bytes = String::from_utf8(slices[11].to_vec())
        .map_err(|_| format_err("tag-name pool is not valid UTF-8"))?;

    check_offsets(&key_offsets, video_count, key_bytes.len(), "key offsets")?;
    check_boundaries(&key_offsets, &key_bytes, "key offsets")?;
    check_offsets(
        &title_offsets,
        video_count,
        title_bytes.len(),
        "title offsets",
    )?;
    check_boundaries(&title_offsets, &title_bytes, "title offsets")?;
    if total_views.len() != video_count {
        return Err(format_err(format!(
            "total views: {} entries for {video_count} video(s)",
            total_views.len()
        )));
    }
    check_offsets(&tag_rows, video_count, tag_ids.len(), "tag spine")?;
    if let Some(&bad) = tag_ids.iter().find(|&&t| t as usize >= tag_count) {
        return Err(format_err(format!(
            "tag id {bad} out of range (tag count {tag_count})"
        )));
    }
    if pop_kind.len() != video_count {
        return Err(format_err(format!(
            "popularity kinds: {} entries for {video_count} video(s)",
            pop_kind.len()
        )));
    }
    check_offsets(&pop_offsets, video_count, pop_bytes.len(), "pop offsets")?;
    for (i, &kind) in pop_kind.iter().enumerate() {
        let len = (pop_offsets[i + 1] - pop_offsets[i]) as usize;
        match kind {
            POP_MISSING if len != 0 => {
                return Err(format_err(format!(
                    "video {i}: missing popularity carries {len} payload byte(s)"
                )));
            }
            POP_VALID => {
                if len != country_count as usize {
                    return Err(format_err(format!(
                        "video {i}: valid popularity has {len} byte(s), expected {country_count}"
                    )));
                }
                let payload = &pop_bytes[pop_offsets[i] as usize..pop_offsets[i + 1] as usize];
                if let Some(&bad) = payload.iter().find(|&&b| b > 61) {
                    return Err(format_err(format!(
                        "video {i}: valid popularity intensity {bad} exceeds 61"
                    )));
                }
            }
            POP_MISSING | POP_CORRUPT => {}
            other => {
                return Err(format_err(format!(
                    "video {i}: unknown popularity kind {other}"
                )));
            }
        }
    }
    check_offsets(
        &tagname_offsets,
        tag_count,
        tagname_bytes.len(),
        "tag-name offsets",
    )?;
    check_boundaries(&tagname_offsets, &tagname_bytes, "tag-name offsets")?;

    Ok(ColumnarDataset {
        country_count,
        key_offsets,
        key_bytes,
        title_offsets,
        title_bytes,
        total_views,
        tag_rows,
        tag_ids,
        pop_kind,
        pop_offsets,
        pop_bytes,
        tagname_offsets,
        tagname_bytes,
    })
}

/// Deserializes from a reader (one `read_to_end` then [`decode`]).
///
/// # Errors
///
/// As for [`decode`], plus [`DatasetError::Io`] on read failure.
pub fn read<R: Read>(mut reader: R) -> Result<ColumnarDataset, DatasetError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    decode(&buf)
}

/// Validates an offset column: `count + 1` entries, monotone, starting
/// at 0 and ending at the pool length.
fn check_offsets(
    offsets: &[u32],
    count: usize,
    pool_len: usize,
    what: &str,
) -> Result<(), DatasetError> {
    if offsets.len() != count + 1 {
        return Err(format_err(format!(
            "{what}: {} entries for {count} row(s) (need {})",
            offsets.len(),
            count + 1
        )));
    }
    if offsets.first() != Some(&0) {
        return Err(format_err(format!("{what}: first offset is not 0")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(format_err(format!("{what}: offsets are not monotone")));
    }
    if offsets.last().map(|&o| o as usize) != Some(pool_len) {
        return Err(format_err(format!(
            "{what}: last offset does not match the pool length {pool_len}"
        )));
    }
    Ok(())
}

/// Validates that every string-pool offset falls on a UTF-8 character
/// boundary, so accessors can slice without panicking.
fn check_boundaries(offsets: &[u32], pool: &str, what: &str) -> Result<(), DatasetError> {
    if let Some(&bad) = offsets
        .iter()
        .find(|&&o| !pool.is_char_boundary(o as usize))
    {
        return Err(format_err(format!(
            "{what}: offset {bad} splits a UTF-8 character"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarDataset;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;
    use crate::Dataset;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_video_titled(
            "vid,weird\tkey",
            "Ünïcödé title",
            123,
            &["pop", "hip hop", "a,b"],
            RawPopularity::decode(vec![61, 0, 7], 3),
        );
        b.push_video("plain", 0, &[], RawPopularity::Missing);
        b.push_video_titled(
            "corrupt",
            "c",
            9,
            &["x", "pop"],
            RawPopularity::decode(vec![1, 2], 3),
        );
        b.build()
    }

    fn encode(d: &Dataset) -> Vec<u8> {
        let mut buf = Vec::new();
        write(&ColumnarDataset::from_dataset(d).unwrap(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trips_byte_exactly() {
        let d = sample();
        let c = ColumnarDataset::from_dataset(&d).unwrap();
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let r = decode(&buf).unwrap();
        assert_eq!(r, c);
        // Re-encode of the decoded dataset reproduces the bytes.
        let mut again = Vec::new();
        write(&r, &mut again).unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn encode_is_deterministic() {
        let d = sample();
        assert_eq!(encode(&d), encode(&d));
    }

    #[test]
    fn magic_shares_the_sniffable_prefix() {
        assert!(MAGIC.starts_with(b"#tagdist-dataset "));
        let buf = encode(&sample());
        assert!(buf.starts_with(MAGIC));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"#tagdist-dataset v1 countries=3\n").unwrap_err();
        assert!(matches!(err, DatasetError::Format { .. }), "{err}");
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let buf = encode(&sample());
        // Chopping the file anywhere must produce an error, never a
        // panic or a silently short dataset.
        for cut in 0..buf.len() {
            let err = decode(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DatasetError::Format { .. } | DatasetError::Checksum { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn detects_payload_corruption_via_checksum() {
        let mut buf = encode(&sample());
        // Flip a byte in the middle of the payload (past the header).
        let tamper_at = buf.len() - 4;
        buf[tamper_at] ^= 0xff;
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, DatasetError::Checksum { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = encode(&sample());
        buf.extend_from_slice(b"junk");
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_tag_ids() {
        let d = sample();
        let mut c = ColumnarDataset::from_dataset(&d).unwrap();
        if let Some(first) = c.tag_ids.first_mut() {
            *first = 10_000;
        }
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("tag id"), "{err}");
    }

    #[test]
    fn rejects_invalid_valid_popularity() {
        let d = sample();
        let mut c = ColumnarDataset::from_dataset(&d).unwrap();
        // Claim the corrupt row (wrong length) is valid.
        c.pop_kind[2] = POP_VALID;
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("valid popularity"), "{err}");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = DatasetBuilder::new(60).build();
        let buf = encode(&d);
        let r = decode(&buf).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.country_count(), 60);
        assert_eq!(r.tag_count(), 0);
    }
}
