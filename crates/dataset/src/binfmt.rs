//! The `tagdist-dataset bin v1` on-disk binary columnar format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "#tagdist-dataset bin v1\n"          ASCII magic line
//! u32 country_count
//! u32 video_count
//! u32 tag_count
//! u32 section_count                    12 in v1
//! section table, one 28-byte entry per section:
//!     u32 id                           SEC_* constant, ascending
//!     u64 offset                       from start of payload region
//!     u64 len                          section byte length
//!     u64 checksum                     FNV-1a 64 over the bytes
//! payload: the section bytes, concatenated in table order
//! ```
//!
//! | id | section          | contents                                |
//! |----|------------------|-----------------------------------------|
//! | 1  | key offsets      | `(n+1) × u32` into section 2            |
//! | 2  | key bytes        | UTF-8 pool of video keys                |
//! | 3  | title offsets    | `(n+1) × u32` into section 4            |
//! | 4  | title bytes      | UTF-8 pool of titles                    |
//! | 5  | total views      | `n × u64`                               |
//! | 6  | tag spine        | `(n+1) × u32` CSR rows into section 7   |
//! | 7  | tag ids          | flat `u32` per-video tag lists          |
//! | 8  | popularity kind  | `n × u8` `POP_*` sentinels              |
//! | 9  | pop offsets      | `(n+1) × u32` into section 10           |
//! | 10 | pop bytes        | raw popularity payloads                 |
//! | 11 | tag-name offsets | `(t+1) × u32` into section 12           |
//! | 12 | tag-name bytes   | UTF-8 pool of interned tag names        |
//!
//! The magic shares the `#tagdist-dataset ` prefix with the TSV header
//! so one 24-byte sniff distinguishes the two (see
//! [`format`](crate::format)). Encoding is deterministic — the same
//! dataset always produces byte-identical files — because every column
//! is emitted in dense id order and the section table is fixed.
//!
//! Decoding has one validation path with two exits.
//! [`decode_borrowed`] walks the image once, verifies every section
//! checksum and every cross-section invariant (monotone offsets,
//! UTF-8 boundaries, tag-id bounds, popularity shapes), and returns a
//! [`ColumnarView`] whose sections *borrow* the input — zero copies,
//! which over an [`Mmap`](crate::mmap::Mmap) makes loading a
//! page-cache-speed operation. [`decode`] is `decode_borrowed` +
//! [`ColumnarView::to_owned`]: one allocation per section
//! (`chunks_exact` + `from_le_bytes`; no `unsafe`), so the owned
//! allocation count is O(sections), never O(videos). Because sections
//! are concatenated without padding, numeric sections are unaligned in
//! the file; the borrowed view keeps them as `&[u8]` and decodes each
//! access with `from_le_bytes` instead of transmuting.

use std::io::{Read, Write};

use crate::columnar::{ColumnarDataset, ColumnarRead, POP_CORRUPT, POP_MISSING, POP_VALID};
use crate::error::DatasetError;

/// First bytes of every binary dataset file.
pub const MAGIC: &[u8] = b"#tagdist-dataset bin v1\n";

/// Section ids, in file order.
const SECTION_IDS: [u32; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash, the section checksum function.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn format_err(message: impl Into<String>) -> DatasetError {
    DatasetError::Format {
        message: message.into(),
    }
}

fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u64s_to_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serializes a columnar dataset to the binary format.
///
/// Deterministic: the same dataset produces byte-identical output.
///
/// # Errors
///
/// Propagates any I/O failure from `writer`.
pub fn write<W: Write>(dataset: &ColumnarDataset, mut writer: W) -> Result<(), DatasetError> {
    let sections: [Vec<u8>; 12] = [
        u32s_to_bytes(&dataset.key_offsets),
        dataset.key_bytes.as_bytes().to_vec(),
        u32s_to_bytes(&dataset.title_offsets),
        dataset.title_bytes.as_bytes().to_vec(),
        u64s_to_bytes(&dataset.total_views),
        u32s_to_bytes(&dataset.tag_rows),
        u32s_to_bytes(&dataset.tag_ids),
        dataset.pop_kind.clone(),
        u32s_to_bytes(&dataset.pop_offsets),
        dataset.pop_bytes.clone(),
        u32s_to_bytes(&dataset.tagname_offsets),
        dataset.tagname_bytes.as_bytes().to_vec(),
    ];

    writer.write_all(MAGIC)?;
    writer.write_all(&dataset.country_count.to_le_bytes())?;
    let video_count = u32::try_from(dataset.len())
        .map_err(|_| format_err(format!("video count {} overflows u32", dataset.len())))?;
    writer.write_all(&video_count.to_le_bytes())?;
    let tag_count = u32::try_from(dataset.tag_count())
        .map_err(|_| format_err(format!("tag count {} overflows u32", dataset.tag_count())))?;
    writer.write_all(&tag_count.to_le_bytes())?;
    writer.write_all(&u32::try_from(SECTION_IDS.len()).unwrap_or(0).to_le_bytes())?;

    let mut offset = 0u64;
    for (id, bytes) in SECTION_IDS.iter().zip(&sections) {
        writer.write_all(&id.to_le_bytes())?;
        writer.write_all(&offset.to_le_bytes())?;
        writer.write_all(&(bytes.len() as u64).to_le_bytes())?;
        writer.write_all(&fnv1a(bytes).to_le_bytes())?;
        offset += bytes.len() as u64;
    }
    for bytes in &sections {
        writer.write_all(bytes)?;
    }
    Ok(())
}

/// A little-endian reader over the header region.
struct Header<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Header<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DatasetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format_err(format!("truncated header: missing {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, DatasetError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DatasetError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// One parsed section-table entry.
struct Section {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Reads the `idx`-th little-endian `u32` of a raw section slice.
///
/// Sections are concatenated without padding, so numeric sections are
/// in general *unaligned* — borrowed columns therefore stay `&[u8]`
/// and every access decodes through `from_le_bytes` (free on the
/// little-endian targets this runs on; no transmute, no `unsafe`).
#[inline]
fn u32_at(bytes: &[u8], idx: usize) -> u32 {
    let o = idx * 4;
    u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
}

/// Reads the `idx`-th little-endian `u64` of a raw section slice.
#[inline]
fn u64_at(bytes: &[u8], idx: usize) -> u64 {
    let o = idx * 8;
    u64::from_le_bytes([
        bytes[o],
        bytes[o + 1],
        bytes[o + 2],
        bytes[o + 3],
        bytes[o + 4],
        bytes[o + 5],
        bytes[o + 6],
        bytes[o + 7],
    ])
}

/// A fully *validated* columnar dataset whose sections are borrowed
/// from the undecoded file image — the zero-copy counterpart of
/// [`ColumnarDataset`].
///
/// Produced by [`decode_borrowed`], typically over a memory-mapped
/// file ([`Mmap`](crate::mmap::Mmap)): headers, checksums and every
/// column invariant are verified up front exactly as for the owned
/// decode, but the section bytes themselves stay where they are.
/// String pools are held as checked `&str`; fixed-width integer
/// sections stay raw `&[u8]` (they are unaligned in the file) and are
/// decoded per access with `from_le_bytes`.
///
/// Implements [`ColumnarRead`], so
/// [`filter_columnar`](crate::filter::filter_columnar) and friends
/// consume a mapped file without a single per-video copy;
/// [`to_owned`](ColumnarView::to_owned) materializes a
/// [`ColumnarDataset`] when ownership is needed.
#[derive(Debug, Clone, Copy)]
pub struct ColumnarView<'a> {
    country_count: u32,
    video_count: usize,
    tag_count: usize,
    key_offsets: &'a [u8],
    key_bytes: &'a str,
    title_offsets: &'a [u8],
    title_bytes: &'a str,
    total_views: &'a [u8],
    tag_rows: &'a [u8],
    tag_ids: &'a [u8],
    pop_kind: &'a [u8],
    pop_offsets: &'a [u8],
    pop_bytes: &'a [u8],
    tagname_offsets: &'a [u8],
    tagname_bytes: &'a str,
}

impl ColumnarView<'_> {
    /// Copies every borrowed section into an owned [`ColumnarDataset`]
    /// (one allocation per section, no re-validation — the view's
    /// invariants carry over).
    #[must_use]
    pub fn to_owned(&self) -> ColumnarDataset {
        fn le_u32s(bytes: &[u8]) -> Vec<u32> {
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        }
        fn le_u64s(bytes: &[u8]) -> Vec<u64> {
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect()
        }
        ColumnarDataset {
            country_count: self.country_count,
            key_offsets: le_u32s(self.key_offsets),
            key_bytes: self.key_bytes.to_owned(),
            title_offsets: le_u32s(self.title_offsets),
            title_bytes: self.title_bytes.to_owned(),
            total_views: le_u64s(self.total_views),
            tag_rows: le_u32s(self.tag_rows),
            tag_ids: le_u32s(self.tag_ids),
            pop_kind: self.pop_kind.to_vec(),
            pop_offsets: le_u32s(self.pop_offsets),
            pop_bytes: self.pop_bytes.to_vec(),
            tagname_offsets: le_u32s(self.tagname_offsets),
            tagname_bytes: self.tagname_bytes.to_owned(),
        }
    }

    /// Slices a string pool by the offsets stored in a raw offset
    /// section (offsets pre-validated: monotone, in range, on char
    /// boundaries).
    #[inline]
    fn pool_str<'a>(pool: &'a str, offsets: &[u8], i: usize) -> &'a str {
        &pool[u32_at(offsets, i) as usize..u32_at(offsets, i + 1) as usize]
    }
}

impl ColumnarRead for ColumnarView<'_> {
    fn len(&self) -> usize {
        self.video_count
    }

    fn country_count(&self) -> usize {
        self.country_count as usize
    }

    fn tag_count(&self) -> usize {
        self.tag_count
    }

    fn key(&self, i: usize) -> &str {
        Self::pool_str(self.key_bytes, self.key_offsets, i)
    }

    fn title(&self, i: usize) -> &str {
        Self::pool_str(self.title_bytes, self.title_offsets, i)
    }

    fn total_views(&self, i: usize) -> u64 {
        u64_at(self.total_views, i)
    }

    fn tag_range(&self, i: usize) -> core::ops::Range<usize> {
        u32_at(self.tag_rows, i) as usize..u32_at(self.tag_rows, i + 1) as usize
    }

    fn tag_id(&self, k: usize) -> u32 {
        u32_at(self.tag_ids, k)
    }

    fn pop_kind(&self, i: usize) -> u8 {
        self.pop_kind[i]
    }

    fn pop_payload(&self, i: usize) -> &[u8] {
        &self.pop_bytes
            [u32_at(self.pop_offsets, i) as usize..u32_at(self.pop_offsets, i + 1) as usize]
    }

    fn tag_name(&self, t: usize) -> &str {
        Self::pool_str(self.tagname_bytes, self.tagname_offsets, t)
    }
}

/// A file image split into its checksum-verified section slices.
struct SplitImage<'a> {
    country_count: u32,
    video_count: usize,
    tag_count: usize,
    slices: [&'a [u8]; 12],
}

/// Splits a file image into header counts and section slices.
///
/// This is the shared front half of [`decode_borrowed`] and the
/// convert fast path: magic, counts, table order, offset contiguity,
/// truncation, per-section FNV-1a checksums and trailing-garbage are
/// all enforced here.
fn split_sections(buf: &[u8]) -> Result<SplitImage<'_>, DatasetError> {
    let body = buf
        .strip_prefix(MAGIC)
        .ok_or_else(|| format_err("bad magic: not a `#tagdist-dataset bin v1` file"))?;
    let mut h = Header { buf: body, pos: 0 };
    let country_count = h.u32("country count")?;
    let video_count = h.u32("video count")? as usize;
    let tag_count = h.u32("tag count")? as usize;
    let section_count = h.u32("section count")? as usize;
    if section_count != SECTION_IDS.len() {
        return Err(format_err(format!(
            "expected {} sections, header declares {section_count}",
            SECTION_IDS.len()
        )));
    }

    let mut sections = Vec::with_capacity(section_count);
    for expected_id in SECTION_IDS {
        let id = h.u32("section id")?;
        if id != expected_id {
            return Err(format_err(format!(
                "section table out of order: expected id {expected_id}, found {id}"
            )));
        }
        sections.push(Section {
            id,
            offset: h.u64("section offset")?,
            len: h.u64("section length")?,
            checksum: h.u64("section checksum")?,
        });
    }

    let payload = &body[h.pos..];
    let mut slices: [&[u8]; 12] = [&[]; 12];
    let mut expected_offset = 0u64;
    for (slot, s) in slices.iter_mut().zip(&sections) {
        if s.offset != expected_offset {
            return Err(format_err(format!(
                "section {}: offset {} does not follow the previous section (expected {})",
                s.id, s.offset, expected_offset
            )));
        }
        let start = usize::try_from(s.offset)
            .map_err(|_| format_err(format!("section {}: offset overflows usize", s.id)))?;
        let end = usize::try_from(s.offset + s.len)
            .ok()
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| {
                format_err(format!(
                    "section {}: truncated payload ({} bytes needed, {} available)",
                    s.id,
                    s.offset + s.len,
                    payload.len()
                ))
            })?;
        let bytes = &payload[start..end];
        let actual = fnv1a(bytes);
        if actual != s.checksum {
            return Err(DatasetError::Checksum {
                section: s.id,
                expected: s.checksum,
                actual,
            });
        }
        *slot = bytes;
        expected_offset += s.len;
    }
    if usize::try_from(expected_offset).ok() != Some(payload.len()) {
        return Err(format_err(format!(
            "{} trailing payload byte(s) after the last section",
            payload.len() as u64 - expected_offset
        )));
    }
    Ok(SplitImage {
        country_count,
        video_count,
        tag_count,
        slices,
    })
}

/// Requires an integer section's byte length to be a whole number of
/// `width`-byte entries.
fn check_stride(bytes: &[u8], width: usize, what: &str) -> Result<(), DatasetError> {
    if bytes.len() % width != 0 {
        return Err(format_err(format!(
            "section {what}: length {} is not a multiple of {width}",
            bytes.len()
        )));
    }
    Ok(())
}

/// Deserializes a columnar dataset *in place*: every section stays a
/// borrow of `buf`, but all validation the owned [`decode`] performs —
/// checksums, offset monotonicity, UTF-8, tag-id bounds, popularity
/// shapes — runs up front, so the returned view's accessors never
/// re-check. This is the zero-copy load path for memory-mapped files.
///
/// # Errors
///
/// * [`DatasetError::Format`] on bad magic, a truncated header or
///   payload, an out-of-order section table, or any column invariant
///   violation.
/// * [`DatasetError::Checksum`] when a section's recorded FNV-1a hash
///   does not match its bytes.
pub fn decode_borrowed(buf: &[u8]) -> Result<ColumnarView<'_>, DatasetError> {
    let SplitImage {
        country_count,
        video_count,
        tag_count,
        slices,
    } = split_sections(buf)?;

    check_stride(slices[0], 4, "key offsets")?;
    let key_bytes =
        std::str::from_utf8(slices[1]).map_err(|_| format_err("key pool is not valid UTF-8"))?;
    check_stride(slices[2], 4, "title offsets")?;
    let title_bytes =
        std::str::from_utf8(slices[3]).map_err(|_| format_err("title pool is not valid UTF-8"))?;
    check_stride(slices[4], 8, "total views")?;
    check_stride(slices[5], 4, "tag spine")?;
    check_stride(slices[6], 4, "tag ids")?;
    check_stride(slices[8], 4, "pop offsets")?;
    check_stride(slices[10], 4, "tag-name offsets")?;
    let tagname_bytes = std::str::from_utf8(slices[11])
        .map_err(|_| format_err("tag-name pool is not valid UTF-8"))?;

    let view = ColumnarView {
        country_count,
        video_count,
        tag_count,
        key_offsets: slices[0],
        key_bytes,
        title_offsets: slices[2],
        title_bytes,
        total_views: slices[4],
        tag_rows: slices[5],
        tag_ids: slices[6],
        pop_kind: slices[7],
        pop_offsets: slices[8],
        pop_bytes: slices[9],
        tagname_offsets: slices[10],
        tagname_bytes,
    };

    check_offsets_raw(
        view.key_offsets,
        video_count,
        key_bytes.len(),
        "key offsets",
    )?;
    check_boundaries_raw(view.key_offsets, key_bytes, "key offsets")?;
    check_offsets_raw(
        view.title_offsets,
        video_count,
        title_bytes.len(),
        "title offsets",
    )?;
    check_boundaries_raw(view.title_offsets, title_bytes, "title offsets")?;
    if view.total_views.len() / 8 != video_count {
        return Err(format_err(format!(
            "total views: {} entries for {video_count} video(s)",
            view.total_views.len() / 8
        )));
    }
    check_offsets_raw(
        view.tag_rows,
        video_count,
        view.tag_ids.len() / 4,
        "tag spine",
    )?;
    for k in 0..view.tag_ids.len() / 4 {
        let t = u32_at(view.tag_ids, k);
        if t as usize >= tag_count {
            return Err(format_err(format!(
                "tag id {t} out of range (tag count {tag_count})"
            )));
        }
    }
    if view.pop_kind.len() != video_count {
        return Err(format_err(format!(
            "popularity kinds: {} entries for {video_count} video(s)",
            view.pop_kind.len()
        )));
    }
    check_offsets_raw(
        view.pop_offsets,
        video_count,
        view.pop_bytes.len(),
        "pop offsets",
    )?;
    for (i, &kind) in view.pop_kind.iter().enumerate() {
        let start = u32_at(view.pop_offsets, i);
        let len = (u32_at(view.pop_offsets, i + 1) - start) as usize;
        match kind {
            POP_MISSING if len != 0 => {
                return Err(format_err(format!(
                    "video {i}: missing popularity carries {len} payload byte(s)"
                )));
            }
            POP_VALID => {
                if len != country_count as usize {
                    return Err(format_err(format!(
                        "video {i}: valid popularity has {len} byte(s), expected {country_count}"
                    )));
                }
                let payload = &view.pop_bytes[start as usize..start as usize + len];
                if let Some(&bad) = payload.iter().find(|&&b| b > 61) {
                    return Err(format_err(format!(
                        "video {i}: valid popularity intensity {bad} exceeds 61"
                    )));
                }
            }
            POP_MISSING | POP_CORRUPT => {}
            other => {
                return Err(format_err(format!(
                    "video {i}: unknown popularity kind {other}"
                )));
            }
        }
    }
    check_offsets_raw(
        view.tagname_offsets,
        tag_count,
        tagname_bytes.len(),
        "tag-name offsets",
    )?;
    check_boundaries_raw(view.tagname_offsets, tagname_bytes, "tag-name offsets")?;

    Ok(view)
}

/// Verifies that `buf` is a well-formed `bin v1` image — the same
/// validation as [`decode_borrowed`], discarding the view. Used by the
/// convert fast path to certify an input before copying it through
/// unchanged.
///
/// # Errors
///
/// As for [`decode_borrowed`].
pub fn verify(buf: &[u8]) -> Result<(), DatasetError> {
    decode_borrowed(buf).map(|_| ())
}

/// Deserializes a columnar dataset from a full in-memory image.
///
/// Implemented as [`decode_borrowed`] + [`ColumnarView::to_owned`]:
/// one validation path serves both modes, and the owned copy stays at
/// O(sections) allocations.
///
/// # Errors
///
/// * [`DatasetError::Format`] on bad magic, a truncated header or
///   payload, an out-of-order section table, or any column invariant
///   violation.
/// * [`DatasetError::Checksum`] when a section's recorded FNV-1a hash
///   does not match its bytes.
pub fn decode(buf: &[u8]) -> Result<ColumnarDataset, DatasetError> {
    decode_borrowed(buf).map(|view| view.to_owned())
}

/// Deserializes from a reader (one `read_to_end` then [`decode`]).
///
/// # Errors
///
/// As for [`decode`], plus [`DatasetError::Io`] on read failure.
pub fn read<R: Read>(mut reader: R) -> Result<ColumnarDataset, DatasetError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    decode(&buf)
}

/// Validates a raw LE `u32` offset column: `count + 1` entries,
/// monotone, starting at 0 and ending at the pool length. Operates on
/// the undecoded section bytes so the borrowed mode never materializes
/// a `Vec`.
fn check_offsets_raw(
    offsets: &[u8],
    count: usize,
    pool_len: usize,
    what: &str,
) -> Result<(), DatasetError> {
    let entries = offsets.len() / 4;
    if entries != count + 1 {
        return Err(format_err(format!(
            "{what}: {entries} entries for {count} row(s) (need {})",
            count + 1
        )));
    }
    if u32_at(offsets, 0) != 0 {
        return Err(format_err(format!("{what}: first offset is not 0")));
    }
    let mut prev = 0u32;
    for i in 1..entries {
        let o = u32_at(offsets, i);
        if o < prev {
            return Err(format_err(format!("{what}: offsets are not monotone")));
        }
        prev = o;
    }
    if prev as usize != pool_len {
        return Err(format_err(format!(
            "{what}: last offset does not match the pool length {pool_len}"
        )));
    }
    Ok(())
}

/// Validates that every string-pool offset falls on a UTF-8 character
/// boundary, so accessors can slice without panicking.
fn check_boundaries_raw(offsets: &[u8], pool: &str, what: &str) -> Result<(), DatasetError> {
    for i in 0..offsets.len() / 4 {
        let o = u32_at(offsets, i);
        if !pool.is_char_boundary(o as usize) {
            return Err(format_err(format!(
                "{what}: offset {o} splits a UTF-8 character"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarDataset;
    use crate::dataset::DatasetBuilder;
    use crate::record::RawPopularity;
    use crate::Dataset;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_video_titled(
            "vid,weird\tkey",
            "Ünïcödé title",
            123,
            &["pop", "hip hop", "a,b"],
            RawPopularity::decode(vec![61, 0, 7], 3),
        );
        b.push_video("plain", 0, &[], RawPopularity::Missing);
        b.push_video_titled(
            "corrupt",
            "c",
            9,
            &["x", "pop"],
            RawPopularity::decode(vec![1, 2], 3),
        );
        b.build()
    }

    fn encode(d: &Dataset) -> Vec<u8> {
        let mut buf = Vec::new();
        write(&ColumnarDataset::from_dataset(d).unwrap(), &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trips_byte_exactly() {
        let d = sample();
        let c = ColumnarDataset::from_dataset(&d).unwrap();
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let r = decode(&buf).unwrap();
        assert_eq!(r, c);
        // Re-encode of the decoded dataset reproduces the bytes.
        let mut again = Vec::new();
        write(&r, &mut again).unwrap();
        assert_eq!(buf, again);
    }

    #[test]
    fn encode_is_deterministic() {
        let d = sample();
        assert_eq!(encode(&d), encode(&d));
    }

    #[test]
    fn magic_shares_the_sniffable_prefix() {
        assert!(MAGIC.starts_with(b"#tagdist-dataset "));
        let buf = encode(&sample());
        assert!(buf.starts_with(MAGIC));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"#tagdist-dataset v1 countries=3\n").unwrap_err();
        assert!(matches!(err, DatasetError::Format { .. }), "{err}");
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let buf = encode(&sample());
        // Chopping the file anywhere must produce an error, never a
        // panic or a silently short dataset.
        for cut in 0..buf.len() {
            let err = decode(&buf[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DatasetError::Format { .. } | DatasetError::Checksum { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn detects_payload_corruption_via_checksum() {
        let mut buf = encode(&sample());
        // Flip a byte in the middle of the payload (past the header).
        let tamper_at = buf.len() - 4;
        buf[tamper_at] ^= 0xff;
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, DatasetError::Checksum { .. }), "{err}");
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = encode(&sample());
        buf.extend_from_slice(b"junk");
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_tag_ids() {
        let d = sample();
        let mut c = ColumnarDataset::from_dataset(&d).unwrap();
        if let Some(first) = c.tag_ids.first_mut() {
            *first = 10_000;
        }
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("tag id"), "{err}");
    }

    #[test]
    fn rejects_invalid_valid_popularity() {
        let d = sample();
        let mut c = ColumnarDataset::from_dataset(&d).unwrap();
        // Claim the corrupt row (wrong length) is valid.
        c.pop_kind[2] = POP_VALID;
        let mut buf = Vec::new();
        write(&c, &mut buf).unwrap();
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("valid popularity"), "{err}");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = DatasetBuilder::new(60).build();
        let buf = encode(&d);
        let r = decode(&buf).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.country_count(), 60);
        assert_eq!(r.tag_count(), 0);
    }
}
