//! Dataset statistics — the §2 headline numbers and the shape
//! diagnostics behind them.
//!
//! The paper summarizes its corpus with four numbers (crawled videos,
//! filtered videos, unique tags, total views). Reproducing the *shape*
//! of the corpus also needs the long-tail diagnostics the dataset's
//! companion papers report: tags-per-video, tag-frequency skew, and
//! view-count skew. [`DatasetStats`] computes all of them in one pass.

use core::fmt;

use crate::filter::CleanDataset;
use crate::tag::TagId;

/// Frequency of one tag (how many retained videos carry it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagFrequency {
    /// The tag.
    pub tag: TagId,
    /// Number of retained videos carrying it.
    pub videos: usize,
    /// Combined views of those videos.
    pub views: u128,
}

/// One-pass summary statistics over a [`CleanDataset`].
///
/// # Example
///
/// ```no_run
/// # use tagdist_dataset::{CleanDataset, DatasetStats};
/// # fn demo(clean: &CleanDataset) {
/// let stats = DatasetStats::compute(clean);
/// println!("{stats}");
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Retained videos (paper: 691,349).
    pub videos: usize,
    /// Distinct tags on retained videos (paper: 705,415).
    pub unique_tags: usize,
    /// Total views over retained videos (paper: 173,288,616,473).
    pub total_views: u128,
    /// Mean number of tags per video.
    pub mean_tags_per_video: f64,
    /// Largest number of tags on a single video.
    pub max_tags_per_video: usize,
    /// Fraction of distinct tags appearing on exactly one video
    /// (the hapax share — high in real folksonomies).
    pub singleton_tag_share: f64,
    /// Views of the most-viewed video.
    pub max_video_views: u64,
    /// Median video view count.
    pub median_video_views: u64,
    /// Share of all views captured by the top 1 % of videos — the
    /// heavy-tail diagnostic motivating the paper's niche-audience
    /// argument.
    pub top1pct_view_share: f64,
}

impl DatasetStats {
    /// Computes statistics over a filtered dataset.
    pub fn compute(clean: &CleanDataset) -> DatasetStats {
        let videos = clean.len();
        let unique_tags = clean.unique_tags();
        let total_views = clean.total_views();

        let mut tag_count_sum = 0usize;
        let mut max_tags = 0usize;
        let mut view_counts: Vec<u64> = Vec::with_capacity(videos);
        for v in clean.iter() {
            tag_count_sum += v.tags.len();
            max_tags = max_tags.max(v.tags.len());
            view_counts.push(v.total_views);
        }
        let mean_tags_per_video = if videos == 0 {
            0.0
        } else {
            tag_count_sum as f64 / videos as f64
        };

        let singleton_tags = clean
            .tags()
            .iter()
            .filter(|&(id, _)| clean.videos_with_tag(id).len() == 1)
            .count();
        let singleton_tag_share = if unique_tags == 0 {
            0.0
        } else {
            singleton_tags as f64 / unique_tags as f64
        };

        view_counts.sort_unstable();
        let max_video_views = view_counts.last().copied().unwrap_or(0);
        let median_video_views = if view_counts.is_empty() {
            0
        } else {
            view_counts[view_counts.len() / 2]
        };
        let top_n = (videos as f64 * 0.01).ceil() as usize;
        let top_views: u128 = view_counts
            .iter()
            .rev()
            .take(top_n)
            .map(|&v| v as u128)
            .sum();
        let top1pct_view_share = if total_views == 0 {
            0.0
        } else {
            top_views as f64 / total_views as f64
        };

        DatasetStats {
            videos,
            unique_tags,
            total_views,
            mean_tags_per_video,
            max_tags_per_video: max_tags,
            singleton_tag_share,
            max_video_views,
            median_video_views,
            top1pct_view_share,
        }
    }

    /// The `k` most frequent tags by carrying-video count, descending,
    /// ties broken by id.
    pub fn top_tags(clean: &CleanDataset, k: usize) -> Vec<TagFrequency> {
        let mut freqs: Vec<TagFrequency> = clean
            .tags()
            .iter()
            .map(|(tag, _)| {
                let postings = clean.videos_with_tag(tag);
                let views = postings
                    .iter()
                    .map(|&pos| clean.views_column()[pos as usize] as u128)
                    .sum();
                TagFrequency {
                    tag,
                    videos: postings.len(),
                    views,
                }
            })
            .filter(|f| f.videos > 0)
            .collect();
        freqs.sort_by(|a, b| b.videos.cmp(&a.videos).then(a.tag.cmp(&b.tag)));
        freqs.truncate(k);
        freqs
    }

    /// Rank–frequency points of the tag-usage distribution (the
    /// corpus's Zipf plot): up to `points` log-spaced ranks with the
    /// number of videos carrying the tag of that popularity rank.
    ///
    /// A straight-ish line on log–log axes is the folksonomy shape the
    /// §2 vocabulary exhibits; the sampler keeps rank 1 and the last
    /// rank so both ends of the tail are represented.
    pub fn tag_rank_frequency(clean: &CleanDataset, points: usize) -> Vec<(usize, usize)> {
        let mut freqs: Vec<usize> = clean
            .tags()
            .iter()
            .map(|(tag, _)| clean.videos_with_tag(tag).len())
            .filter(|&n| n > 0)
            .collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        if freqs.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = freqs.len();
        let mut out = Vec::with_capacity(points.min(n));
        let mut last_rank = 0usize;
        for i in 0..points.min(n) {
            // Log-spaced ranks from 1 to n inclusive.
            let t = i as f64 / (points.min(n) as f64 - 1.0).max(1.0);
            let rank = ((n as f64).powf(t)).round() as usize;
            let rank = rank.clamp(1, n);
            if rank == last_rank {
                continue;
            }
            last_rank = rank;
            out.push((rank, freqs[rank - 1]));
        }
        out
    }

    /// Log-decade histogram of per-video view counts: bucket `i`
    /// counts videos with views in `[10^i, 10^(i+1))`. The heavy tail
    /// the paper's "niche audiences" argument rests on shows up as
    /// occupied high decades next to a bulk of low ones.
    pub fn view_count_histogram(clean: &CleanDataset) -> Vec<(u64, usize)> {
        let mut buckets: Vec<usize> = Vec::new();
        for v in clean.iter() {
            let decade = (v.total_views.max(1) as f64).log10().floor() as usize;
            if buckets.len() <= decade {
                buckets.resize(decade + 1, 0);
            }
            buckets[decade] += 1;
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, n)| (10u64.pow(i as u32), n))
            .collect()
    }

    /// The `k` tags with the most aggregated views (the ordering the
    /// paper uses when it calls `pop` "the second most viewed tag").
    pub fn top_tags_by_views(clean: &CleanDataset, k: usize) -> Vec<TagFrequency> {
        let mut freqs: Vec<TagFrequency> = clean
            .tags()
            .iter()
            .map(|(tag, _)| {
                let postings = clean.videos_with_tag(tag);
                let views = postings
                    .iter()
                    .map(|&pos| clean.views_column()[pos as usize] as u128)
                    .sum();
                TagFrequency {
                    tag,
                    videos: postings.len(),
                    views,
                }
            })
            .filter(|f| f.videos > 0)
            .collect();
        freqs.sort_by(|a, b| b.views.cmp(&a.views).then(a.tag.cmp(&b.tag)));
        freqs.truncate(k);
        freqs
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "videos:              {}", self.videos)?;
        writeln!(f, "unique tags:         {}", self.unique_tags)?;
        writeln!(f, "total views:         {}", self.total_views)?;
        writeln!(f, "mean tags/video:     {:.2}", self.mean_tags_per_video)?;
        writeln!(f, "max tags/video:      {}", self.max_tags_per_video)?;
        writeln!(
            f,
            "singleton tag share: {:.1}%",
            100.0 * self.singleton_tag_share
        )?;
        writeln!(f, "max video views:     {}", self.max_video_views)?;
        writeln!(f, "median video views:  {}", self.median_video_views)?;
        write!(
            f,
            "top-1% view share:   {:.1}%",
            100.0 * self.top1pct_view_share
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::filter::filter;
    use crate::record::RawPopularity;

    fn clean() -> CleanDataset {
        let mut b = DatasetBuilder::new(2);
        let pop = |v: Vec<u8>| RawPopularity::decode(v, 2);
        b.push_video("a", 1_000, &["pop", "music"], pop(vec![61, 0]));
        b.push_video("b", 10, &["pop"], pop(vec![0, 61]));
        b.push_video("c", 100, &["favela", "funk", "brasil"], pop(vec![30, 61]));
        b.push_video("d", 5, &["unique-tag"], pop(vec![61, 61]));
        filter(&b.build())
    }

    #[test]
    fn headline_numbers() {
        let s = DatasetStats::compute(&clean());
        assert_eq!(s.videos, 4);
        assert_eq!(s.unique_tags, 6);
        assert_eq!(s.total_views, 1_115);
        assert_eq!(s.max_video_views, 1_000);
    }

    #[test]
    fn tags_per_video() {
        let s = DatasetStats::compute(&clean());
        assert!((s.mean_tags_per_video - 7.0 / 4.0).abs() < 1e-12);
        assert_eq!(s.max_tags_per_video, 3);
    }

    #[test]
    fn singleton_share() {
        let s = DatasetStats::compute(&clean());
        // pop appears twice; the other five tags once → 5/6.
        assert!((s.singleton_tag_share - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn top_tags_by_frequency_and_views() {
        let c = clean();
        let by_freq = DatasetStats::top_tags(&c, 2);
        assert_eq!(c.tags().name(by_freq[0].tag), "pop");
        assert_eq!(by_freq[0].videos, 2);
        assert_eq!(by_freq[0].views, 1_010);

        let by_views = DatasetStats::top_tags_by_views(&c, 3);
        assert_eq!(c.tags().name(by_views[0].tag), "pop");
        // "music" rides the 1000-view video.
        assert_eq!(c.tags().name(by_views[1].tag), "music");
        assert_eq!(by_views[1].views, 1_000);
    }

    #[test]
    fn empty_dataset_is_all_zeros() {
        let empty = filter(&DatasetBuilder::new(2).build());
        let s = DatasetStats::compute(&empty);
        assert_eq!(s.videos, 0);
        assert_eq!(s.mean_tags_per_video, 0.0);
        assert_eq!(s.top1pct_view_share, 0.0);
        assert_eq!(s.median_video_views, 0);
        assert!(DatasetStats::top_tags(&empty, 5).is_empty());
    }

    #[test]
    fn display_includes_every_headline() {
        let s = DatasetStats::compute(&clean()).to_string();
        for needle in ["videos:", "unique tags:", "total views:", "top-1%"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn rank_frequency_is_monotone_and_anchored() {
        let c = clean();
        let points = DatasetStats::tag_rank_frequency(&c, 10);
        assert!(!points.is_empty());
        assert_eq!(points[0], (1, 2), "rank 1 is 'pop' with 2 videos");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "ranks ascend");
            assert!(w[0].1 >= w[1].1, "frequencies descend");
        }
        let last = points.last().unwrap();
        assert_eq!(last.0, 6, "last rank covers the whole vocabulary");
        assert_eq!(last.1, 1);
    }

    #[test]
    fn view_histogram_buckets_by_decade() {
        let c = clean(); // views: 1000, 10, 100, 5
        let h = DatasetStats::view_count_histogram(&c);
        // decades: 5→[1,10), 10→[10,100), 100→[100,1000), 1000→[1000,..)
        assert_eq!(h, vec![(1, 1), (10, 1), (100, 1), (1000, 1)]);
        let total: usize = h.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn view_histogram_of_empty_is_empty() {
        let empty = filter(&DatasetBuilder::new(2).build());
        assert!(DatasetStats::view_count_histogram(&empty).is_empty());
    }

    #[test]
    fn rank_frequency_handles_edge_cases() {
        let empty = filter(&DatasetBuilder::new(2).build());
        assert!(DatasetStats::tag_rank_frequency(&empty, 5).is_empty());
        assert!(DatasetStats::tag_rank_frequency(&clean(), 0).is_empty());
    }

    #[test]
    fn top1pct_is_max_video_for_small_sets() {
        // ceil(4 * 0.01) = 1 → the single largest video.
        let s = DatasetStats::compute(&clean());
        assert!((s.top1pct_view_share - 1_000.0 / 1_115.0).abs() < 1e-12);
    }
}
