//! Data model for the crawled YouTube dataset of
//! *“From Views to Tags Distribution in Youtube”* (Middleware ’14).
//!
//! The paper's dataset (§2) is a March-2011 snowball crawl of
//! 1,063,844 videos; for each video it records the id, title, total
//! view count, the 0–61 per-country popularity vector scraped from the
//! Map-Chart service, and the uploader's tags. This crate models those
//! records and the paper's processing of them:
//!
//! * [`VideoRecord`] — one crawled video, with a possibly missing or
//!   corrupt popularity vector ([`RawPopularity`]), exactly as a real
//!   crawler would see it,
//! * [`TagInterner`] / [`TagId`] — compact interned tags (the paper's
//!   705,415 unique tags make string keys impractical),
//! * [`Dataset`] — the raw crawl result with tag and country indices,
//! * [`filter()`](filter()) — the paper's §2 filtering step (drop videos with no
//!   tags or with an incorrect/empty popularity vector), producing a
//!   [`CleanDataset`] whose records carry *validated* popularity
//!   vectors,
//! * [`stats`] — the §2 headline statistics (video / tag / view
//!   totals, tag-frequency shape),
//! * [`tsv`] — a self-contained line-oriented serialization so crawls
//!   can be saved and reloaded without external format crates,
//! * [`binfmt`] / [`columnar`] — the `bin v1` binary columnar
//!   serialization for paper-scale corpora (fixed-width sections,
//!   FNV-1a checksums, O(sections) load allocations), with
//!   [`mod@format`] sniffing so readers accept either format.
//!
//! # Example
//!
//! ```
//! use tagdist_dataset::{Dataset, DatasetBuilder, RawPopularity};
//! use tagdist_geo::world;
//!
//! let mut b = DatasetBuilder::new(world().len());
//! b.push_video("dQw4w9WgXcQ", 42, &["pop", "music"], RawPopularity::Missing);
//! let dataset: Dataset = b.build();
//! assert_eq!(dataset.len(), 1);
//! assert_eq!(dataset.tags().len(), 2);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the scoped
// `#![allow(unsafe_code)]` in [`mod@mmap`], whose module docs carry the
// safety argument (and which the `unsafe-scope` xtask pass audits).
#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod binfmt;
pub mod columnar;
pub mod dataset;
pub mod error;
pub mod filter;
pub mod format;
pub mod ingest;
pub mod merge;
pub mod mmap;
pub mod record;
pub mod sample;
pub mod stats;
pub mod tag;
pub mod tsv;

pub use binfmt::ColumnarView;
pub use columnar::{ColumnarDataset, ColumnarRead, MemoryFootprint};
pub use dataset::{Dataset, DatasetBuilder};
pub use error::DatasetError;
pub use filter::{filter, filter_columnar, CleanDataset, CleanVideo, FilterReport};
pub use format::{decode_any, read_any, sniff, write_binary, DatasetFormat};
pub use ingest::{CleanIngest, IngestDelta};
pub use merge::merge;
pub use mmap::Mmap;
pub use record::{RawPopularity, VideoId, VideoRecord};
pub use sample::{sample_stratified, sample_top_views, sample_uniform};
pub use stats::{DatasetStats, TagFrequency};
pub use tag::{TagId, TagInterner};
