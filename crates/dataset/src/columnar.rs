//! Columnar in-memory dataset representation.
//!
//! [`ColumnarDataset`] holds the same information as [`Dataset`] in a
//! handful of flat columns instead of one `VideoRecord` per video:
//! string pools with offset indices for keys, titles and tag names, a
//! CSR spine for the video→tag lists, and a dense sentinel-tagged
//! block for the popularity vectors. The point is scale: a million
//! videos is a dozen allocations, not four million, and the layout maps
//! 1:1 onto the `tagdist-dataset bin v1` on-disk sections (see
//! [`binfmt`](crate::binfmt)) so a load is sequential reads into
//! preallocated buffers.
//!
//! Conversions bridge to the record-oriented world: `from_dataset`
//! flattens a built [`Dataset`] (deterministically — same input, same
//! columns), `to_dataset` rebuilds one for code paths that still want
//! records. Both preserve every field exactly, including `Corrupt`
//! popularity bytes, so TSV↔bin round-trips are lossless.

use tagdist_obs::Recorder;

use crate::dataset::Dataset;
use crate::error::DatasetError;
use crate::record::{RawPopularity, VideoId, VideoRecord};
use crate::tag::{TagId, TagInterner};

/// Popularity sentinel: no chart was served.
pub const POP_MISSING: u8 = 0;
/// Popularity sentinel: a structurally valid intensity vector.
pub const POP_VALID: u8 = 1;
/// Popularity sentinel: raw bytes that failed decoding.
pub const POP_CORRUPT: u8 = 2;

/// Read access to a validated columnar dataset, owned or borrowed.
///
/// Implemented by [`ColumnarDataset`] (typed columns in owned `Vec`s)
/// and by [`ColumnarView`](crate::binfmt::ColumnarView) (sections
/// borrowed straight from an on-disk image, e.g. an `mmap`). Consumers
/// written against this trait — most importantly
/// [`filter_columnar`](crate::filter::filter_columnar) — run unchanged
/// over either, which is what lets the pipeline go from file bytes to
/// a [`CleanDataset`](crate::CleanDataset) without materializing
/// per-video records.
///
/// Every implementation is backed by decoder-validated columns, so the
/// invariants in the [`ColumnarDataset`] docs hold and accessors may
/// panic only on out-of-range indices.
pub trait ColumnarRead {
    /// Number of videos.
    fn len(&self) -> usize;

    /// Returns `true` if the dataset contains no videos.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of countries each popularity vector is expected to cover.
    fn country_count(&self) -> usize;

    /// Number of distinct interned tags.
    fn tag_count(&self) -> usize;

    /// The external platform key of video `i`.
    fn key(&self, i: usize) -> &str;

    /// The display title of video `i`.
    fn title(&self, i: usize) -> &str;

    /// Total worldwide views of video `i`.
    fn total_views(&self, i: usize) -> u64;

    /// Range of video `i`'s tags in the flat tag-id column (the CSR
    /// row `[spine[i], spine[i+1])`).
    fn tag_range(&self, i: usize) -> core::ops::Range<usize>;

    /// The `k`-th entry of the flat tag-id column.
    fn tag_id(&self, k: usize) -> u32;

    /// The `POP_*` sentinel of video `i`.
    fn pop_kind(&self, i: usize) -> u8;

    /// Raw popularity payload bytes of video `i` (empty for
    /// `POP_MISSING`; exactly `country_count` in-range intensities for
    /// `POP_VALID`).
    fn pop_payload(&self, i: usize) -> &[u8];

    /// The interned name of tag `t`.
    fn tag_name(&self, t: usize) -> &str;
}

/// Byte sizes of the live columns, for memory accounting.
///
/// Reported as `dataset.*` gauges by
/// [`ColumnarDataset::record_gauges`]; every field is a deterministic
/// function of the dataset contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes in the key + title string pools (offsets + bytes).
    pub string_pool_bytes: u64,
    /// Bytes in the CSR tag spine + flat tag-id column.
    pub postings_bytes: u64,
    /// Bytes in the popularity kind/offset/payload block.
    pub popularity_bytes: u64,
    /// Bytes in the interned tag-name pool (offsets + bytes).
    pub tag_names_bytes: u64,
    /// Number of videos.
    pub videos: u64,
    /// Number of distinct tags.
    pub tags: u64,
}

impl MemoryFootprint {
    /// Total resident bytes across all columns.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.string_pool_bytes + self.postings_bytes + self.popularity_bytes + self.tag_names_bytes
    }
}

/// A dataset stored as flat columns (see the module docs).
///
/// Invariants (checked by the binary decoder, upheld by
/// `from_dataset`): every offset column is monotone, starts at 0 and
/// ends at its pool's length; string-pool offsets fall on UTF-8
/// character boundaries; tag ids are `< tag_count`; popularity kinds
/// are one of the `POP_*` sentinels with `POP_MISSING` rows empty and
/// `POP_VALID` rows exactly `country_count` in-range bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarDataset {
    pub(crate) country_count: u32,
    /// Byte offsets of each key in `key_bytes`; length `n + 1`.
    pub(crate) key_offsets: Vec<u32>,
    pub(crate) key_bytes: String,
    /// Byte offsets of each title in `title_bytes`; length `n + 1`.
    pub(crate) title_offsets: Vec<u32>,
    pub(crate) title_bytes: String,
    /// Worldwide view counts, one per video.
    pub(crate) total_views: Vec<u64>,
    /// CSR spine into `tag_ids`; length `n + 1`.
    pub(crate) tag_rows: Vec<u32>,
    /// Flat per-video tag-id lists, in video order.
    pub(crate) tag_ids: Vec<u32>,
    /// One `POP_*` sentinel per video.
    pub(crate) pop_kind: Vec<u8>,
    /// Byte offsets of each popularity payload in `pop_bytes`.
    pub(crate) pop_offsets: Vec<u32>,
    pub(crate) pop_bytes: Vec<u8>,
    /// Byte offsets of each tag name in `tagname_bytes`; length `t + 1`.
    pub(crate) tagname_offsets: Vec<u32>,
    pub(crate) tagname_bytes: String,
}

impl ColumnarDataset {
    /// Number of videos.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total_views.len()
    }

    /// Returns `true` if the dataset contains no videos.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_views.is_empty()
    }

    /// Number of countries each popularity vector is expected to cover.
    #[must_use]
    pub fn country_count(&self) -> usize {
        self.country_count as usize
    }

    /// Number of distinct interned tags.
    #[must_use]
    pub fn tag_count(&self) -> usize {
        self.tagname_offsets.len().saturating_sub(1)
    }

    /// The external platform key of video `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn key(&self, i: usize) -> &str {
        &self.key_bytes[self.key_offsets[i] as usize..self.key_offsets[i + 1] as usize]
    }

    /// The display title of video `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn title(&self, i: usize) -> &str {
        &self.title_bytes[self.title_offsets[i] as usize..self.title_offsets[i + 1] as usize]
    }

    /// Total worldwide views of video `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn total_views(&self, i: usize) -> u64 {
        self.total_views[i]
    }

    /// Dense tag ids of video `i`, in upload order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn tags_of(&self, i: usize) -> &[u32] {
        &self.tag_ids[self.tag_rows[i] as usize..self.tag_rows[i + 1] as usize]
    }

    /// The interned name of tag `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn tag_name(&self, t: usize) -> &str {
        &self.tagname_bytes[self.tagname_offsets[t] as usize..self.tagname_offsets[t + 1] as usize]
    }

    /// Raw popularity payload of video `i`: its sentinel kind and the
    /// stored bytes (empty for `POP_MISSING`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn popularity_raw(&self, i: usize) -> (u8, &[u8]) {
        let bytes = &self.pop_bytes[self.pop_offsets[i] as usize..self.pop_offsets[i + 1] as usize];
        (self.pop_kind[i], bytes)
    }

    /// Reconstructs the [`RawPopularity`] of video `i` (allocates the
    /// payload; use [`popularity_raw`](Self::popularity_raw) on hot
    /// paths).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn popularity(&self, i: usize) -> RawPopularity {
        let (kind, bytes) = self.popularity_raw(i);
        match kind {
            POP_MISSING => RawPopularity::Missing,
            POP_VALID => RawPopularity::decode(bytes.to_vec(), self.country_count()),
            _ => RawPopularity::Corrupt(bytes.to_vec()),
        }
    }

    /// Byte sizes of the live columns.
    #[must_use]
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let offsets = |v: &Vec<u32>| (v.len() * size_of::<u32>()) as u64;
        MemoryFootprint {
            string_pool_bytes: offsets(&self.key_offsets)
                + self.key_bytes.len() as u64
                + offsets(&self.title_offsets)
                + self.title_bytes.len() as u64,
            postings_bytes: offsets(&self.tag_rows) + offsets(&self.tag_ids),
            popularity_bytes: self.pop_kind.len() as u64
                + offsets(&self.pop_offsets)
                + self.pop_bytes.len() as u64,
            tag_names_bytes: offsets(&self.tagname_offsets) + self.tagname_bytes.len() as u64,
            videos: self.len() as u64,
            tags: self.tag_count() as u64,
        }
    }

    /// Records the memory footprint as `dataset.*` gauges.
    ///
    /// Every value is a pure function of the dataset contents, so the
    /// gauges belong in the deterministic subtree of a metrics report.
    pub fn record_gauges(&self, recorder: &Recorder) {
        let fp = self.memory_footprint();
        recorder.gauge_max("dataset.string_pool_bytes", fp.string_pool_bytes);
        recorder.gauge_max("dataset.postings_bytes", fp.postings_bytes);
        recorder.gauge_max("dataset.popularity_bytes", fp.popularity_bytes);
        recorder.gauge_max("dataset.tag_names_bytes", fp.tag_names_bytes);
        recorder.gauge_max("dataset.videos", fp.videos);
        recorder.gauge_max("dataset.tags", fp.tags);
    }

    /// Flattens a record-oriented [`Dataset`] into columns.
    ///
    /// Deterministic: videos are visited in id order and tag names in
    /// interner order, so the same dataset always produces the same
    /// columns (and, through [`binfmt`](crate::binfmt), the same
    /// bytes on disk).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Format`] if a string pool, the popularity
    /// block, the tag spine or a tag id exceeds the `u32` range
    /// (≈4 GiB per pool; beyond v1's design point).
    pub fn from_dataset(dataset: &Dataset) -> Result<ColumnarDataset, DatasetError> {
        fn index_u32(len: usize, what: &str) -> Result<u32, DatasetError> {
            u32::try_from(len).map_err(|_| DatasetError::Format {
                message: format!("{what} ({len}) exceeds the u32 range of bin v1"),
            })
        }

        let n = dataset.len();
        let mut key_offsets = Vec::with_capacity(n + 1);
        let mut key_bytes = String::new();
        let mut title_offsets = Vec::with_capacity(n + 1);
        let mut title_bytes = String::new();
        let mut total_views = Vec::with_capacity(n);
        let mut tag_rows = Vec::with_capacity(n + 1);
        let mut tag_ids = Vec::new();
        let mut pop_kind = Vec::with_capacity(n);
        let mut pop_offsets = Vec::with_capacity(n + 1);
        let mut pop_bytes = Vec::new();

        key_offsets.push(0u32);
        title_offsets.push(0u32);
        tag_rows.push(0u32);
        pop_offsets.push(0u32);

        for video in dataset.iter() {
            key_bytes.push_str(&video.key);
            key_offsets.push(index_u32(key_bytes.len(), "video key pool")?);
            title_bytes.push_str(&video.title);
            title_offsets.push(index_u32(title_bytes.len(), "title pool")?);
            total_views.push(video.total_views);
            for &tag in &video.tags {
                tag_ids.push(index_u32(tag.index(), "tag id")?);
            }
            tag_rows.push(index_u32(tag_ids.len(), "tag spine")?);
            let (kind, payload): (u8, &[u8]) = match &video.popularity {
                RawPopularity::Missing => (POP_MISSING, &[]),
                RawPopularity::Valid(p) => (POP_VALID, p.as_slice()),
                RawPopularity::Corrupt(bytes) => (POP_CORRUPT, bytes),
            };
            pop_kind.push(kind);
            pop_bytes.extend_from_slice(payload);
            pop_offsets.push(index_u32(pop_bytes.len(), "popularity block")?);
        }

        let t = dataset.tags().len();
        let mut tagname_offsets = Vec::with_capacity(t + 1);
        let mut tagname_bytes = String::new();
        tagname_offsets.push(0u32);
        for (_, name) in dataset.tags().iter() {
            tagname_bytes.push_str(name);
            tagname_offsets.push(index_u32(tagname_bytes.len(), "tag-name pool")?);
        }

        Ok(ColumnarDataset {
            country_count: index_u32(dataset.country_count(), "country count")?,
            key_offsets,
            key_bytes,
            title_offsets,
            title_bytes,
            total_views,
            tag_rows,
            tag_ids,
            pop_kind,
            pop_offsets,
            pop_bytes,
            tagname_offsets,
            tagname_bytes,
        })
    }

    /// Rebuilds a record-oriented [`Dataset`] — the conversion adapter
    /// for code paths that still want [`VideoRecord`]s; the pipeline
    /// itself consumes columns directly via [`ColumnarRead`].
    ///
    /// Uses the private fast constructor instead of replaying a
    /// [`DatasetBuilder`](crate::DatasetBuilder): tag names are adopted
    /// verbatim (they were normalized when first interned) and tag ids
    /// are taken as stored, so no re-normalization or re-interning
    /// runs. Inverse of [`from_dataset`](Self::from_dataset).
    #[must_use]
    pub fn to_dataset(&self) -> Dataset {
        let names: Vec<String> = (0..self.tag_count())
            .map(|t| self.tag_name(t).to_owned())
            .collect();
        let tags = TagInterner::from_names(names);
        let videos: Vec<VideoRecord> = (0..self.len())
            .map(|i| VideoRecord {
                id: VideoId::from_index(i),
                key: self.key(i).to_owned(),
                title: self.title(i).to_owned(),
                total_views: self.total_views(i),
                tags: self
                    .tags_of(i)
                    .iter()
                    .map(|&t| TagId::from_index(t as usize))
                    .collect(),
                popularity: self.popularity(i),
            })
            .collect();
        Dataset::from_parts(videos, tags, self.country_count())
    }
}

impl ColumnarRead for ColumnarDataset {
    fn len(&self) -> usize {
        ColumnarDataset::len(self)
    }

    fn country_count(&self) -> usize {
        ColumnarDataset::country_count(self)
    }

    fn tag_count(&self) -> usize {
        ColumnarDataset::tag_count(self)
    }

    fn key(&self, i: usize) -> &str {
        ColumnarDataset::key(self, i)
    }

    fn title(&self, i: usize) -> &str {
        ColumnarDataset::title(self, i)
    }

    fn total_views(&self, i: usize) -> u64 {
        ColumnarDataset::total_views(self, i)
    }

    fn tag_range(&self, i: usize) -> core::ops::Range<usize> {
        self.tag_rows[i] as usize..self.tag_rows[i + 1] as usize
    }

    fn tag_id(&self, k: usize) -> u32 {
        self.tag_ids[k]
    }

    fn pop_kind(&self, i: usize) -> u8 {
        self.pop_kind[i]
    }

    fn pop_payload(&self, i: usize) -> &[u8] {
        &self.pop_bytes[self.pop_offsets[i] as usize..self.pop_offsets[i + 1] as usize]
    }

    fn tag_name(&self, t: usize) -> &str {
        ColumnarDataset::tag_name(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_video_titled(
            "vid,weird\tkey",
            "A title, with\tescapes",
            123,
            &["pop", "hip hop", "a,b"],
            RawPopularity::decode(vec![61, 0, 7], 3),
        );
        b.push_video("plain", 0, &[], RawPopularity::Missing);
        b.push_video_titled(
            "corrupt",
            "c",
            9,
            &["x", "pop"],
            RawPopularity::decode(vec![1, 2], 3),
        );
        b.build()
    }

    #[test]
    fn columns_mirror_the_records() {
        let d = sample();
        let c = ColumnarDataset::from_dataset(&d).unwrap();
        assert_eq!(c.len(), d.len());
        assert_eq!(c.country_count(), d.country_count());
        assert_eq!(c.tag_count(), d.tags().len());
        for (i, v) in d.iter().enumerate() {
            assert_eq!(c.key(i), v.key);
            assert_eq!(c.title(i), v.title);
            assert_eq!(c.total_views(i), v.total_views);
            let tags: Vec<u32> = v.tags.iter().map(|t| t.index() as u32).collect();
            assert_eq!(c.tags_of(i), &tags[..]);
            assert_eq!(c.popularity(i), v.popularity);
        }
        for (id, name) in d.tags().iter() {
            assert_eq!(c.tag_name(id.index()), name);
        }
    }

    #[test]
    fn round_trips_to_an_identical_dataset() {
        let d = sample();
        let r = ColumnarDataset::from_dataset(&d).unwrap().to_dataset();
        assert_eq!(r.len(), d.len());
        assert_eq!(r.country_count(), d.country_count());
        for (a, b) in d.iter().zip(r.iter()) {
            assert_eq!(a, b);
        }
        // Lookup indices are rebuilt, not just the records.
        assert_eq!(r.by_key("plain").unwrap().total_views, 0);
        let pop = r.tags().id("pop").unwrap();
        assert_eq!(r.videos_with_tag(pop).len(), 2);
        // And the TSV serializations agree byte for byte.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        crate::tsv::write(&d, &mut a).unwrap();
        crate::tsv::write(&r, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_dataset_flattens_and_rebuilds() {
        let d = DatasetBuilder::new(5).build();
        let c = ColumnarDataset::from_dataset(&d).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.tag_count(), 0);
        let r = c.to_dataset();
        assert!(r.is_empty());
        assert_eq!(r.country_count(), 5);
    }

    #[test]
    fn footprint_counts_every_column() {
        let c = ColumnarDataset::from_dataset(&sample()).unwrap();
        let fp = c.memory_footprint();
        assert_eq!(fp.videos, 3);
        assert_eq!(fp.tags, 4);
        assert!(fp.string_pool_bytes > 0);
        assert!(fp.postings_bytes > 0);
        assert!(fp.popularity_bytes > 0);
        assert!(fp.tag_names_bytes > 0);
        assert_eq!(
            fp.total_bytes(),
            fp.string_pool_bytes + fp.postings_bytes + fp.popularity_bytes + fp.tag_names_bytes
        );
    }

    #[test]
    fn gauges_land_in_the_deterministic_subtree() {
        let rec = Recorder::new();
        ColumnarDataset::from_dataset(&sample())
            .unwrap()
            .record_gauges(&rec);
        let report = rec.finish();
        assert_eq!(report.gauges.get("dataset.videos"), Some(&3));
        assert_eq!(report.gauges.get("dataset.tags"), Some(&4));
        assert!(report.gauges.contains_key("dataset.string_pool_bytes"));
    }

    #[test]
    fn flatten_is_deterministic() {
        let d = sample();
        assert_eq!(
            ColumnarDataset::from_dataset(&d).unwrap(),
            ColumnarDataset::from_dataset(&d).unwrap()
        );
    }
}
