//! Merging crawls.
//!
//! Snowball crawls from different seed sets (or the same crawl re-run
//! weeks apart) overlap heavily; the original study combined top-chart
//! seeds from 25 countries into one corpus. [`merge`] combines any
//! number of raw datasets, deduplicating by platform key and keeping,
//! for each video, the record with the richest metadata — a later
//! crawl may have caught a popularity chart that failed the first
//! time.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DatasetError;
use crate::record::{RawPopularity, VideoRecord};

/// Metadata richness used to pick among duplicate records: a usable
/// popularity vector is worth more than tags, which are worth more
/// than nothing.
fn richness(record: &VideoRecord) -> u32 {
    let mut score = 0;
    if !record.tags.is_empty() {
        score += 1;
    }
    score += match &record.popularity {
        RawPopularity::Missing => 0,
        RawPopularity::Corrupt(_) => 1,
        RawPopularity::Valid(pop) if !pop.has_signal() => 2,
        RawPopularity::Valid(_) => 4,
    };
    score
}

/// Merges datasets, deduplicating by key.
///
/// For duplicate keys the record with the highest metadata richness
/// wins; ties go to the earliest dataset (first crawl wins, as in the
/// builder). Tag strings are re-interned, so ids from the inputs do
/// not carry over.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] (with a synthetic line number of 0)
/// if the inputs disagree on the world size — merging crawls made
/// against different country registries is meaningless.
pub fn merge(datasets: &[&Dataset]) -> Result<Dataset, DatasetError> {
    let country_count = datasets.first().map(|d| d.country_count()).unwrap_or(0);
    if let Some(bad) = datasets.iter().find(|d| d.country_count() != country_count) {
        return Err(DatasetError::Parse {
            line: 0,
            message: format!(
                "cannot merge datasets with different world sizes ({} vs {})",
                country_count,
                bad.country_count()
            ),
        });
    }

    // First pass: pick the winning source for every key, in
    // first-seen order.
    let mut order: Vec<(usize, crate::record::VideoId)> = Vec::new();
    let mut winner: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (di, dataset) in datasets.iter().enumerate() {
        for record in dataset.iter() {
            match winner.get(record.key.as_str()) {
                None => {
                    winner.insert(&record.key, order.len());
                    order.push((di, record.id));
                }
                Some(&slot) => {
                    let (wdi, wid) = order[slot];
                    let current = datasets[wdi].video(wid);
                    if richness(record) > richness(current) {
                        order[slot] = (di, record.id);
                    }
                }
            }
        }
    }

    // Second pass: rebuild in stable order.
    let mut builder = DatasetBuilder::new(country_count);
    for (di, id) in order {
        let record = datasets[di].video(id);
        let tag_names: Vec<&str> = record
            .tags
            .iter()
            .map(|&t| datasets[di].tags().name(t))
            .collect();
        builder.push_video_titled(
            &record.key,
            &record.title,
            record.total_views,
            &tag_names,
            record.popularity.clone(),
        );
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(v: Vec<u8>) -> RawPopularity {
        RawPopularity::decode(v, 2)
    }

    #[test]
    fn disjoint_datasets_concatenate() {
        let mut a = DatasetBuilder::new(2);
        a.push_video("x", 1, &["t1"], pop(vec![61, 0]));
        let mut b = DatasetBuilder::new(2);
        b.push_video("y", 2, &["t2"], pop(vec![0, 61]));
        let (a, b) = (a.build(), b.build());
        let merged = merge(&[&a, &b]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.by_key("x").unwrap().total_views, 1);
        assert_eq!(merged.by_key("y").unwrap().total_views, 2);
        assert_eq!(merged.tags().len(), 2);
    }

    #[test]
    fn richer_duplicate_wins() {
        let mut first = DatasetBuilder::new(2);
        first.push_video("dup", 10, &["t"], RawPopularity::Missing);
        let mut second = DatasetBuilder::new(2);
        second.push_video("dup", 99, &["t"], pop(vec![61, 0]));
        let (first, second) = (first.build(), second.build());
        let merged = merge(&[&first, &second]).unwrap();
        assert_eq!(merged.len(), 1);
        let rec = merged.by_key("dup").unwrap();
        assert_eq!(rec.total_views, 99, "the record with a chart wins");
        assert!(rec.popularity.usable().is_some());
    }

    #[test]
    fn equal_richness_prefers_the_first_crawl() {
        let mut first = DatasetBuilder::new(2);
        first.push_video("dup", 10, &["t"], pop(vec![61, 0]));
        let mut second = DatasetBuilder::new(2);
        second.push_video("dup", 99, &["t"], pop(vec![0, 61]));
        let (first, second) = (first.build(), second.build());
        let merged = merge(&[&first, &second]).unwrap();
        assert_eq!(merged.by_key("dup").unwrap().total_views, 10);
    }

    #[test]
    fn richness_ordering_is_sane() {
        let make = |tags: &[&str], p: RawPopularity| VideoRecord {
            id: crate::record::VideoId::from_index(0),
            key: "k".into(),
            title: String::new(),
            total_views: 0,
            tags: tags
                .iter()
                .enumerate()
                .map(|(i, _)| crate::tag::TagId::from_index(i))
                .collect(),
            popularity: p,
        };
        let clean = make(&["t"], pop(vec![61, 0]));
        let empty_chart = make(&["t"], pop(vec![0, 0]));
        let corrupt = make(&["t"], pop(vec![99, 0]));
        let missing = make(&["t"], RawPopularity::Missing);
        let bare = make(&[], RawPopularity::Missing);
        assert!(richness(&clean) > richness(&empty_chart));
        assert!(richness(&empty_chart) > richness(&corrupt));
        assert!(richness(&corrupt) > richness(&missing));
        assert!(richness(&missing) > richness(&bare));
    }

    #[test]
    fn merge_order_is_first_seen() {
        let mut a = DatasetBuilder::new(2);
        a.push_video("one", 1, &["t"], RawPopularity::Missing);
        a.push_video("two", 2, &["t"], RawPopularity::Missing);
        let mut b = DatasetBuilder::new(2);
        b.push_video("two", 2, &["t"], pop(vec![61, 0])); // upgraded in place
        b.push_video("three", 3, &["t"], RawPopularity::Missing);
        let (a, b) = (a.build(), b.build());
        let merged = merge(&[&a, &b]).unwrap();
        let keys: Vec<&str> = merged.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys, vec!["one", "two", "three"]);
        assert!(merged.by_key("two").unwrap().popularity.usable().is_some());
    }

    #[test]
    fn mismatched_world_sizes_error() {
        let a = DatasetBuilder::new(2).build();
        let b = DatasetBuilder::new(3).build();
        assert!(merge(&[&a, &b]).is_err());
    }

    #[test]
    fn merging_nothing_is_empty() {
        let merged = merge(&[]).unwrap();
        assert!(merged.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pop() -> impl Strategy<Value = RawPopularity> {
        prop_oneof![
            Just(RawPopularity::Missing),
            proptest::collection::vec(0u8..=61, 2..=2).prop_map(|v| RawPopularity::decode(v, 2)),
            proptest::collection::vec(0u8..=255, 0..5).prop_map(|v| RawPopularity::decode(v, 2)),
        ]
    }

    proptest! {
        /// Merging a dataset with itself is the identity (up to dense
        /// re-interning).
        #[test]
        fn self_merge_is_identity(
            videos in proptest::collection::vec(
                ("[a-z0-9]{1,8}", 0u64..1_000,
                 proptest::collection::vec("[a-z]{1,6}", 0..4), arb_pop()),
                0..15
            )
        ) {
            let mut b = DatasetBuilder::new(2);
            for (key, views, tags, pop) in &videos {
                let refs: Vec<&str> = tags.iter().map(String::as_str).collect();
                b.push_video(key, *views, &refs, pop.clone());
            }
            let d = b.build();
            let merged = merge(&[&d, &d]).unwrap();
            prop_assert_eq!(merged.len(), d.len());
            for (a, m) in d.iter().zip(merged.iter()) {
                prop_assert_eq!(&a.key, &m.key);
                prop_assert_eq!(a.total_views, m.total_views);
                prop_assert_eq!(&a.popularity, &m.popularity);
            }
        }

        /// Merge never loses a key and never duplicates one.
        #[test]
        fn merge_key_set_is_the_union(
            a_keys in proptest::collection::hash_set("[a-z]{1,4}", 0..10),
            b_keys in proptest::collection::hash_set("[a-z]{1,4}", 0..10)
        ) {
            let build = |keys: &std::collections::HashSet<String>| {
                let mut b = DatasetBuilder::new(1);
                for k in keys {
                    b.push_video(k, 1, &["t"], RawPopularity::Missing);
                }
                b.build()
            };
            let da = build(&a_keys);
            let db = build(&b_keys);
            let merged = merge(&[&da, &db]).unwrap();
            let union: std::collections::HashSet<_> =
                a_keys.union(&b_keys).cloned().collect();
            prop_assert_eq!(merged.len(), union.len());
            for key in &union {
                prop_assert!(merged.by_key(key).is_some());
            }
        }
    }
}
