//! Individual crawled-video records.

use core::fmt;

use tagdist_geo::PopularityVector;

use crate::tag::TagId;

/// Identifier of a video inside a [`Dataset`](crate::Dataset).
///
/// Real YouTube ids are 11-character strings; the dataset keeps those
/// as the record's `key` and uses this dense index for cross-references
/// (related-video edges, tag postings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VideoId(u32);

impl VideoId {
    /// Creates a video id from a raw dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — a silent `as` cast here
    /// would wrap and alias two videos under one id.
    pub fn from_index(index: usize) -> VideoId {
        assert!(
            u32::try_from(index).is_ok(),
            "video index {index} overflows the u32 id space"
        );
        VideoId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<VideoId> for usize {
    fn from(id: VideoId) -> usize {
        id.index()
    }
}

/// The per-country popularity data exactly as a crawler scraped it.
///
/// The paper (§2) reports that "not all videos have a complete set of
/// metadata": 6,736 videos carried no tags and roughly a third carried
/// "an incorrect or empty popularity vector". This enum keeps the raw
/// observation so the filtering step — not the crawler — decides what
/// is usable, mirroring the paper's offline pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RawPopularity {
    /// No popularity map was served for the video.
    Missing,
    /// A map was served but could not be decoded into per-country
    /// intensities (wrong country count, out-of-range values, …). The
    /// raw bytes are retained for diagnosis.
    Corrupt(Vec<u8>),
    /// A structurally valid 0–61 intensity vector.
    Valid(PopularityVector),
}

impl RawPopularity {
    /// Decodes raw scraped intensities, classifying them as
    /// [`RawPopularity::Valid`] or [`RawPopularity::Corrupt`].
    ///
    /// A vector is valid when it has exactly `expected_len` entries,
    /// all within `[0, 61]`.
    pub fn decode(raw: Vec<u8>, expected_len: usize) -> RawPopularity {
        if raw.len() != expected_len {
            return RawPopularity::Corrupt(raw);
        }
        match PopularityVector::from_raw_or_reclaim(raw) {
            Ok(pop) => RawPopularity::Valid(pop),
            Err(raw) => RawPopularity::Corrupt(raw),
        }
    }

    /// Returns the validated vector, if any.
    ///
    /// An all-zero ("empty") map is structurally valid but carries no
    /// signal; the paper discards those in filtering, which
    /// [`usable`](RawPopularity::usable) reflects.
    pub fn valid(&self) -> Option<&PopularityVector> {
        match self {
            RawPopularity::Valid(pop) => Some(pop),
            _ => None,
        }
    }

    /// Returns the vector if it is valid *and* carries signal — the
    /// paper's "correct and non-empty" criterion.
    pub fn usable(&self) -> Option<&PopularityVector> {
        self.valid().filter(|pop| pop.has_signal())
    }
}

/// One crawled video, with metadata as observed (§2 of the paper).
///
/// Passive data: fields are public. Tags are interned against the
/// owning [`Dataset`](crate::Dataset)'s
/// [`TagInterner`](crate::TagInterner).
#[derive(Debug, Clone, PartialEq)]
pub struct VideoRecord {
    /// Dense id within the dataset.
    pub id: VideoId,
    /// The platform's external key (YouTube's 11-character id).
    pub key: String,
    /// Display title (the paper's dataset records one per video).
    pub title: String,
    /// Total number of views, worldwide (the paper's `views(v)`).
    pub total_views: u64,
    /// Interned tags, in upload order, without duplicates.
    pub tags: Vec<TagId>,
    /// Scraped per-country popularity (the paper's `pop(v)`).
    pub popularity: RawPopularity,
}

impl VideoRecord {
    /// Returns `true` if the record survives the paper's §2 filter:
    /// it has at least one tag and a usable popularity vector.
    pub fn is_clean(&self) -> bool {
        !self.tags.is_empty() && self.popularity.usable().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_accepts_well_formed_vectors() {
        let raw = vec![0u8, 61, 30];
        match RawPopularity::decode(raw.clone(), 3) {
            RawPopularity::Valid(pop) => assert_eq!(pop.as_slice(), &raw[..]),
            other => panic!("expected valid, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(matches!(
            RawPopularity::decode(vec![1, 2], 3),
            RawPopularity::Corrupt(_)
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_intensities() {
        assert!(matches!(
            RawPopularity::decode(vec![62], 1),
            RawPopularity::Corrupt(_)
        ));
    }

    #[test]
    fn usable_requires_signal() {
        let dark = RawPopularity::decode(vec![0, 0], 2);
        assert!(dark.valid().is_some());
        assert!(dark.usable().is_none(), "all-zero map is 'empty'");
        let lit = RawPopularity::decode(vec![0, 9], 2);
        assert!(lit.usable().is_some());
    }

    #[test]
    fn missing_is_never_usable() {
        assert!(RawPopularity::Missing.valid().is_none());
        assert!(RawPopularity::Missing.usable().is_none());
    }

    #[test]
    fn record_cleanliness() {
        let clean = VideoRecord {
            id: VideoId::from_index(0),
            key: "abc".into(),
            title: "a title".into(),
            total_views: 10,
            tags: vec![TagId::from_index(0)],
            popularity: RawPopularity::decode(vec![61], 1),
        };
        assert!(clean.is_clean());
        let tagless = VideoRecord {
            tags: vec![],
            ..clean.clone()
        };
        assert!(!tagless.is_clean());
        let no_map = VideoRecord {
            popularity: RawPopularity::Missing,
            ..clean
        };
        assert!(!no_map.is_clean());
    }

    #[test]
    fn video_id_display() {
        assert_eq!(VideoId::from_index(5).to_string(), "v5");
    }

    #[test]
    fn video_id_round_trips_at_the_u32_boundary() {
        let max = u32::MAX as usize;
        assert_eq!(VideoId::from_index(max).index(), max);
    }

    #[test]
    #[should_panic(expected = "overflows the u32 id space")]
    fn video_id_overflow_panics_instead_of_wrapping() {
        let _ = VideoId::from_index(u32::MAX as usize + 1);
    }
}
