//! The raw crawl result: a collection of [`VideoRecord`]s plus the tag
//! interner and lookup indices.

use std::collections::HashMap;

use crate::record::{RawPopularity, VideoId, VideoRecord};
use crate::tag::{TagId, TagInterner};

/// An as-crawled dataset (pre-filtering), analogous to the paper's
/// 1,063,844-video corpus.
///
/// Construction goes through [`DatasetBuilder`], which interns tags
/// and assigns dense [`VideoId`]s. Once built, the dataset is
/// immutable; lookup indices (tag → videos) are built once at
/// construction.
#[derive(Debug, Clone)]
pub struct Dataset {
    videos: Vec<VideoRecord>,
    tags: TagInterner,
    tag_postings: Vec<Vec<VideoId>>,
    keys: HashMap<String, VideoId>,
    country_count: usize,
}

impl Dataset {
    /// Number of crawled videos.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Returns `true` if the dataset contains no videos.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Number of countries each popularity vector is expected to
    /// cover (the world size the crawl ran against).
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// Returns the record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this dataset.
    pub fn video(&self, id: VideoId) -> &VideoRecord {
        &self.videos[id.index()]
    }

    /// Looks a video up by its external platform key.
    pub fn by_key(&self, key: &str) -> Option<&VideoRecord> {
        self.keys.get(key).map(|&id| self.video(id))
    }

    /// Iterates over all records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &VideoRecord> {
        self.videos.iter()
    }

    /// The tag interner shared by all records.
    pub fn tags(&self) -> &TagInterner {
        &self.tags
    }

    /// All videos carrying `tag`, in id order (the paper's
    /// `videos(t)` of Eq. 3).
    pub fn videos_with_tag(&self, tag: TagId) -> &[VideoId] {
        self.tag_postings
            .get(tag.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The record with the most total views, if any — the paper's
    /// Fig. 1 subject (*Justin Bieber – Baby* in the original data).
    pub fn most_viewed(&self) -> Option<&VideoRecord> {
        self.videos.iter().max_by_key(|v| v.total_views)
    }

    /// Sum of `total_views` over all records.
    pub fn total_views(&self) -> u128 {
        self.videos.iter().map(|v| v.total_views as u128).sum()
    }

    /// Assembles a dataset from already-validated parts (the binary
    /// columnar load path). Records must carry dense ids in vector
    /// order with tag ids valid for `tags`; the key index and tag
    /// postings are rebuilt here, skipping the per-record interning a
    /// [`DatasetBuilder`] replay would pay.
    pub(crate) fn from_parts(
        videos: Vec<VideoRecord>,
        tags: TagInterner,
        country_count: usize,
    ) -> Dataset {
        let mut keys = HashMap::with_capacity(videos.len());
        for video in &videos {
            keys.insert(video.key.clone(), video.id);
        }
        let mut tag_postings = vec![Vec::new(); tags.len()];
        for video in &videos {
            for &tag in &video.tags {
                tag_postings[tag.index()].push(video.id);
            }
        }
        Dataset {
            videos,
            tags,
            tag_postings,
            keys,
            country_count,
        }
    }
}

/// Incremental constructor for [`Dataset`].
///
/// # Example
///
/// ```
/// use tagdist_dataset::{DatasetBuilder, RawPopularity};
///
/// let mut b = DatasetBuilder::new(60);
/// let id = b.push_video("abc", 1000, &["music", "live"], RawPopularity::Missing);
/// let d = b.build();
/// assert_eq!(d.video(id).total_views, 1000);
/// assert_eq!(d.videos_with_tag(d.tags().id("music").unwrap()), &[id]);
/// ```
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    videos: Vec<VideoRecord>,
    tags: TagInterner,
    keys: HashMap<String, VideoId>,
    country_count: usize,
}

impl DatasetBuilder {
    /// Creates a builder for a world of `country_count` countries.
    pub fn new(country_count: usize) -> DatasetBuilder {
        DatasetBuilder {
            country_count,
            ..DatasetBuilder::default()
        }
    }

    /// Number of videos added so far.
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Returns `true` if no videos have been added.
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Returns `true` if a video with this platform key was already
    /// added (snowball crawls revisit videos frequently).
    pub fn contains_key(&self, key: &str) -> bool {
        self.keys.contains_key(key)
    }

    /// Adds a video with an empty title; see
    /// [`push_video_titled`](DatasetBuilder::push_video_titled).
    pub fn push_video(
        &mut self,
        key: &str,
        total_views: u64,
        tags: &[&str],
        popularity: RawPopularity,
    ) -> VideoId {
        self.push_video_titled(key, "", total_views, tags, popularity)
    }

    /// Adds a video, interning its tags (empty tags are dropped,
    /// duplicates collapsed) and assigning the next dense id.
    ///
    /// If the key was already added, the existing id is returned and
    /// the record is left unchanged (first crawl wins, as in a
    /// visited-set crawler).
    pub fn push_video_titled(
        &mut self,
        key: &str,
        title: &str,
        total_views: u64,
        tags: &[&str],
        popularity: RawPopularity,
    ) -> VideoId {
        if let Some(&existing) = self.keys.get(key) {
            return existing;
        }
        let id = VideoId::from_index(self.videos.len());
        let mut tag_ids = Vec::with_capacity(tags.len());
        for tag in tags {
            if let Some(tid) = self.tags.intern(tag) {
                if !tag_ids.contains(&tid) {
                    tag_ids.push(tid);
                }
            }
        }
        self.videos.push(VideoRecord {
            id,
            key: key.to_owned(),
            title: title.to_owned(),
            total_views,
            tags: tag_ids,
            popularity,
        });
        self.keys.insert(key.to_owned(), id);
        id
    }

    /// Re-adds every record of `dataset` in id order, preserving keys,
    /// titles, views, tag sets and popularity bytes.
    ///
    /// Because ids are dense and tags are interned in first-seen
    /// order, extending an *empty* builder reproduces `dataset`
    /// exactly — the resume path of a checkpointed crawl relies on
    /// this to stay byte-identical with an uninterrupted run.
    pub fn extend_from(&mut self, dataset: &Dataset) {
        for video in dataset.iter() {
            let tag_names: Vec<&str> = video.tags.iter().map(|&t| dataset.tags().name(t)).collect();
            self.push_video_titled(
                &video.key,
                &video.title,
                video.total_views,
                &tag_names,
                video.popularity.clone(),
            );
        }
    }

    /// Finalizes the dataset, building the tag→videos index.
    pub fn build(self) -> Dataset {
        let mut tag_postings = vec![Vec::new(); self.tags.len()];
        for video in &self.videos {
            for &tag in &video.tags {
                tag_postings[tag.index()].push(video.id);
            }
        }
        Dataset {
            videos: self.videos,
            tags: self.tags,
            tag_postings,
            keys: self.keys,
            country_count: self.country_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new(3);
        b.push_video(
            "k1",
            100,
            &["pop", "music"],
            RawPopularity::decode(vec![61, 0, 5], 3),
        );
        b.push_video("k2", 900, &["pop"], RawPopularity::Missing);
        b.push_video("k3", 50, &[], RawPopularity::decode(vec![0, 61, 0], 3));
        b.build()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let d = sample();
        assert_eq!(d.len(), 3);
        for (i, v) in d.iter().enumerate() {
            assert_eq!(v.id.index(), i);
        }
    }

    #[test]
    fn duplicate_keys_return_existing_id() {
        let mut b = DatasetBuilder::new(1);
        let a = b.push_video("same", 1, &["x"], RawPopularity::Missing);
        let b2 = b.push_video("same", 999, &["y"], RawPopularity::Missing);
        assert_eq!(a, b2);
        let d = b.build();
        assert_eq!(d.len(), 1);
        assert_eq!(d.video(a).total_views, 1, "first crawl wins");
    }

    #[test]
    fn tag_postings_cover_all_carriers() {
        let d = sample();
        let pop = d.tags().id("pop").unwrap();
        assert_eq!(d.videos_with_tag(pop).len(), 2);
        let music = d.tags().id("music").unwrap();
        assert_eq!(d.videos_with_tag(music).len(), 1);
    }

    #[test]
    fn duplicate_tags_on_one_video_collapse() {
        let mut b = DatasetBuilder::new(1);
        let id = b.push_video("k", 1, &["rock", "Rock", " rock "], RawPopularity::Missing);
        let d = b.build();
        assert_eq!(d.video(id).tags.len(), 1);
        let rock = d.tags().id("rock").unwrap();
        assert_eq!(d.videos_with_tag(rock), &[id]);
    }

    #[test]
    fn most_viewed_and_totals() {
        let d = sample();
        assert_eq!(d.most_viewed().unwrap().key, "k2");
        assert_eq!(d.total_views(), 1050);
        assert!(DatasetBuilder::new(1).build().most_viewed().is_none());
    }

    #[test]
    fn by_key_lookup() {
        let d = sample();
        assert_eq!(d.by_key("k3").unwrap().total_views, 50);
        assert!(d.by_key("nope").is_none());
    }

    #[test]
    fn country_count_is_preserved() {
        assert_eq!(sample().country_count(), 3);
    }

    #[test]
    fn extend_from_reproduces_a_dataset_exactly() {
        let d = sample();
        let mut b = DatasetBuilder::new(d.country_count());
        b.extend_from(&d);
        let r = b.build();
        assert_eq!(r.len(), d.len());
        assert_eq!(r.country_count(), d.country_count());
        for (a, b) in d.iter().zip(r.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.key, b.key);
            assert_eq!(a.total_views, b.total_views);
            assert_eq!(a.tags, b.tags, "tag ids survive re-interning");
            assert_eq!(a.popularity, b.popularity);
        }
        // Serialized forms are byte-identical.
        let mut original = Vec::new();
        let mut rebuilt = Vec::new();
        crate::tsv::write(&d, &mut original).unwrap();
        crate::tsv::write(&r, &mut rebuilt).unwrap();
        assert_eq!(original, rebuilt);
    }

    #[test]
    fn titles_are_stored_when_provided() {
        let mut b = DatasetBuilder::new(1);
        let plain = b.push_video("p", 1, &["x"], RawPopularity::Missing);
        let titled =
            b.push_video_titled("t", "Baby ft. Ludacris", 2, &["x"], RawPopularity::Missing);
        let d = b.build();
        assert_eq!(d.video(plain).title, "");
        assert_eq!(d.video(titled).title, "Baby ft. Ludacris");
    }
}
