//! Dataset subsampling.
//!
//! Paper-scale corpora are slow to iterate on; analyses are normally
//! prototyped on subsamples. Uniform sampling under-represents the
//! heavy tail of view counts (one *Baby ft. Ludacris* carries more
//! views than hundreds of thousands of niche videos together), so a
//! views-stratified sampler is provided alongside uniform and top-N.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::record::VideoRecord;

fn rebuild(dataset: &Dataset, picks: &[&VideoRecord]) -> Dataset {
    let mut builder = DatasetBuilder::new(dataset.country_count());
    for record in picks {
        let tags: Vec<&str> = record
            .tags
            .iter()
            .map(|&t| dataset.tags().name(t))
            .collect();
        builder.push_video_titled(
            &record.key,
            &record.title,
            record.total_views,
            &tags,
            record.popularity.clone(),
        );
    }
    builder.build()
}

/// Uniformly samples `n` videos without replacement (seeded); returns
/// the whole dataset if `n >= len`. Original relative order is kept,
/// so repeated sampling with growing `n` is monotone in content but
/// ids are reassigned densely.
pub fn sample_uniform(dataset: &Dataset, n: usize, seed: u64) -> Dataset {
    if n >= dataset.len() {
        let picks: Vec<&VideoRecord> = dataset.iter().collect();
        return rebuild(dataset, &picks);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    indices.sort_unstable();
    let picks: Vec<&VideoRecord> = indices
        .into_iter()
        .map(|i| dataset.video(crate::record::VideoId::from_index(i)))
        .collect();
    rebuild(dataset, &picks)
}

/// Keeps the `n` most-viewed videos (ties broken towards earlier
/// records), in original order.
pub fn sample_top_views(dataset: &Dataset, n: usize) -> Dataset {
    let mut ranked: Vec<&VideoRecord> = dataset.iter().collect();
    ranked.sort_by(|a, b| b.total_views.cmp(&a.total_views).then(a.id.cmp(&b.id)));
    ranked.truncate(n);
    ranked.sort_by_key(|r| r.id);
    rebuild(dataset, &ranked)
}

/// Views-stratified sample: splits the corpus into `strata` view-count
/// bands of equal population and draws `n / strata` videos uniformly
/// from each, preserving the head-to-tail spectrum.
///
/// # Panics
///
/// Panics if `strata` is zero.
pub fn sample_stratified(dataset: &Dataset, n: usize, strata: usize, seed: u64) -> Dataset {
    assert!(strata > 0, "need at least one stratum");
    if n >= dataset.len() {
        let picks: Vec<&VideoRecord> = dataset.iter().collect();
        return rebuild(dataset, &picks);
    }
    let mut ranked: Vec<&VideoRecord> = dataset.iter().collect();
    ranked.sort_by(|a, b| b.total_views.cmp(&a.total_views).then(a.id.cmp(&b.id)));

    let mut rng = StdRng::seed_from_u64(seed);
    let per_stratum = n.div_ceil(strata);
    let stratum_size = ranked.len().div_ceil(strata);
    let mut picks: Vec<&VideoRecord> = Vec::with_capacity(n);
    for chunk in ranked.chunks(stratum_size.max(1)) {
        let mut local: Vec<&VideoRecord> = chunk.to_vec();
        local.shuffle(&mut rng);
        picks.extend(local.into_iter().take(per_stratum));
        if picks.len() >= n {
            break;
        }
    }
    picks.truncate(n);
    picks.sort_by_key(|r| r.id);
    rebuild(dataset, &picks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RawPopularity;

    fn corpus(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(1);
        for i in 0..n {
            // Heavy-tailed-ish views: quadratic in index.
            let views = ((n - i) * (n - i)) as u64;
            b.push_video(
                &format!("v{i}"),
                views,
                &["t", &format!("u{i}")],
                RawPopularity::decode(vec![61], 1),
            );
        }
        b.build()
    }

    #[test]
    fn uniform_sample_has_requested_size_and_provenance() {
        let d = corpus(100);
        let s = sample_uniform(&d, 30, 1);
        assert_eq!(s.len(), 30);
        for v in s.iter() {
            let original = d.by_key(&v.key).expect("sampled from the corpus");
            assert_eq!(original.total_views, v.total_views);
        }
    }

    #[test]
    fn uniform_sample_is_seeded() {
        let d = corpus(100);
        let a = sample_uniform(&d, 20, 7);
        let b = sample_uniform(&d, 20, 7);
        let keys = |x: &Dataset| x.iter().map(|v| v.key.clone()).collect::<Vec<_>>();
        assert_eq!(keys(&a), keys(&b));
        let c = sample_uniform(&d, 20, 8);
        assert_ne!(keys(&a), keys(&c));
    }

    #[test]
    fn oversampling_returns_everything() {
        let d = corpus(10);
        assert_eq!(sample_uniform(&d, 50, 1).len(), 10);
        assert_eq!(sample_stratified(&d, 50, 4, 1).len(), 10);
    }

    #[test]
    fn top_views_keeps_the_head() {
        let d = corpus(50);
        let s = sample_top_views(&d, 5);
        assert_eq!(s.len(), 5);
        let keys: Vec<&str> = s.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys, vec!["v0", "v1", "v2", "v3", "v4"]);
    }

    #[test]
    fn stratified_covers_head_and_tail() {
        let d = corpus(100);
        let s = sample_stratified(&d, 20, 4, 3);
        assert_eq!(s.len(), 20);
        let max = s.iter().map(|v| v.total_views).max().unwrap();
        let min = s.iter().map(|v| v.total_views).min().unwrap();
        // Head stratum (views ≥ (75)² = 5625) and tail stratum
        // (views ≤ 25² = 625) must both be present.
        assert!(max >= 5_625, "head missing: max {max}");
        assert!(min <= 625, "tail missing: min {min}");
    }

    #[test]
    fn samples_reintern_tags_densely() {
        let d = corpus(100);
        let s = sample_uniform(&d, 10, 2);
        // 10 videos × unique tag + shared "t".
        assert_eq!(s.tags().len(), 11);
        for (i, (tag, _)) in s.tags().iter().enumerate() {
            assert_eq!(tag.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "stratum")]
    fn zero_strata_panics() {
        let d = corpus(10);
        let _ = sample_stratified(&d, 5, 0, 1);
    }
}
