//! Tag interning.
//!
//! The paper's filtered dataset associates 691,349 videos with 705,415
//! *unique* tags — a long-tailed vocabulary where most tags occur once.
//! Interning maps each distinct tag string to a dense [`TagId`] so the
//! per-tag aggregation of Eq. 3 can run over flat arrays.

use core::fmt;
use std::collections::HashMap;

/// Compact identifier of an interned tag.
///
/// Ids are dense (0‥[`TagInterner::len`]) in first-seen order, so they
/// double as indices into per-tag arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(u32);

impl TagId {
    /// Creates a tag id from a raw dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — a silent `as` cast here
    /// would wrap and alias two tags under one id.
    pub fn from_index(index: usize) -> TagId {
        assert!(
            u32::try_from(index).is_ok(),
            "tag index {index} overflows the u32 id space"
        );
        TagId(index as u32)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<TagId> for usize {
    fn from(id: TagId) -> usize {
        id.index()
    }
}

/// Bidirectional map between tag strings and dense [`TagId`]s.
///
/// Tag strings are normalized to lowercase with surrounding whitespace
/// trimmed, matching the common YouTube practice of case-insensitive
/// tags; empty strings are rejected by [`TagInterner::intern`].
///
/// # Example
///
/// ```
/// use tagdist_dataset::TagInterner;
///
/// let mut tags = TagInterner::new();
/// let pop = tags.intern("Pop").unwrap();
/// assert_eq!(tags.intern("pop"), Some(pop)); // case-insensitive
/// assert_eq!(tags.name(pop), "pop");
/// assert_eq!(tags.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TagInterner {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl PartialEq for TagInterner {
    /// Two interners are equal when they hold the same names in the
    /// same id order (the reverse map is derived from the names, so
    /// comparing it would be redundant).
    fn eq(&self, other: &TagInterner) -> bool {
        self.names == other.names
    }
}

impl Eq for TagInterner {}

impl TagInterner {
    /// Creates an empty interner.
    pub fn new() -> TagInterner {
        TagInterner::default()
    }

    /// Number of distinct tags interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no tags have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns a tag, returning its id, or `None` if the tag is empty
    /// after normalization (trim + lowercase).
    pub fn intern(&mut self, tag: &str) -> Option<TagId> {
        let trimmed = tag.trim();
        if trimmed.is_empty() {
            return None;
        }
        // Fast path: every stored name is a `to_lowercase` fixed point,
        // so a borrowed hit on the trimmed input proves it is already
        // normalized — no lowercase allocation for the common case of
        // pre-interned tags arriving from the simulator.
        if let Some(&id) = self.ids.get(trimmed) {
            return Some(id);
        }
        let normalized = trimmed.to_lowercase();
        if let Some(&id) = self.ids.get(&normalized) {
            return Some(id);
        }
        let id = TagId::from_index(self.names.len());
        self.names.push(normalized.clone());
        self.ids.insert(normalized, id);
        Some(id)
    }

    /// Rebuilds an interner from an ordered name list (the binary
    /// format's tag-name pool). Names must already be normalized and
    /// distinct; `id(name)` then maps each back to its dense position.
    pub(crate) fn from_names(names: Vec<String>) -> TagInterner {
        let ids = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TagId::from_index(i)))
            .collect();
        TagInterner { names, ids }
    }

    /// Looks up a tag without interning it.
    pub fn id(&self, tag: &str) -> Option<TagId> {
        self.ids.get(&Self::normalize(tag)).copied()
    }

    /// Returns the normalized name of an interned tag.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.index()]
    }

    /// Iterates over `(TagId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId::from_index(i), n.as_str()))
    }

    fn normalize(tag: &str) -> String {
        tag.trim().to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_id_round_trips_at_the_u32_boundary() {
        let max = u32::MAX as usize;
        assert_eq!(TagId::from_index(max).index(), max);
    }

    #[test]
    #[should_panic(expected = "overflows the u32 id space")]
    fn tag_id_overflow_panics_instead_of_wrapping() {
        let _ = TagId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = TagInterner::new();
        let a = t.intern("music").unwrap();
        let b = t.intern("music").unwrap();
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn normalization_folds_case_and_whitespace() {
        let mut t = TagInterner::new();
        let a = t.intern("  Favela ").unwrap();
        assert_eq!(t.name(a), "favela");
        assert_eq!(t.id("FAVELA"), Some(a));
    }

    #[test]
    fn empty_tags_are_rejected() {
        let mut t = TagInterner::new();
        assert_eq!(t.intern(""), None);
        assert_eq!(t.intern("   "), None);
        assert!(t.is_empty());
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut t = TagInterner::new();
        let ids: Vec<TagId> = ["a", "b", "c"]
            .iter()
            .map(|s| t.intern(s).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        let collected: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn id_lookup_does_not_intern() {
        let t = TagInterner::new();
        assert_eq!(t.id("missing"), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn from_names_reproduces_an_interner() {
        let mut t = TagInterner::new();
        for tag in ["pop", "hip hop", "baile funk"] {
            t.intern(tag).unwrap();
        }
        let names: Vec<String> = t.iter().map(|(_, n)| n.to_owned()).collect();
        let mut r = TagInterner::from_names(names);
        assert_eq!(r.len(), t.len());
        for (id, name) in t.iter() {
            assert_eq!(r.id(name), Some(id));
            assert_eq!(r.name(id), name);
        }
        // Interning an existing name is a no-op on the rebuilt side.
        assert_eq!(r.intern("pop"), t.id("pop"));
        assert_eq!(r.len(), t.len());
    }

    #[test]
    fn fast_path_matches_slow_path_classification() {
        // Mixed-case and padded inputs still converge to one id.
        let mut t = TagInterner::new();
        let a = t.intern("Baile Funk").unwrap();
        assert_eq!(t.intern("baile funk"), Some(a));
        assert_eq!(t.intern("  baile funk  "), Some(a));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TagId::from_index(17).to_string(), "t17");
    }

    #[test]
    fn multi_word_tags_are_preserved() {
        // YouTube tags frequently contain spaces ("justin bieber").
        let mut t = TagInterner::new();
        let id = t.intern("Justin Bieber").unwrap();
        assert_eq!(t.name(id), "justin bieber");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn interning_round_trips(tags in proptest::collection::vec("[a-z0-9 ]{1,20}", 1..50)) {
            let mut interner = TagInterner::new();
            for tag in &tags {
                if let Some(id) = interner.intern(tag) {
                    prop_assert_eq!(interner.name(id), tag.trim().to_lowercase());
                    prop_assert_eq!(interner.id(tag), Some(id));
                }
            }
            // Dense ids.
            for (i, (id, _)) in interner.iter().enumerate() {
                prop_assert_eq!(id.index(), i);
            }
        }
    }
}
