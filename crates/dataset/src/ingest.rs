//! Streaming ingest: grow the clean working set batch by batch.
//!
//! The batch pipeline runs §2 filtering once, over the whole crawl.
//! [`CleanIngest`] is the incremental restatement: video batches (new
//! suffixes of a growing crawl, or whole separate datasets) are applied
//! as deltas — key-deduplicated, re-interned, filtered — onto the same
//! [`CleanBuilder`] column state a cold [`filter`](crate::filter::filter)
//! pass drives, and [`snapshot`](CleanIngest::snapshot) finalizes a
//! [`CleanDataset`] at any point mid-stream.
//!
//! # The equivalence argument
//!
//! After any sequence of batches, `snapshot()` equals
//! `filter(&concatenated)` — where *concatenated* is the one dataset a
//! [`DatasetBuilder`](crate::dataset::DatasetBuilder) replay of every
//! batch in order would build — field for field, because each
//! ingredient replays the cold path exactly:
//!
//! * **keys** — the builder's first-crawl-wins rule (duplicate keys
//!   return the existing record untouched) becomes a `seen` set here:
//!   a record whose key was already applied is skipped whole, before
//!   any interning, exactly where `push_video_titled` returns early.
//! * **tags** — the interner assigns dense ids in first-seen order, so
//!   re-interning each unique record's tag *names* in record order
//!   reproduces the concatenated dataset's ids (the invariant
//!   `extend_from` relies on). Tags are interned for every unique
//!   record — even ones the filter then drops — matching the raw
//!   vocabulary a cold build carries.
//! * **columns** — the filter predicate (no tags → `no_tags`, else
//!   unusable popularity → `bad_popularity`) runs per record in arrival
//!   order, appending survivors through the same [`CleanBuilder::push`]
//!   the cold path calls; `snapshot` clones the builder and runs the
//!   identical `finish` (counting-sorted postings included).

use std::collections::HashSet;

use crate::dataset::Dataset;
use crate::filter::{CleanBuilder, CleanDataset, FilterReport};
use crate::record::VideoId;
use crate::tag::{TagId, TagInterner};

/// Accounting for one applied batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestDelta {
    /// Clean positions `first_kept..first_kept + kept` are this batch's
    /// newly retained videos.
    pub first_kept: usize,
    /// Videos this batch added to the clean working set.
    pub kept: usize,
    /// Unique (not previously seen) records in the batch, kept or not.
    pub unique: usize,
    /// Records skipped because their key was already applied (first
    /// crawl wins).
    pub duplicates: usize,
}

/// Incremental §2 filtering state: the clean-dataset columns, interner
/// and key set of everything applied so far.
#[derive(Debug, Clone)]
pub struct CleanIngest {
    country_count: usize,
    tags: TagInterner,
    seen: HashSet<String>,
    builder: CleanBuilder,
}

impl CleanIngest {
    /// Creates an empty ingest state for a world of `country_count`
    /// countries.
    pub fn new(country_count: usize) -> CleanIngest {
        CleanIngest {
            country_count,
            tags: TagInterner::new(),
            seen: HashSet::new(),
            builder: CleanBuilder::new(country_count, 0),
        }
    }

    /// Applies a whole dataset as one batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` covers a different world size.
    pub fn apply(&mut self, batch: &Dataset) -> IngestDelta {
        self.apply_from(batch, 0)
    }

    /// Applies the records of `dataset` from position `from` onward —
    /// the natural delta of a monotonically growing crawl (checkpoint
    /// suspensions hand back the same dataset, longer).
    ///
    /// # Panics
    ///
    /// Panics if `dataset` covers a different world size.
    pub fn apply_from(&mut self, dataset: &Dataset, from: usize) -> IngestDelta {
        self.apply_range(dataset, from, dataset.len())
    }

    /// Applies the records `from..to` of `dataset` as one batch — the
    /// slicing a replayed file needs to re-stream a saved crawl in
    /// fixed-size batches.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` covers a different world size or the range
    /// is out of bounds.
    pub fn apply_range(&mut self, dataset: &Dataset, from: usize, to: usize) -> IngestDelta {
        assert_eq!(
            dataset.country_count(),
            self.country_count,
            "batch covers a different world size"
        );
        assert!(
            from <= to && to <= dataset.len(),
            "batch range {from}..{to} out of bounds for {} records",
            dataset.len()
        );
        let mut delta = IngestDelta {
            first_kept: self.kept(),
            ..IngestDelta::default()
        };
        let mut tag_ids = Vec::new();
        for index in from..to {
            let record = dataset.video(VideoId::from_index(index));
            if self.seen.contains(&record.key) {
                delta.duplicates += 1;
                continue;
            }
            self.seen.insert(record.key.clone());
            delta.unique += 1;
            // The id a DatasetBuilder replay of every batch would have
            // assigned: the next dense unique index.
            let id = VideoId::from_index(self.builder.report.crawled);
            self.builder.report.crawled += 1;
            // Re-intern by name so ids match the concatenated corpus'
            // first-seen order; record tag lists are already normalized
            // and deduplicated, so the mapping is 1:1.
            tag_ids.clear();
            tag_ids.extend(
                record
                    .tags
                    .iter()
                    .filter_map(|&t| self.tags.intern(dataset.tags().name(t))),
            );
            if tag_ids.is_empty() {
                self.builder.report.no_tags += 1;
                continue;
            }
            let Some(pop) = record.popularity.usable() else {
                self.builder.report.bad_popularity += 1;
                continue;
            };
            self.builder.push(
                id,
                &record.key,
                &record.title,
                record.total_views,
                tag_ids.iter().copied(),
                pop.as_slice(),
            );
            delta.kept += 1;
        }
        delta
    }

    /// World size of every popularity vector.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// Videos retained so far.
    pub fn kept(&self) -> usize {
        self.builder.views.len()
    }

    /// Unique records applied so far (kept or filtered).
    pub fn crawled(&self) -> usize {
        self.builder.report.crawled
    }

    /// The filtering accounting over everything applied so far.
    pub fn report(&self) -> FilterReport {
        FilterReport {
            kept: self.kept(),
            ..self.builder.report
        }
    }

    /// Interned tags so far (the raw vocabulary, dropped videos
    /// included).
    pub fn tag_count(&self) -> usize {
        self.tags.len()
    }

    /// Total views of the retained video at clean position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn views_at(&self, pos: usize) -> u64 {
        self.builder.views[pos]
    }

    /// Validated intensity bytes of the retained video at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn intensities_at(&self, pos: usize) -> &[u8] {
        assert!(pos < self.kept(), "position {pos} out of range");
        let cc = self.country_count;
        &self.builder.intensities[pos * cc..(pos + 1) * cc]
    }

    /// Interned tags of the retained video at `pos`, in upload order.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn tags_at(&self, pos: usize) -> &[TagId] {
        &self.builder.tag_ids[self.builder.tag_rows[pos]..self.builder.tag_rows[pos + 1]]
    }

    /// Finalizes the current state into a [`CleanDataset`], leaving the
    /// ingest ready for further batches.
    ///
    /// The clone-then-finish runs the exact column-write and
    /// counting-sort sequence of a cold [`filter`](crate::filter::filter)
    /// over the concatenated corpus, so the snapshot is equal to that
    /// rebuild field for field.
    pub fn snapshot(&self) -> CleanDataset {
        self.builder.clone().finish(self.tags.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::filter::filter;
    use crate::record::RawPopularity;

    fn corpus(n: usize, salt: usize) -> Dataset {
        let mut b = DatasetBuilder::new(3);
        for i in 0..n {
            let tags: Vec<String> = (0..(i + salt) % 4)
                .map(|t| format!("tag{}", (i + t) % 13))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            let pop = match i % 5 {
                0 => RawPopularity::Missing,
                1 => RawPopularity::decode(vec![0, 0, 0], 3),
                _ => RawPopularity::decode(vec![(i % 61) as u8, 30, 1], 3),
            };
            b.push_video_titled(
                &format!("v{}", i + salt * 1_000),
                &format!("title {i}"),
                (i * i % 9_999) as u64,
                &tag_refs,
                pop,
            );
        }
        b.build()
    }

    /// Concatenates datasets the way a resumed crawl would: one
    /// builder replaying every batch in order, first crawl winning.
    fn concat(batches: &[&Dataset]) -> Dataset {
        let mut b = DatasetBuilder::new(batches[0].country_count());
        for d in batches {
            b.extend_from(d);
        }
        b.build()
    }

    #[test]
    fn one_batch_snapshot_equals_cold_filter() {
        let d = corpus(120, 0);
        let mut ingest = CleanIngest::new(3);
        let delta = ingest.apply(&d);
        assert_eq!(delta.unique, 120);
        assert_eq!(delta.duplicates, 0);
        assert_eq!(ingest.snapshot(), filter(&d));
    }

    #[test]
    fn suffix_batches_equal_cold_filter() {
        let d = corpus(90, 0);
        let mut ingest = CleanIngest::new(3);
        // Apply as three growing-prefix deltas of the same dataset.
        for (from, to) in [(0, 30), (30, 31), (31, 90)] {
            let prefix = {
                let mut b = DatasetBuilder::new(3);
                for i in 0..to {
                    let v = d.video(VideoId::from_index(i));
                    let names: Vec<&str> = v.tags.iter().map(|&t| d.tags().name(t)).collect();
                    b.push_video_titled(&v.key, &v.title, v.total_views, &names, {
                        v.popularity.clone()
                    });
                }
                b.build()
            };
            let delta = ingest.apply_from(&prefix, from);
            assert_eq!(delta.unique, to - from);
        }
        assert_eq!(ingest.snapshot(), filter(&d));
    }

    #[test]
    fn overlapping_batches_keep_first_crawl() {
        let a = corpus(60, 0);
        let b = corpus(60, 20); // keys v20000.. overlap nothing; salt shifts keys
        let mut ingest = CleanIngest::new(3);
        ingest.apply(&a);
        let mid = ingest.apply(&a); // exact duplicate batch: all skipped
        assert_eq!(mid.unique, 0);
        assert_eq!(mid.duplicates, 60);
        assert_eq!(mid.kept, 0);
        ingest.apply(&b);
        assert_eq!(ingest.snapshot(), filter(&concat(&[&a, &a, &b])));
    }

    #[test]
    fn report_tracks_mid_stream_state() {
        let d = corpus(50, 1);
        let mut ingest = CleanIngest::new(3);
        ingest.apply(&d);
        let r = ingest.report();
        let cold = filter(&d).report();
        assert_eq!(r, cold);
        assert_eq!(ingest.crawled(), 50);
        assert_eq!(ingest.kept(), cold.kept);
    }

    #[test]
    fn accessors_match_the_snapshot_columns() {
        let d = corpus(40, 2);
        let mut ingest = CleanIngest::new(3);
        ingest.apply(&d);
        let snap = ingest.snapshot();
        assert_eq!(ingest.tag_count(), snap.tags().len());
        for pos in 0..snap.len() {
            assert_eq!(ingest.views_at(pos), snap.views_column()[pos]);
            assert_eq!(ingest.intensities_at(pos), snap.intensities_of(pos));
            assert_eq!(ingest.tags_at(pos), snap.tags_of(pos));
        }
    }

    #[test]
    fn empty_batches_are_harmless() {
        let empty = DatasetBuilder::new(3).build();
        let mut ingest = CleanIngest::new(3);
        let delta = ingest.apply(&empty);
        assert_eq!(delta, IngestDelta::default());
        let snap = ingest.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap, filter(&empty));
    }

    #[test]
    #[should_panic(expected = "different world size")]
    fn world_size_mismatch_panics() {
        let mut ingest = CleanIngest::new(2);
        ingest.apply(&corpus(3, 0));
    }
}
