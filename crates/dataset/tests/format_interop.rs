//! Cross-format interop suite: the TSV and `bin v1` binary columnar
//! codecs must agree on every dataset either of them can represent.
//!
//! Property tests drive arbitrary corpora — escape-heavy tag names,
//! missing and corrupt popularity vectors — through TSV → binary → TSV
//! and assert losslessness; determinism tests pin the binary encoding
//! byte for byte across repeated encodes and across
//! `TAGDIST_THREADS` settings; the error-path tests prove the decoder
//! rejects (never panics on) truncation, header corruption and payload
//! bit-flips.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, missing_docs)]

use proptest::prelude::*;
use tagdist_dataset::{
    binfmt, decode_any, filter, filter_columnar, sniff, tsv, write_binary, Dataset, DatasetBuilder,
    DatasetError, DatasetFormat, Mmap, RawPopularity,
};

/// Structural equality over everything both formats persist: order,
/// keys, titles, views, popularity bytes, and tag *names* (ids are an
/// encoding detail; names are the contract).
fn assert_same(a: &Dataset, b: &Dataset) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.country_count(), b.country_count());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.title, y.title);
        assert_eq!(x.total_views, y.total_views);
        assert_eq!(x.popularity, y.popularity);
        let x_names: Vec<&str> = x.tags.iter().map(|&t| a.tags().name(t)).collect();
        let y_names: Vec<&str> = y.tags.iter().map(|&t| b.tags().name(t)).collect();
        assert_eq!(x_names, y_names);
    }
}

fn tsv_bytes(d: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    tsv::write(d, &mut buf).unwrap();
    buf
}

fn bin_bytes(d: &Dataset) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(d, &mut buf).unwrap();
    buf
}

/// A small fixed corpus covering every popularity kind and the TSV
/// escape alphabet.
fn sample() -> Dataset {
    let mut b = DatasetBuilder::new(3);
    b.push_video_titled(
        "plain",
        "A Title",
        1_000,
        &["pop", "Rock"],
        RawPopularity::decode(vec![0, 30, 61], 3),
    );
    b.push_video_titled(
        "esc\\aped,key\there",
        "title\twith,delims\\",
        0,
        &["a,b", "c\\d", "e\tf"],
        RawPopularity::Missing,
    );
    b.push_video_titled(
        "corrupt",
        "",
        u64::MAX,
        &[],
        RawPopularity::Corrupt(vec![255, 0, 7, 9]),
    );
    b.build()
}

#[test]
fn sniffing_tells_the_formats_apart() {
    let d = sample();
    assert_eq!(sniff(&tsv_bytes(&d)), Some(DatasetFormat::Tsv));
    assert_eq!(sniff(&bin_bytes(&d)), Some(DatasetFormat::Binary));
    assert_eq!(sniff(b"not a dataset"), None);
    assert!(decode_any(b"not a dataset").is_err());
}

#[test]
fn fixed_corpus_survives_both_directions() {
    let d = sample();
    let via_bin = decode_any(&bin_bytes(&d)).unwrap();
    assert_same(&d, &via_bin);
    // TSV -> bin -> TSV reproduces the original text bytes exactly.
    let original_tsv = tsv_bytes(&d);
    assert_eq!(original_tsv, tsv_bytes(&via_bin));
}

/// The binary encoding is a pure function of the dataset: repeated
/// encodes — including under different worker-pool settings, which
/// must not leak into serialization — are byte-identical.
#[test]
fn binary_encode_is_deterministic_across_thread_settings() {
    let d = sample();
    let reference = bin_bytes(&d);
    for threads in ["1", "8"] {
        std::env::set_var("TAGDIST_THREADS", threads);
        assert_eq!(
            reference,
            bin_bytes(&d),
            "binary encoding drifted at TAGDIST_THREADS={threads}"
        );
        // Decode under the same setting and re-encode: still identical.
        let decoded = decode_any(&reference).unwrap();
        assert_eq!(reference, bin_bytes(&decoded));
    }
    std::env::remove_var("TAGDIST_THREADS");
}

#[test]
fn truncation_at_every_byte_is_an_error_not_a_panic() {
    let bytes = bin_bytes(&sample());
    for cut in 0..bytes.len() {
        assert!(
            decode_any(&bytes[..cut]).is_err(),
            "decoding a {cut}-byte prefix of {} must fail",
            bytes.len()
        );
    }
    assert!(decode_any(&bytes).is_ok());
}

/// The borrowed decoder applies the same validation as the owning one:
/// every truncation point, every header corruption and payload
/// bit-flip that `decode` rejects is rejected before a single borrowed
/// section is handed out.
#[test]
fn borrowed_decode_rejects_truncation_and_corruption() {
    let bytes = bin_bytes(&sample());
    for cut in 0..bytes.len() {
        assert!(
            binfmt::decode_borrowed(&bytes[..cut]).is_err(),
            "borrowing a {cut}-byte prefix of {} must fail",
            bytes.len()
        );
        assert!(binfmt::verify(&bytes[..cut]).is_err());
    }
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x40;
    assert!(
        binfmt::decode_borrowed(&bad).is_err(),
        "payload bit-flip must fail the section checksum in borrowed mode"
    );
    let mut bad = bytes.clone();
    bad[binfmt::MAGIC.len() - 2] = b'9';
    assert!(
        binfmt::decode_borrowed(&bad).is_err(),
        "wrong version must not decode in borrowed mode"
    );
    assert!(binfmt::decode_borrowed(&bytes).is_ok());
    assert!(binfmt::verify(&bytes).is_ok());
}

/// The mmap load path and the buffered read produce bit-identical
/// datasets: same columnar image, same owned materialization, same
/// filtered [`CleanDataset`] — zero-copy is a transport detail, never
/// a semantic one.
#[test]
fn mmap_and_buffered_loads_decode_identically() {
    let d = sample();
    let bytes = bin_bytes(&d);
    let mut path = std::env::temp_dir();
    path.push(format!("tagdist-interop-{}.bin", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();

    let map = Mmap::open(&path).unwrap();
    assert_eq!(&map[..], &bytes[..], "mapping must expose the file bytes");

    let via_mmap = binfmt::decode_borrowed(&map).unwrap();
    let via_buffer = binfmt::decode_borrowed(&bytes).unwrap();
    assert_eq!(via_mmap.to_owned(), via_buffer.to_owned());
    assert_eq!(via_mmap.to_owned(), binfmt::decode(&bytes).unwrap());

    let clean_mmap = filter_columnar(&via_mmap);
    assert_eq!(clean_mmap, filter_columnar(&via_buffer));
    assert_eq!(clean_mmap, filter(&decode_any(&bytes).unwrap()));

    drop(map);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn payload_bit_flips_are_caught_by_section_checksums() {
    let good = bin_bytes(&sample());
    let mut seen_checksum_error = false;
    // Flip one byte somewhere in the payload (past the magic + header
    // + section table) at a few probe points.
    let payload_start = good.len() - (good.len() / 3);
    for probe in [payload_start, good.len() - 9, good.len() - 1] {
        let mut bad = good.clone();
        bad[probe] ^= 0x40;
        let err = decode_any(&bad).expect_err("corrupted payload must not decode");
        if matches!(err, DatasetError::Checksum { .. }) {
            seen_checksum_error = true;
        }
    }
    assert!(
        seen_checksum_error,
        "at least one probe must surface as a checksum mismatch"
    );
}

#[test]
fn header_corruption_is_rejected() {
    let good = bin_bytes(&sample());
    // Corrupt the version digit of the magic line.
    let mut bad = good.clone();
    let pos = binfmt::MAGIC.len() - 2;
    bad[pos] = b'9';
    assert!(decode_any(&bad).is_err(), "wrong version must not decode");
    // Corrupt a section-table length field (right after the magic and
    // the four header words, inside the first table entry).
    let mut bad = good.clone();
    let table_entry = binfmt::MAGIC.len() + 16 + 4;
    bad[table_entry..table_entry + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(
        decode_any(&bad).is_err(),
        "an absurd section offset must not decode"
    );
}

fn arb_pop() -> impl Strategy<Value = RawPopularity> {
    prop_oneof![
        Just(RawPopularity::Missing),
        proptest::collection::vec(0u8..=255, 0..8).prop_map(|v| RawPopularity::decode(v, 4)),
        proptest::collection::vec(0u8..=61, 4..=4).prop_map(|v| RawPopularity::decode(v, 4)),
    ]
}

proptest! {
    /// TSV -> bin -> TSV is lossless and text-byte-identical for any
    /// representable corpus, including escape-heavy keys, titles and
    /// tags and every popularity kind.
    #[test]
    fn tsv_bin_tsv_is_lossless(
        videos in proptest::collection::vec(
            ("[a-zA-Z0-9,\\\\\t ]{1,12}", "[a-zA-Z0-9,\\\\\t ]{0,16}",
             0u64..1_000_000,
             proptest::collection::vec("[a-z0-9 ,\\\\\t]{1,8}", 0..5),
             arb_pop()),
            0..20
        )
    ) {
        let mut b = DatasetBuilder::new(4);
        for (key, title, views, tags, pop) in &videos {
            let refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video_titled(key, title, *views, &refs, pop.clone());
        }
        let d = b.build();
        let text = tsv_bytes(&d);
        let binary = bin_bytes(&d);
        let decoded = decode_any(&binary).unwrap();
        prop_assert_eq!(d.len(), decoded.len());
        prop_assert_eq!(&text, &tsv_bytes(&decoded));
        // And the binary re-encode of the decoded dataset is stable.
        prop_assert_eq!(&binary, &bin_bytes(&decoded));
    }

    /// The binary decoder never panics on arbitrary corruption of a
    /// valid encoding: one mutated byte either still decodes (the flip
    /// landed outside a checked region, e.g. in the magic's trailing
    /// newline it did not) or returns an error.
    #[test]
    fn single_byte_mutations_never_panic(
        probe in 0usize..10_000,
        mask in 1u8..=255,
    ) {
        let mut bytes = bin_bytes(&sample());
        let pos = probe % bytes.len();
        bytes[pos] ^= mask;
        let _ = decode_any(&bytes);
    }
}
