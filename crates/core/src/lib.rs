//! `tagdist` — a full reproduction of *“From Views to Tags
//! Distribution in Youtube”* (Delbruel & Taïani, Middleware ’14) as a
//! Rust library.
//!
//! The paper reconstructs per-country view counts of YouTube videos
//! from the 0–61 popularity maps the platform exposed in 2011
//! (Eqs. 1–2), aggregates them per tag (Eq. 3), and observes that tags
//! split into geographically *global* (`pop`, Fig. 2) and *local*
//! (`favela` → Brazil, Fig. 3) — suggesting tags can drive proactive
//! geographic caching.
//!
//! This facade crate re-exports the whole pipeline and wires it into a
//! single entry point, [`Study`]:
//!
//! 1. generate a synthetic YouTube ([`ytsim`]) — the original data is
//!    unobtainable, see `DESIGN.md` for the substitution argument,
//! 2. snowball-crawl it ([`crawler`], §2 methodology),
//! 3. filter defective metadata ([`dataset`], §2 accounting),
//! 4. invert the Map-Chart encoding ([`reconstruct`], §3),
//! 5. aggregate and analyze per tag ([`tags`], Figs. 2–3),
//! 6. and evaluate tag-predictive proactive caching ([`cache`], the
//!    paper's future work).
//!
//! # Quickstart
//!
//! ```
//! use tagdist::{Study, StudyConfig};
//!
//! let study = Study::run(StudyConfig::tiny());
//! println!("{}", study.filter_report());
//! let pop = study.tag_profile("pop").expect("built-in global tag");
//! let favela = study.tag_profile("favela").expect("built-in local tag");
//! assert!(favela.top_share > pop.top_share);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod paper;
pub mod render;
pub mod report;
pub mod study;
pub mod validate;

pub use paper::{PaperComparison, PaperConstants, PAPER};
pub use render::{render_distribution, render_popularity_map, render_views};
pub use report::{markdown_report, markdown_report_obs, ReportOptions};
pub use study::{Study, StudyConfig, StudyError};
pub use validate::{InvariantViolation, Validate};

pub use tagdist_cache as cache;
pub use tagdist_crawler as crawler;
pub use tagdist_dataset as dataset;
pub use tagdist_geo as geo;
pub use tagdist_obs as obs;
pub use tagdist_par as par;
pub use tagdist_reconstruct as reconstruct;
pub use tagdist_tags as tags;
pub use tagdist_ytsim as ytsim;
