//! The paper's published numbers, as data.
//!
//! Keeping the §2 constants in the library (rather than scattered
//! through examples) lets tests and reports compare any study run
//! against the original corpus in one place.

use core::fmt;

use crate::study::Study;

/// §2 constants of the original March-2011 corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConstants {
    /// Videos in the raw crawl.
    pub crawled: u64,
    /// Videos dropped for carrying no tags.
    pub no_tags: u64,
    /// Videos kept after filtering.
    pub kept: u64,
    /// Unique tags over kept videos.
    pub unique_tags: u64,
    /// Total views over kept videos.
    pub total_views: u128,
    /// Seed locales × chart depth.
    pub seed_countries: u32,
    /// Chart depth per seed country.
    pub seeds_per_country: u32,
}

/// The §2 numbers as printed in the paper.
pub const PAPER: PaperConstants = PaperConstants {
    crawled: 1_063_844,
    no_tags: 6_736,
    kept: 691_349,
    unique_tags: 705_415,
    total_views: 173_288_616_473,
    seed_countries: 25,
    seeds_per_country: 10,
};

impl PaperConstants {
    /// Videos dropped for an incorrect/empty popularity vector
    /// (derived: crawled − tagless − kept).
    pub fn bad_popularity(&self) -> u64 {
        self.crawled - self.no_tags - self.kept
    }

    /// Fraction of the crawl kept after filtering (paper ≈ 0.6499).
    pub fn keep_ratio(&self) -> f64 {
        self.kept as f64 / self.crawled as f64
    }

    /// Fraction dropped for missing tags (paper ≈ 0.0063).
    pub fn tagless_ratio(&self) -> f64 {
        self.no_tags as f64 / self.crawled as f64
    }

    /// Mean views per kept video (paper ≈ 250,653).
    pub fn mean_views(&self) -> f64 {
        self.total_views as f64 / self.kept as f64
    }
}

/// Side-by-side comparison of one study run with the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperComparison {
    /// Paper keep ratio.
    pub paper_keep_ratio: f64,
    /// Measured keep ratio.
    pub measured_keep_ratio: f64,
    /// Paper tagless ratio.
    pub paper_tagless_ratio: f64,
    /// Measured tagless ratio.
    pub measured_tagless_ratio: f64,
    /// Paper mean views per kept video.
    pub paper_mean_views: f64,
    /// Measured mean views per kept video.
    pub measured_mean_views: f64,
}

impl PaperComparison {
    /// Compares a study's §2 accounting with the paper's.
    pub fn compute(study: &Study) -> PaperComparison {
        let report = study.filter_report();
        let stats = study.dataset_stats();
        let measured_keep_ratio = report.keep_ratio();
        let measured_tagless_ratio = if report.crawled == 0 {
            0.0
        } else {
            report.no_tags as f64 / report.crawled as f64
        };
        let measured_mean_views = if report.kept == 0 {
            0.0
        } else {
            stats.total_views as f64 / report.kept as f64
        };
        PaperComparison {
            paper_keep_ratio: PAPER.keep_ratio(),
            measured_keep_ratio,
            paper_tagless_ratio: PAPER.tagless_ratio(),
            measured_tagless_ratio,
            paper_mean_views: PAPER.mean_views(),
            measured_mean_views,
        }
    }

    /// `true` when the filtering *ratios* land within `tolerance`
    /// (absolute) of the paper's — the E1 success criterion.
    pub fn ratios_match(&self, tolerance: f64) -> bool {
        (self.measured_keep_ratio - self.paper_keep_ratio).abs() <= tolerance
            && (self.measured_tagless_ratio - self.paper_tagless_ratio).abs() <= tolerance
    }
}

impl fmt::Display for PaperComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "keep ratio:    paper {:.2}% vs measured {:.2}%",
            100.0 * self.paper_keep_ratio,
            100.0 * self.measured_keep_ratio
        )?;
        writeln!(
            f,
            "tagless ratio: paper {:.2}% vs measured {:.2}%",
            100.0 * self.paper_tagless_ratio,
            100.0 * self.measured_tagless_ratio
        )?;
        write!(
            f,
            "mean views:    paper {:.0} vs measured {:.0}",
            self.paper_mean_views, self.measured_mean_views
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;

    #[test]
    fn constants_are_internally_consistent() {
        assert_eq!(PAPER.bad_popularity(), 365_759);
        assert!((PAPER.keep_ratio() - 0.6499).abs() < 1e-3);
        assert!((PAPER.tagless_ratio() - 0.00633).abs() < 1e-4);
        assert!((PAPER.mean_views() - 250_653.0).abs() < 1.0);
        assert_eq!(PAPER.seed_countries, 25);
        assert_eq!(PAPER.seeds_per_country, 10);
    }

    #[test]
    fn tiny_study_matches_paper_ratios() {
        let mut cfg = StudyConfig::tiny();
        cfg.world.with_videos(3_000);
        let study = Study::run(cfg);
        let cmp = PaperComparison::compute(&study);
        assert!(
            cmp.ratios_match(0.06),
            "ratios diverge from the paper:\n{cmp}"
        );
        // Display names both sides.
        let text = cmp.to_string();
        assert!(text.contains("paper"));
        assert!(text.contains("measured"));
    }

    #[test]
    fn ratios_match_respects_tolerance() {
        let cmp = PaperComparison {
            paper_keep_ratio: 0.65,
            measured_keep_ratio: 0.60,
            paper_tagless_ratio: 0.006,
            measured_tagless_ratio: 0.007,
            paper_mean_views: 1.0,
            measured_mean_views: 2.0,
        };
        assert!(cmp.ratios_match(0.06));
        assert!(!cmp.ratios_match(0.01));
    }
}
