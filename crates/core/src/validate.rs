//! Runtime invariant enforcement.
//!
//! The static side of the PR — clippy's lint table and `cargo xtask
//! check` — keeps panics and nondeterminism out of the code. This
//! module is the *dynamic* side: a [`Validate`] trait stating, as
//! checkable predicates, the invariants every pipeline artifact must
//! uphold, with [`Validate::debug_validate`] wiring them into
//! `debug_assert!` so debug builds and tests verify them for free
//! while release binaries pay nothing.

use tagdist_cache::Placement;
use tagdist_dataset::{CleanDataset, VideoRecord};
use tagdist_geo::{
    approx_eq, CountryId, CountryVec, GeoDist, PopularityVector, PopularityView, MAX_INTENSITY,
};

/// Tolerance for mass-conservation checks: reconstruction sums
/// hundreds of thousands of rounded doubles.
const MASS_EPSILON: f64 = 1e-6;

/// A broken invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// The type whose invariant broke.
    pub subject: &'static str,
    /// What was expected.
    pub invariant: &'static str,
    /// Observed detail (index, value, …).
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} invariant broken — {} ({})",
            self.subject, self.invariant, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

impl InvariantViolation {
    fn new(
        subject: &'static str,
        invariant: &'static str,
        detail: impl Into<String>,
    ) -> InvariantViolation {
        InvariantViolation {
            subject,
            invariant,
            detail: detail.into(),
        }
    }
}

/// Checkable runtime invariants.
///
/// Implementations must be cheap relative to constructing the value —
/// they run inside `debug_assert!` on every pipeline stage boundary.
pub trait Validate {
    /// Checks every invariant, reporting the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] found; `Ok(())` means
    /// every invariant holds.
    fn validate(&self) -> Result<(), InvariantViolation>;

    /// Asserts validity in debug builds; free in release builds.
    #[expect(
        clippy::panic,
        reason = "debug_assert-style guard: a broken invariant is a bug in the constructing stage"
    )]
    fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        if let Err(violation) = self.validate() {
            panic!("{violation}");
        }
    }
}

impl Validate for CountryVec {
    /// Every entry is finite — NaN or ±∞ would silently poison every
    /// downstream aggregate.
    fn validate(&self) -> Result<(), InvariantViolation> {
        for (id, v) in self.iter() {
            if !v.is_finite() {
                return Err(InvariantViolation::new(
                    "CountryVec",
                    "entries are finite",
                    format!("entry {} is {v}", id.index()),
                ));
            }
        }
        Ok(())
    }
}

impl Validate for GeoDist {
    /// A distribution: non-empty, entries in `[0, 1]`, total mass 1.
    fn validate(&self) -> Result<(), InvariantViolation> {
        if self.is_empty() {
            return Err(InvariantViolation::new(
                "GeoDist",
                "covers at least one country",
                "empty",
            ));
        }
        for (id, p) in self.as_vec().iter() {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(InvariantViolation::new(
                    "GeoDist",
                    "probabilities lie in [0, 1]",
                    format!("entry {} is {p}", id.index()),
                ));
            }
        }
        let mass = self.as_vec().sum();
        if !approx_eq(mass, 1.0, MASS_EPSILON) {
            return Err(InvariantViolation::new(
                "GeoDist",
                "mass sums to 1",
                format!("sum is {mass}"),
            ));
        }
        Ok(())
    }
}

impl Validate for PopularityVector {
    /// Map-Chart intensities never exceed [`MAX_INTENSITY`].
    fn validate(&self) -> Result<(), InvariantViolation> {
        if let Some((i, &v)) = self
            .as_slice()
            .iter()
            .enumerate()
            .find(|&(_, &v)| v > MAX_INTENSITY)
        {
            return Err(InvariantViolation::new(
                "PopularityVector",
                "intensities lie in [0, 61]",
                format!("entry {i} is {v}"),
            ));
        }
        Ok(())
    }
}

impl Validate for PopularityView<'_> {
    /// As for [`PopularityVector`]: intensities never exceed
    /// [`MAX_INTENSITY`] — checked on the borrowed bytes, so columnar
    /// pipelines validate without materializing vectors.
    fn validate(&self) -> Result<(), InvariantViolation> {
        if let Some((i, &v)) = self
            .as_slice()
            .iter()
            .enumerate()
            .find(|&(_, &v)| v > MAX_INTENSITY)
        {
            return Err(InvariantViolation::new(
                "PopularityView",
                "intensities lie in [0, 61]",
                format!("entry {i} is {v}"),
            ));
        }
        Ok(())
    }
}

impl Validate for VideoRecord {
    /// Tags are deduplicated and any valid popularity vector is
    /// structurally sound.
    fn validate(&self) -> Result<(), InvariantViolation> {
        let mut seen = self.tags.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != self.tags.len() {
            return Err(InvariantViolation::new(
                "VideoRecord",
                "tags carry no duplicates",
                format!("video {}", self.key),
            ));
        }
        if let Some(pop) = self.popularity.valid() {
            pop.validate()?;
        }
        Ok(())
    }
}

impl Validate for CleanDataset {
    /// Every retained record satisfies the §2 filter contract: tags
    /// non-empty, popularity signal-bearing and sized to the world.
    fn validate(&self) -> Result<(), InvariantViolation> {
        for (pos, video) in self.iter().enumerate() {
            if video.tags.is_empty() {
                return Err(InvariantViolation::new(
                    "CleanDataset",
                    "retained videos carry tags",
                    format!("position {pos} ({})", video.key),
                ));
            }
            if !video.popularity.has_signal() {
                return Err(InvariantViolation::new(
                    "CleanDataset",
                    "retained popularity vectors carry signal",
                    format!("position {pos} ({})", video.key),
                ));
            }
            if video.popularity.len() != self.country_count() {
                return Err(InvariantViolation::new(
                    "CleanDataset",
                    "popularity vectors match the world size",
                    format!(
                        "position {pos}: {} entries vs {} countries",
                        video.popularity.len(),
                        self.country_count()
                    ),
                ));
            }
            video.popularity.validate()?;
        }
        let report = self.report();
        if report.kept != self.len()
            || report.crawled != report.kept + report.no_tags + report.bad_popularity
        {
            return Err(InvariantViolation::new(
                "CleanDataset",
                "filter accounting balances",
                format!("{report}"),
            ));
        }
        Ok(())
    }
}

impl Validate for Placement {
    /// No per-country cache exceeds its capacity, and every cached
    /// index refers to a video below the placement's video count.
    fn validate(&self) -> Result<(), InvariantViolation> {
        for c in 0..self.country_count() {
            let cached = self.cached(CountryId::from_index(c));
            if cached.len() > self.capacity() {
                return Err(InvariantViolation::new(
                    "Placement",
                    "per-country sets respect capacity",
                    format!(
                        "country {c} caches {} > capacity {}",
                        cached.len(),
                        self.capacity()
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::GeoError;

    #[test]
    fn finite_vec_passes_nan_fails() {
        assert!(CountryVec::from_values(vec![1.0, 0.0]).validate().is_ok());
        let bad = CountryVec::from_values(vec![1.0, f64::NAN]);
        let violation = bad.validate().unwrap_err();
        assert_eq!(violation.invariant, "entries are finite");
        assert!(violation.to_string().contains("NaN"));
    }

    #[test]
    fn fresh_distributions_validate() -> Result<(), GeoError> {
        GeoDist::uniform(7).validate().map_err(|e| {
            panic!("uniform must validate: {e}");
        })?;
        let skewed = GeoDist::from_counts(&CountryVec::from_values(vec![5.0, 1.0, 0.0]))?;
        assert!(skewed.validate().is_ok());
        Ok(())
    }

    #[test]
    fn popularity_vector_bounds_check() {
        let ok = PopularityVector::from_raw(vec![0, 61]).unwrap();
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn clean_dataset_validates_after_filter() {
        let mut b = DatasetBuilder::new(2);
        b.push_video("a", 10, &["pop"], RawPopularity::decode(vec![61, 0], 2));
        b.push_video("b", 10, &[], RawPopularity::Missing);
        let clean = filter(&b.build());
        assert!(clean.validate().is_ok());
        clean.validate().unwrap();
        clean.debug_validate();
    }

    #[test]
    fn placement_capacity_is_enforced() {
        let weights = [3.0, 2.0, 1.0];
        let p = Placement::geo_blind(2, 2, &weights);
        assert!(p.validate().is_ok());
        p.debug_validate();
    }

    #[test]
    fn study_artifacts_validate_end_to_end() {
        let study = crate::Study::run(crate::StudyConfig::tiny());
        study.clean().validate().unwrap();
        study.traffic().validate().unwrap();
        for v in study.clean().iter().take(50) {
            v.popularity.validate().unwrap();
        }
        let truth = study.true_distributions();
        for d in truth.iter().take(50) {
            d.validate().unwrap();
        }
    }
}
