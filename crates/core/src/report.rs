//! Markdown report generation.
//!
//! `EXPERIMENTS.md`-style reporting as a library feature: given a
//! completed [`Study`], [`markdown_report`] emits a self-contained
//! markdown document with the §2 accounting, the three figures, the
//! reconstruction-error decomposition and the prediction evaluation —
//! everything except the (costly) caching sweep, which
//! [`ReportOptions::with_caching`] can enable.

use std::fmt::Write as _;

use tagdist_cache::{run_static_obs, Placement, RequestStream};
use tagdist_obs::{Recorder, SpanGuard};
use tagdist_tags::{PredictionEvaluation, Predictor};

use crate::render::render_distribution;
use crate::study::Study;

/// Options controlling report contents.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportOptions {
    /// Rows rendered per distribution "map".
    pub map_depth: usize,
    /// How many top tags to list.
    pub top_tags: usize,
    /// Include the E7 caching sweep (slower).
    pub with_caching: bool,
    /// Capacities (fraction of catalogue) for the caching sweep.
    pub capacities: Vec<f64>,
    /// Requests simulated per capacity point.
    pub requests: usize,
}

impl Default for ReportOptions {
    fn default() -> ReportOptions {
        ReportOptions {
            map_depth: 8,
            top_tags: 10,
            with_caching: false,
            capacities: vec![0.01, 0.02, 0.05],
            requests: 50_000,
        }
    }
}

/// Renders a full markdown report of the study.
///
/// # Panics
///
/// Panics if the study's filtered dataset is empty.
pub fn markdown_report(study: &Study, options: &ReportOptions) -> String {
    markdown_report_obs(study, options, &Recorder::disabled())
}

/// [`markdown_report`], instrumented: opens a `report` root span on
/// `obs` with one child per experiment section and records the
/// prediction and caching counters. The rendered markdown is
/// byte-identical to [`markdown_report`] — metrics never feed back
/// into report contents.
///
/// # Panics
///
/// As for [`markdown_report`].
pub fn markdown_report_obs(study: &Study, options: &ReportOptions, obs: &Recorder) -> String {
    let span = obs.span("report");
    let mut out = String::new();
    // Writing into a `String` never fails, so the inner `fmt::Result`
    // (which exists purely so `?` replaces per-line unwraps) is moot.
    let _ = write_report(&mut out, study, options, &span);
    out
}

fn write_report(
    w: &mut String,
    study: &Study,
    options: &ReportOptions,
    span: &SpanGuard,
) -> std::fmt::Result {
    writeln!(w, "# tagdist study report\n")?;
    writeln!(
        w,
        "World: {} videos, seed {}; crawl fetched {} videos.\n",
        study.config().world.videos,
        study.config().world.seed,
        study.crawl_stats().fetched
    )?;
    // Crawl health: only *unmasked* failures appear here, so a run
    // whose transient faults all resolved within the retry budget
    // renders a report byte-identical to a fault-free run.
    writeln!(
        w,
        "Crawl health: {} dangling references, {} exhausted retries.\n",
        study.crawl_stats().dangling_references,
        study.crawl_stats().exhausted_retries
    )?;

    // E1.
    let e1 = span.child("e1_accounting");
    writeln!(w, "## E1 — §2 dataset accounting\n")?;
    writeln!(w, "```\n{}\n```\n", study.filter_report())?;
    writeln!(w, "```\n{}\n```\n", study.dataset_stats())?;
    drop(e1);

    // E2.
    let e2 = span.child("e2_fig1");
    let video = study.fig1_most_viewed();
    writeln!(w, "## E2 — Fig. 1: most-viewed video\n")?;
    writeln!(
        w,
        "`{}` with {} views; {} countries saturated at 61.\n",
        video.key,
        video.total_views,
        video.popularity.saturated().len()
    )?;
    writeln!(
        w,
        "```\n{}```\n",
        crate::render::render_popularity_map(video.popularity, options.map_depth)
    )?;
    drop(e2);

    // E3/E4.
    let e3 = span.child("e3_e4_tags");
    writeln!(w, "## E3/E4 — Figs. 2–3: tag geographies\n")?;
    for name in ["pop", "favela"] {
        if let Some(p) = study.tag_profile(name) {
            writeln!(w, "### tag `{name}`\n")?;
            writeln!(
                w,
                "{} videos, {:.0} views, top {} ({:.1} %), JS from traffic {:.4} bits.\n",
                p.video_count,
                p.total_views,
                study.world().country(p.top_country).code,
                100.0 * p.top_share,
                p.js_from_traffic
            )?;
            writeln!(
                w,
                "```\n{}```\n",
                render_distribution(&p.dist, options.map_depth)
            )?;
        }
    }
    writeln!(w, "### top tags by aggregated views\n")?;
    for (tag, views) in study.tag_table().top_by_views(options.top_tags) {
        writeln!(
            w,
            "- `{}` — {:.0} views",
            study.clean().tags().name(tag),
            views
        )?;
    }
    writeln!(w)?;
    drop(e3);

    // E5.
    let e5 = span.child("e5_reconstruction_error");
    writeln!(w, "## E5 — reconstruction error\n")?;
    writeln!(
        w,
        "```\nvs ground truth:\n{}\n```\n",
        study.reconstruction_error()
    )?;
    let s = study.sensitivity();
    writeln!(
        w,
        "Decomposition (mean JS bits): quantization-only {:.4}, prior-only {:.4}, \
         combined {:.4}; prior gap {:.4}.\n",
        s.quantization_only.js.mean, s.prior_only.js.mean, s.combined.js.mean, s.prior_gap
    )?;
    drop(e5);

    // E6. Evaluated through the instrumented path so the `predict`
    // span and counters land under this section; with a disabled span
    // this is exactly `study.prediction_evaluation()`.
    let e6 = span.child("e6_prediction");
    let evaluation = PredictionEvaluation::evaluate_obs(
        study.clean(),
        study.reconstruction(),
        study.tag_table(),
        study.traffic(),
        &e6,
    );
    writeln!(w, "## E6 — tag prediction\n")?;
    writeln!(w, "```\n{evaluation}\n```\n")?;
    drop(e6);

    // E7 (optional).
    if options.with_caching {
        let e7 = span.child("e7_caching");
        writeln!(w, "## E7 — proactive caching sweep\n")?;
        let truth = study.true_distributions();
        let weights = study.view_weights();
        let stream = RequestStream::generate(&truth, &weights, options.requests, 2014);
        let predictor = Predictor::new(study.tag_table(), study.traffic());
        // Per-video predictions land as normalized rows of one
        // contiguous matrix: chunked over the pool, each chunk writes a
        // flat block (predict_probs_into, no per-video allocation),
        // blocks copied back in corpus order.
        let countries = study.world().len();
        let predicted = {
            let pool = tagdist_par::Pool::from_env().with_obs(span.recorder());
            let clean = study.clean();
            let blocks = pool.par_chunks(clean.views_column(), |start, chunk| {
                let mut block = vec![0.0; chunk.len() * countries];
                for offset in 0..chunk.len() {
                    let own = study.reconstruction().views(start + offset);
                    let row = &mut block[offset * countries..(offset + 1) * countries];
                    predictor.predict_probs_into(clean.tags_of(start + offset), own, row);
                }
                block
            });
            let mut matrix = tagdist_geo::CountryMatrix::zeros(study.clean().len(), countries);
            let mut next = 0;
            for block in blocks {
                for row in block.chunks_exact(countries) {
                    matrix.row_mut(next).copy_from_slice(row);
                    next += 1;
                }
            }
            matrix
        };
        writeln!(w, "| capacity | oracle | tag-proactive | geo-blind |")?;
        writeln!(w, "|---:|---:|---:|---:|")?;
        for &frac in &options.capacities {
            let cap = ((truth.len() as f64) * frac).ceil() as usize;
            let rate = |p: &Placement| 100.0 * run_static_obs(p, &stream, &e7).hit_rate();
            writeln!(
                w,
                "| {cap} | {:.1} % | {:.1} % | {:.1} % |",
                rate(&Placement::predictive(
                    "oracle", countries, cap, &truth, &weights
                )),
                rate(&Placement::predictive_rows(
                    "tags", countries, cap, &predicted, &weights
                )),
                rate(&Placement::geo_blind(countries, cap, &weights)),
            )?;
        }
        writeln!(w)?;
        drop(e7);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use std::sync::OnceLock;

    fn shared() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            let mut cfg = StudyConfig::tiny();
            cfg.world.with_videos(1_500);
            Study::run(cfg)
        })
    }

    #[test]
    fn report_contains_every_default_section() {
        let report = markdown_report(shared(), &ReportOptions::default());
        for needle in [
            "# tagdist study report",
            "dangling references",
            "exhausted retries",
            "## E1",
            "## E2",
            "## E3/E4",
            "tag `pop`",
            "tag `favela`",
            "## E5",
            "Decomposition",
            "## E6",
            "win rate",
        ] {
            assert!(report.contains(needle), "missing {needle:?}");
        }
        assert!(!report.contains("## E7"), "caching off by default");
    }

    #[test]
    fn caching_section_is_optional() {
        let options = ReportOptions {
            with_caching: true,
            requests: 5_000,
            capacities: vec![0.02],
            ..ReportOptions::default()
        };
        let report = markdown_report(shared(), &options);
        assert!(report.contains("## E7"));
        assert!(report.contains("| capacity | oracle |"));
    }

    #[test]
    fn report_is_deterministic() {
        let a = markdown_report(shared(), &ReportOptions::default());
        let b = markdown_report(shared(), &ReportOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn map_depth_bounds_rendered_rows() {
        let options = ReportOptions {
            map_depth: 2,
            ..ReportOptions::default()
        };
        let report = markdown_report(shared(), &options);
        // The pop map block should have at most 2 data lines.
        let pop_block = report
            .split("tag `pop`")
            .nth(1)
            .and_then(|s| s.split("```").nth(1))
            .expect("pop map block present");
        assert!(pop_block.trim().lines().count() <= 2, "{pop_block}");
    }
}
