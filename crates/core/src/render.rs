//! Terminal rendering of "popularity maps".
//!
//! The paper's figures are world maps colour-coded by intensity
//! (Figs. 1–3). A library cannot ship Google's retired Map-Chart
//! service, so the examples render the same data as per-country bar
//! tables — country code, value, and a proportional bar — which carry
//! the figures' information content (who is dark, who is light).

use tagdist_geo::{world, GeoDist, PopularityView, MAX_INTENSITY};

/// Width of the bar column in characters.
const BAR_WIDTH: usize = 40;

fn bar(fraction: f64) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(BAR_WIDTH);
    for i in 0..BAR_WIDTH {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Renders a popularity vector (Fig. 1 style): the `top` hottest
/// countries with their 0–61 intensities.
///
/// Takes the borrowed [`PopularityView`] so the columnar pipeline
/// renders straight from pooled intensity bytes; an owned
/// [`PopularityVector`](tagdist_geo::PopularityVector) renders via
/// [`view()`](tagdist_geo::PopularityVector::view).
///
/// # Example
///
/// ```
/// use tagdist_geo::PopularityVector;
/// use tagdist::render_popularity_map;
///
/// let mut raw = vec![0u8; tagdist_geo::world().len()];
/// raw[0] = 61; // US
/// let pop = PopularityVector::from_raw(raw).unwrap();
/// let text = render_popularity_map(pop.view(), 5);
/// assert!(text.contains("US"));
/// assert!(text.contains("61"));
/// ```
pub fn render_popularity_map(pop: PopularityView<'_>, top: usize) -> String {
    let registry = world();
    let mut out = String::new();
    for (id, value) in pop.as_country_vec().top_k(top) {
        if value <= 0.0 {
            break;
        }
        let country = registry.country(id);
        out.push_str(&format!(
            "{:<4} {:>3}  {}\n",
            country.code,
            value as u8,
            bar(value / MAX_INTENSITY as f64)
        ));
    }
    out
}

/// Renders a geographic distribution (Figs. 2–3 style): the `top`
/// most-viewing countries with their view shares.
pub fn render_distribution(dist: &GeoDist, top: usize) -> String {
    let registry = world();
    let max = dist.top_share().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (id, share) in dist.as_vec().top_k(top) {
        if share <= 0.0 {
            break;
        }
        let country = registry.country(id);
        out.push_str(&format!(
            "{:<4} {:>5.1}%  {}\n",
            country.code,
            100.0 * share,
            bar(share / max)
        ));
    }
    out
}

/// Renders a raw per-country row with absolute values (e.g.
/// reconstructed view counts, borrowed straight from a
/// [`CountryMatrix`](tagdist_geo::CountryMatrix) row or
/// [`CountryVec::as_slice`](tagdist_geo::CountryVec::as_slice)).
pub fn render_views(views: &[f64], top: usize) -> String {
    let registry = world();
    let max = views
        .iter()
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let pairs: Vec<(tagdist_geo::CountryId, f64)> = views
        .iter()
        .enumerate()
        .map(|(i, &v)| (tagdist_geo::CountryId::from_index(i), v))
        .collect();
    for (id, value) in
        tagdist_geo::top_k_by(pairs, top, |a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)))
    {
        if value <= 0.0 {
            break;
        }
        let country = registry.country(id);
        out.push_str(&format!(
            "{:<4} {:>14.0}  {}\n",
            country.code,
            value,
            bar(value / max)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::{CountryId, CountryVec, PopularityVector};

    #[test]
    fn popularity_map_lists_hot_countries_in_order() {
        let mut raw = vec![0u8; world().len()];
        let us = world().by_code("US").unwrap().id;
        let sg = world().by_code("SG").unwrap().id;
        raw[us.index()] = 61;
        raw[sg.index()] = 30;
        let pop = PopularityVector::from_raw(raw).unwrap();
        let text = render_popularity_map(pop.view(), 10);
        let us_pos = text.find("US").unwrap();
        let sg_pos = text.find("SG").unwrap();
        assert!(us_pos < sg_pos, "US should render first:\n{text}");
        assert_eq!(text.lines().count(), 2, "zero countries are omitted");
    }

    #[test]
    fn distribution_render_shows_shares() {
        let mut counts = CountryVec::zeros(world().len());
        counts[CountryId::from_index(9)] = 80.0; // BR
        counts[CountryId::from_index(25)] = 20.0; // PT
        let dist = GeoDist::from_counts(&counts).unwrap();
        let text = render_distribution(&dist, 5);
        assert!(text.contains("BR"));
        assert!(text.contains("80.0%"));
        assert!(text.contains("PT"));
    }

    #[test]
    fn views_render_formats_counts() {
        let mut views = CountryVec::zeros(world().len());
        views[CountryId::from_index(0)] = 1_234_567.0;
        let text = render_views(views.as_slice(), 3);
        assert!(text.contains("US"));
        assert!(text.contains("1234567"));
    }

    #[test]
    fn bars_scale_with_magnitude() {
        assert_eq!(bar(0.0).matches('#').count(), 0);
        assert_eq!(bar(1.0).matches('#').count(), BAR_WIDTH);
        assert_eq!(bar(0.5).matches('#').count(), BAR_WIDTH / 2);
        assert_eq!(bar(2.0).matches('#').count(), BAR_WIDTH, "clamped");
    }

    #[test]
    fn empty_inputs_render_empty() {
        let dark = PopularityVector::from_raw(vec![0; world().len()]).unwrap();
        assert!(render_popularity_map(dark.view(), 10).is_empty());
        let zero = CountryVec::zeros(world().len());
        assert!(render_views(zero.as_slice(), 10).is_empty());
    }
}
