//! The end-to-end study pipeline.

use tagdist_crawler::{crawl_parallel_obs, CrawlConfig, CrawlStats, PlatformApi as _};
use tagdist_dataset::{filter, CleanDataset, CleanVideo, DatasetStats, FilterReport};
use tagdist_geo::{world, GeoDist, TrafficModel};
use tagdist_obs::Recorder;
use tagdist_reconstruct::{ErrorReport, Reconstruction, Sensitivity, TagViewTable};
use tagdist_tags::{
    profiles, ClassifyThresholds, LocalityBreakdown, PredictionEvaluation, Predictor, TagProfile,
};
use tagdist_ytsim::{FaultProfile, FlakyPlatform, Platform, WorldConfig};

/// Configuration of a full study run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Synthetic-world parameters.
    pub world: WorldConfig,
    /// Crawl parameters (§2 methodology).
    pub crawl: CrawlConfig,
    /// Transient-fault injection applied to the platform during the
    /// crawl ([`FaultProfile::off`] by default). With any profile
    /// whose faults resolve within the retry budget, the study output
    /// is byte-identical to a fault-free run.
    pub fault: FaultProfile,
    /// Relative error injected into the traffic prior, modelling the
    /// gap between Alexa's estimate `p̂yt` and the real `pyt` (Eq. 2).
    /// `0.0` hands the pipeline the platform's true distribution.
    pub prior_noise: f64,
    /// Seed for the prior perturbation (independent of the world
    /// seed).
    pub prior_seed: u64,
    /// Minimum videos per tag for profile construction.
    pub min_tag_videos: usize,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            world: WorldConfig::default(),
            crawl: CrawlConfig::default(),
            fault: FaultProfile::off(),
            prior_noise: 0.05,
            prior_seed: 7,
            min_tag_videos: 5,
        }
    }
}

impl StudyConfig {
    /// A miniature configuration for tests and doctests.
    pub fn tiny() -> StudyConfig {
        StudyConfig {
            world: WorldConfig::tiny(),
            min_tag_videos: 3,
            ..StudyConfig::default()
        }
    }

    /// A mid-size configuration for integration tests and benches.
    pub fn small() -> StudyConfig {
        StudyConfig {
            world: WorldConfig::small(),
            ..StudyConfig::default()
        }
    }
}

/// Failure modes of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StudyError {
    /// The world or crawl configuration failed validation.
    InvalidConfig(String),
    /// Filtering kept no usable videos, so nothing reconstructs.
    EmptyDataset,
}

impl core::fmt::Display for StudyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StudyError::InvalidConfig(why) => write!(f, "invalid study configuration: {why}"),
            StudyError::EmptyDataset => write!(f, "the crawl yielded no usable videos"),
        }
    }
}

impl std::error::Error for StudyError {}

/// A completed end-to-end run: platform, crawl, filtered dataset,
/// reconstruction and tag table, with the paper's figures and our
/// ground-truth evaluations as methods.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
    platform: Platform,
    crawl_stats: CrawlStats,
    clean: CleanDataset,
    filter_report: FilterReport,
    traffic: TrafficModel,
    reconstruction: Reconstruction,
    tag_table: TagViewTable,
}

impl Study {
    /// Runs the whole pipeline (generate → crawl → filter →
    /// reconstruct → aggregate).
    ///
    /// Deterministic in the configuration's seeds.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`WorldConfig::validate`] and [`CrawlConfig::validate`]) or the
    /// crawl yields no usable videos. [`Study::try_run`] is the
    /// fallible variant.
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract; try_run is the fallible variant"
    )]
    pub fn run(config: StudyConfig) -> Study {
        Study::try_run(config)
            .expect("study configuration is valid and the crawl yields usable videos")
    }

    /// Runs the whole pipeline, reporting failures as values.
    ///
    /// # Errors
    ///
    /// * [`StudyError::InvalidConfig`] if the world or crawl
    ///   configuration fails validation.
    /// * [`StudyError::EmptyDataset`] if the §2 filter keeps no usable
    ///   videos (so the Eq. 1 reconstruction has nothing to normalize).
    pub fn try_run(config: StudyConfig) -> Result<Study, StudyError> {
        Study::try_run_with(config, &Recorder::disabled())
    }

    /// [`try_run`](Study::try_run), instrumented: opens a `study` root
    /// span on `obs` with one child per pipeline stage (`generate`,
    /// `crawl`, `filter`, `traffic_prior`, `reconstruct`, `aggregate`,
    /// `validate`) and records every stage's deterministic counters.
    /// With a disabled recorder this is exactly
    /// [`try_run`](Study::try_run); either way the [`Study`] itself is
    /// identical — metrics never feed back into outputs.
    ///
    /// # Errors
    ///
    /// As for [`try_run`](Study::try_run).
    pub fn try_run_with(config: StudyConfig, obs: &Recorder) -> Result<Study, StudyError> {
        let study_span = obs.span("study");
        config.world.validate().map_err(StudyError::InvalidConfig)?;
        config.crawl.validate().map_err(StudyError::InvalidConfig)?;
        let platform = {
            let _span = study_span.child("generate");
            Platform::generate(config.world.clone())
        };
        obs.add("generate.catalogue", platform.catalogue_size() as u64);
        let outcome = if config.fault.is_enabled() {
            let flaky = FlakyPlatform::new(&platform, config.fault);
            crawl_parallel_obs(&flaky, &config.crawl, &study_span)
        } else {
            crawl_parallel_obs(&platform, &config.crawl, &study_span)
        };
        let clean = {
            let _span = study_span.child("filter");
            filter(&outcome.dataset)
        };
        let filter_report = clean.report();
        obs.add("filter.crawled", filter_report.crawled as u64);
        obs.add("filter.kept", filter_report.kept as u64);
        obs.add("filter.no_tags", filter_report.no_tags as u64);
        obs.add("filter.bad_popularity", filter_report.bad_popularity as u64);
        // The paper's Eq. 2 prior: the (noisy) estimate of the
        // platform's per-country traffic.
        let traffic = {
            let _span = study_span.child("traffic_prior");
            TrafficModel::from_distribution(platform.true_traffic().clone())
                .perturbed(config.prior_noise, config.prior_seed)
        };
        let reconstruction =
            Reconstruction::compute_obs(&clean, traffic.distribution(), &study_span)
                .map_err(|_| StudyError::EmptyDataset)?;
        let tag_table = TagViewTable::aggregate_obs(&clean, &reconstruction, &study_span);
        // Debug builds verify the stage invariants (free in release).
        {
            let _span = study_span.child("validate");
            crate::validate::Validate::debug_validate(&clean);
            crate::validate::Validate::debug_validate(traffic.distribution());
        }
        Ok(Study {
            config,
            platform,
            crawl_stats: outcome.stats,
            clean,
            filter_report,
            traffic,
            reconstruction,
            tag_table,
        })
    }

    /// The configuration that produced this study.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The synthetic platform (ground truth included).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Crawl accounting.
    pub fn crawl_stats(&self) -> &CrawlStats {
        &self.crawl_stats
    }

    /// The filtered working dataset (§2).
    pub fn clean(&self) -> &CleanDataset {
        &self.clean
    }

    /// The §2 filtering accounting.
    pub fn filter_report(&self) -> FilterReport {
        self.filter_report
    }

    /// §2 corpus statistics.
    pub fn dataset_stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.clean)
    }

    /// The traffic prior handed to the reconstruction (Eq. 2's
    /// `p̂yt`).
    pub fn traffic(&self) -> &GeoDist {
        self.traffic.distribution()
    }

    /// Per-video reconstructed views (§3).
    pub fn reconstruction(&self) -> &Reconstruction {
        &self.reconstruction
    }

    /// Per-tag aggregated views (Eq. 3).
    pub fn tag_table(&self) -> &TagViewTable {
        &self.tag_table
    }

    /// Profiles of all tags with at least
    /// [`StudyConfig::min_tag_videos`] retained videos, by views
    /// descending.
    pub fn tag_profiles(&self) -> Vec<TagProfile> {
        profiles(
            &self.clean,
            &self.tag_table,
            self.traffic.distribution(),
            self.config.min_tag_videos,
        )
    }

    /// Profile of one tag by name (no minimum-video threshold), or
    /// `None` if the tag never survived filtering.
    pub fn tag_profile(&self, name: &str) -> Option<TagProfile> {
        let tag = self.clean.tags().id(name)?;
        TagProfile::build(
            tag,
            &self.clean,
            &self.tag_table,
            self.traffic.distribution(),
        )
    }

    /// Fig. 1: the most-viewed video and its popularity map.
    ///
    /// # Panics
    ///
    /// Panics if the filtered dataset is empty.
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract on empty datasets"
    )]
    pub fn fig1_most_viewed(&self) -> CleanVideo<'_> {
        self.clean
            .most_viewed()
            .expect("study datasets are non-empty")
    }

    /// E5: reconstruction error against ground truth, per video.
    ///
    /// The paper could not run this check; the synthetic substrate
    /// can. Compares each retained video's reconstructed distribution
    /// with the generator's true one.
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "every retained video was crawled from this very platform"
    )]
    pub fn reconstruction_error(&self) -> ErrorReport {
        let truth: Vec<GeoDist> = self
            .clean
            .iter()
            .map(|v| {
                self.platform
                    .ground_truth(v.key)
                    .expect("crawled videos exist on the platform")
                    .view_distribution()
            })
            .collect();
        let estimate: Vec<GeoDist> = (0..self.clean.len())
            .map(|pos| {
                self.reconstruction
                    .distribution(pos)
                    .expect("rows carry mass")
            })
            .collect();
        ErrorReport::compare(&truth, &estimate).expect("aligned by construction")
    }

    /// Baseline for E5: how far the traffic prior alone is from each
    /// video's true distribution.
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "every retained video was crawled from this very platform"
    )]
    pub fn prior_error(&self) -> ErrorReport {
        let truth: Vec<GeoDist> = self
            .clean
            .iter()
            .map(|v| {
                self.platform
                    .ground_truth(v.key)
                    .expect("crawled videos exist on the platform")
                    .view_distribution()
            })
            .collect();
        let estimate: Vec<GeoDist> = vec![self.traffic.distribution().clone(); truth.len()];
        ErrorReport::compare(&truth, &estimate).expect("aligned by construction")
    }

    /// E6: leave-one-out tag-prediction quality against the
    /// *reconstructed* distributions (the paper's observable).
    pub fn prediction_evaluation(&self) -> PredictionEvaluation {
        PredictionEvaluation::evaluate(
            &self.clean,
            &self.reconstruction,
            &self.tag_table,
            self.traffic.distribution(),
        )
    }

    /// E6 per-class view: prediction quality by the locality class of
    /// each video's dominant tag.
    pub fn prediction_by_locality(&self) -> LocalityBreakdown {
        LocalityBreakdown::evaluate(
            &self.clean,
            &self.reconstruction,
            &self.tag_table,
            self.traffic.distribution(),
            &ClassifyThresholds::default(),
        )
    }

    /// E6 (ground-truth variant): tag predictions scored against the
    /// generator's true distributions.
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "every retained video was crawled from this very platform"
    )]
    pub fn prediction_error_vs_truth(&self) -> ErrorReport {
        let predictor = Predictor::new(&self.tag_table, self.traffic.distribution());
        let truth: Vec<GeoDist> = self
            .clean
            .iter()
            .map(|v| {
                self.platform
                    .ground_truth(v.key)
                    .expect("crawled videos exist on the platform")
                    .view_distribution()
            })
            .collect();
        // Chunked over the pool with a per-chunk scratch buffer; order
        // and values match the serial map at any thread count.
        let estimate: Vec<GeoDist> = tagdist_par::Pool::from_env()
            .par_chunks(self.clean.views_column(), |start, chunk| {
                let mut mix = vec![0.0; self.tag_table.country_count()];
                (0..chunk.len())
                    .map(|offset| {
                        let own = self.reconstruction.views(start + offset);
                        predictor
                            .predict_into(self.clean.tags_of(start + offset), own, &mut mix)
                            .unwrap_or_else(|_| self.traffic.distribution().clone())
                    })
                    .collect::<Vec<GeoDist>>()
            })
            .into_iter()
            .flatten()
            .collect();
        ErrorReport::compare(&truth, &estimate).expect("aligned by construction")
    }

    /// E5 decomposition: quantization loss vs prior-mismatch loss
    /// (see [`Sensitivity`]).
    ///
    /// # Panics
    ///
    /// Panics if the filtered dataset is empty.
    #[expect(
        clippy::expect_used,
        reason = "documented # Panics contract; retained videos were crawled from this platform"
    )]
    pub fn sensitivity(&self) -> Sensitivity {
        // One contiguous matrix of ground-truth rows (no per-video
        // clones): copy each platform vector into its row slot.
        let countries = self.traffic.distribution().len();
        let mut truth_views = tagdist_geo::CountryMatrix::zeros(self.clean.len(), countries);
        for (pos, v) in self.clean.iter().enumerate() {
            let truth = self
                .platform
                .ground_truth(v.key)
                .expect("crawled videos exist on the platform");
            truth_views
                .row_mut(pos)
                .copy_from_slice(truth.views_by_country.as_slice());
        }
        Sensitivity::analyze(&truth_views, self.traffic.distribution())
            .expect("non-empty study datasets decompose")
    }

    /// Ground-truth view distributions of the retained videos, in
    /// dataset order (inputs for oracle cache placements).
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "every retained video was crawled from this very platform"
    )]
    pub fn true_distributions(&self) -> Vec<GeoDist> {
        self.clean
            .iter()
            .map(|v| {
                self.platform
                    .ground_truth(v.key)
                    .expect("crawled videos exist on the platform")
                    .view_distribution()
            })
            .collect()
    }

    /// Per-video request weights (total views), in dataset order.
    pub fn view_weights(&self) -> Vec<f64> {
        self.clean.iter().map(|v| v.total_views as f64).collect()
    }

    /// The world registry the study ran against.
    pub fn world(&self) -> &'static tagdist_geo::World {
        world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Study {
        Study::run(StudyConfig::tiny())
    }

    #[test]
    fn pipeline_produces_consistent_sizes() {
        let s = study();
        assert_eq!(s.clean().len(), s.reconstruction().len());
        assert_eq!(s.filter_report().kept, s.clean().len());
        assert!(s.crawl_stats().fetched >= s.clean().len());
        assert!(s.clean().len() > 500, "tiny study kept {}", s.clean().len());
    }

    #[test]
    fn filter_ratios_land_near_paper_shape() {
        let s = study();
        let r = s.filter_report();
        let keep = r.keep_ratio();
        assert!((0.55..0.75).contains(&keep), "keep ratio {keep}");
        let tagless = r.no_tags as f64 / r.crawled as f64;
        assert!(tagless < 0.03, "tagless share {tagless}");
    }

    #[test]
    fn builtin_tags_have_the_paper_shapes() {
        let s = study();
        let pop = s.tag_profile("pop").expect("pop survives");
        let favela = s.tag_profile("favela").expect("favela survives");
        // Fig. 2 vs Fig. 3.
        assert!(pop.js_from_traffic < favela.js_from_traffic);
        assert!(
            favela.top_share > 0.4,
            "favela top share {}",
            favela.top_share
        );
        let br = world().by_code("BR").unwrap().id;
        assert_eq!(favela.top_country, br);
    }

    #[test]
    fn reconstruction_beats_the_prior() {
        let s = study();
        let recon = s.reconstruction_error();
        let prior = s.prior_error();
        assert!(recon.js.mean < prior.js.mean);
        assert!(recon.top_country_accuracy > prior.top_country_accuracy);
    }

    #[test]
    fn prediction_beats_the_baseline() {
        let s = study();
        let eval = s.prediction_evaluation();
        assert!(eval.predicted.mean < eval.baseline.mean);
        assert!(eval.win_rate > 0.5, "win rate {}", eval.win_rate);
    }

    #[test]
    fn locality_breakdown_covers_most_videos() {
        let s = study();
        let breakdown = s.prediction_by_locality();
        let covered: usize = breakdown.rows.iter().map(|&(_, n, ..)| n).sum();
        assert!(covered as f64 > 0.95 * s.clean().len() as f64);
        // The conjecture should hold within every class.
        for (class, n, pred, base) in &breakdown.rows {
            if *n > 100 {
                assert!(
                    pred.mean < base.mean,
                    "{class}: prediction {} vs baseline {}",
                    pred.mean,
                    base.mean
                );
            }
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = study();
        let b = study();
        assert_eq!(a.filter_report(), b.filter_report());
        assert_eq!(a.fig1_most_viewed().key, b.fig1_most_viewed().key);
    }

    #[test]
    fn helpers_are_aligned() {
        let s = study();
        assert_eq!(s.true_distributions().len(), s.clean().len());
        assert_eq!(s.view_weights().len(), s.clean().len());
        assert_eq!(s.world().len(), s.traffic().len());
        assert!(s.dataset_stats().unique_tags > 0);
        assert!(s.tag_profiles().len() > 10);
    }
}
