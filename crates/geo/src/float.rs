//! Epsilon-comparison helpers.
//!
//! Direct `==`/`!=` on `f64` is forbidden workspace-wide (clippy's
//! `float_cmp` plus the `float-eq` rule of `cargo xtask check`):
//! reconstruction arithmetic accumulates rounding error, so equality
//! must always be read as "within tolerance". These helpers are the
//! sanctioned spelling.

/// Default comparison tolerance, far below one Map-Chart quantization
/// step (1/61) or any view-count resolution the pipeline produces.
pub const DEFAULT_EPSILON: f64 = 1e-12;

/// `a` and `b` are equal within `eps`.
#[must_use]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// `v` is zero within [`DEFAULT_EPSILON`] — the guard to use before
/// dividing or skipping empty mass.
#[must_use]
pub fn approx_zero(v: f64) -> bool {
    v.abs() <= DEFAULT_EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_rounding() {
        assert!(approx_eq(0.1 + 0.2, 0.3, DEFAULT_EPSILON));
        assert!(!approx_eq(1.0, 1.0 + 1e-9, DEFAULT_EPSILON));
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-6));
    }

    #[test]
    fn approx_zero_is_symmetric() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-0.0));
        assert!(approx_zero(1e-13));
        assert!(approx_zero(-1e-13));
        assert!(!approx_zero(1e-9));
    }
}
