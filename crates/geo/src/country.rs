//! The fixed registry of countries modelled by the study.
//!
//! The paper's dataset was seeded from the top-10 charts of the 25
//! countries YouTube exposed as locales in March 2011, and its
//! popularity maps report intensities for every country Google's
//! Map-Chart service could draw. We model a 60-country world: the 25
//! seed locales plus 35 additional countries large enough to register
//! in the traffic distribution. The set is fixed at compile time, which
//! lets every per-country quantity live in a dense vector indexed by
//! [`CountryId`].

use core::fmt;

/// Compact index of a country inside the [`World`] registry.
///
/// `CountryId` is a dense index (0‥[`World::len`]) rather than an ISO
/// code so that per-country data can be stored in flat vectors. Obtain
/// one from [`World::by_code`] or by iterating [`World::iter`].
///
/// # Example
///
/// ```
/// use tagdist_geo::world;
///
/// let us = world().by_code("US").unwrap().id;
/// assert_eq!(world().country(us).name, "United States");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryId(u16);

impl CountryId {
    /// Creates an id from a raw dense index.
    ///
    /// Callers are expected to pass an index smaller than
    /// [`World::len`]; ids are normally obtained from the registry
    /// rather than constructed by hand.
    pub fn from_index(index: usize) -> CountryId {
        CountryId(index as u16)
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CountryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<CountryId> for usize {
    fn from(id: CountryId) -> usize {
        id.index()
    }
}

/// Continental region a country belongs to.
///
/// Used by the caching simulator to price cross-region transfers and by
/// the synthetic platform to shape topic affinities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// USA, Canada, Mexico.
    NorthAmerica,
    /// South and Central America.
    SouthAmerica,
    /// Europe including Russia.
    Europe,
    /// Asia and the Pacific Rim (excluding the Middle East).
    Asia,
    /// Australia and New Zealand.
    Oceania,
    /// Middle East and North Africa.
    MiddleEast,
    /// Sub-Saharan Africa.
    Africa,
}

impl Region {
    /// Position of this region in [`Region::ALL`] (declaration order).
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// All regions, in declaration order.
    pub const ALL: [Region; 7] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::Asia,
        Region::Oceania,
        Region::MiddleEast,
        Region::Africa,
    ];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Region::NorthAmerica => "North America",
            Region::SouthAmerica => "South America",
            Region::Europe => "Europe",
            Region::Asia => "Asia",
            Region::Oceania => "Oceania",
            Region::MiddleEast => "Middle East",
            Region::Africa => "Africa",
        };
        f.write_str(name)
    }
}

/// Static description of one country in the registry.
///
/// This is passive data in the C-struct spirit, so its fields are
/// public. Population figures are rounded 2011 estimates (the crawl
/// year) in millions; `traffic_weight` is the relative share of
/// worldwide YouTube views originating in the country, the quantity the
/// paper approximates with Alexa data (Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Country {
    /// Dense registry index.
    pub id: CountryId,
    /// ISO 3166-1 alpha-2 code, e.g. `"BR"`.
    pub code: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Population in millions, 2011 estimate.
    pub population_m: f64,
    /// Continental region.
    pub region: Region,
    /// Primary language, ISO 639-1 code.
    pub language: &'static str,
    /// Whether the country was one of YouTube's 25 locales in March
    /// 2011 and therefore contributed top-10 seeds to the crawl.
    pub seed_locale: bool,
    /// Relative weight in the world YouTube-traffic distribution.
    pub traffic_weight: f64,
    /// Representative UTC offset in hours (large countries use the
    /// offset of their population centre), for diurnal-load modelling.
    pub utc_offset_hours: f64,
}

/// Row of the static table:
/// (code, name, pop, region, lang, seed, traffic, utc_offset).
type Row = (
    &'static str,
    &'static str,
    f64,
    Region,
    &'static str,
    bool,
    f64,
    f64,
);

use Region::*;

/// The 60-country table. The first 25 entries are the 2011 YouTube seed
/// locales. Traffic weights are loosely calibrated to the regional
/// split the paper cites from Sandvine (NA 18.69 %, EU 28.73 %, Asia
/// 31.22 % of network traffic) and to 2011 internet-user counts.
const TABLE: &[Row] = &[
    (
        "US",
        "United States",
        311.6,
        NorthAmerica,
        "en",
        true,
        17.50,
        -6.0,
    ),
    ("GB", "United Kingdom", 63.3, Europe, "en", true, 4.30, 0.0),
    ("FR", "France", 65.3, Europe, "fr", true, 3.20, 1.0),
    ("DE", "Germany", 80.3, Europe, "de", true, 4.10, 1.0),
    ("IT", "Italy", 59.4, Europe, "it", true, 2.50, 1.0),
    ("ES", "Spain", 46.7, Europe, "es", true, 2.40, 1.0),
    ("NL", "Netherlands", 16.7, Europe, "nl", true, 1.30, 1.0),
    ("PL", "Poland", 38.5, Europe, "pl", true, 1.90, 1.0),
    ("RU", "Russia", 142.9, Europe, "ru", true, 3.60, 3.0),
    ("BR", "Brazil", 196.6, SouthAmerica, "pt", true, 4.90, -3.0),
    ("MX", "Mexico", 114.8, NorthAmerica, "es", true, 2.80, -6.0),
    (
        "AR",
        "Argentina",
        40.7,
        SouthAmerica,
        "es",
        true,
        1.60,
        -3.0,
    ),
    ("JP", "Japan", 127.8, Asia, "ja", true, 5.40, 9.0),
    ("KR", "South Korea", 49.8, Asia, "ko", true, 2.60, 9.0),
    ("IN", "India", 1_221.0, Asia, "hi", true, 4.20, 5.5),
    ("AU", "Australia", 22.3, Oceania, "en", true, 1.50, 10.0),
    ("CA", "Canada", 34.3, NorthAmerica, "en", true, 2.20, -5.0),
    ("NZ", "New Zealand", 4.4, Oceania, "en", true, 0.35, 12.0),
    ("TW", "Taiwan", 23.2, Asia, "zh", true, 1.40, 8.0),
    ("HK", "Hong Kong", 7.1, Asia, "zh", true, 0.80, 8.0),
    ("CZ", "Czech Republic", 10.5, Europe, "cs", true, 0.60, 1.0),
    ("SE", "Sweden", 9.4, Europe, "sv", true, 0.75, 1.0),
    ("IL", "Israel", 7.8, MiddleEast, "he", true, 0.55, 2.0),
    ("ZA", "South Africa", 51.6, Africa, "en", true, 0.65, 2.0),
    ("IE", "Ireland", 4.6, Europe, "en", true, 0.40, 0.0),
    // --- non-seed countries ---
    ("PT", "Portugal", 10.6, Europe, "pt", false, 0.55, 0.0),
    ("GR", "Greece", 11.1, Europe, "el", false, 0.50, 2.0),
    ("TR", "Turkey", 74.0, MiddleEast, "tr", false, 2.30, 2.0),
    ("UA", "Ukraine", 45.7, Europe, "uk", false, 1.10, 2.0),
    ("RO", "Romania", 20.1, Europe, "ro", false, 0.75, 2.0),
    ("HU", "Hungary", 10.0, Europe, "hu", false, 0.50, 1.0),
    ("AT", "Austria", 8.4, Europe, "de", false, 0.45, 1.0),
    ("CH", "Switzerland", 7.9, Europe, "de", false, 0.50, 1.0),
    ("BE", "Belgium", 11.0, Europe, "nl", false, 0.55, 1.0),
    ("DK", "Denmark", 5.6, Europe, "da", false, 0.35, 1.0),
    ("NO", "Norway", 5.0, Europe, "no", false, 0.35, 1.0),
    ("FI", "Finland", 5.4, Europe, "fi", false, 0.35, 2.0),
    ("SK", "Slovakia", 5.4, Europe, "sk", false, 0.25, 1.0),
    ("BG", "Bulgaria", 7.3, Europe, "bg", false, 0.30, 2.0),
    ("HR", "Croatia", 4.3, Europe, "hr", false, 0.20, 1.0),
    ("RS", "Serbia", 7.2, Europe, "sr", false, 0.25, 1.0),
    ("CL", "Chile", 17.3, SouthAmerica, "es", false, 0.80, -4.0),
    (
        "CO",
        "Colombia",
        46.4,
        SouthAmerica,
        "es",
        false,
        1.30,
        -5.0,
    ),
    ("PE", "Peru", 29.6, SouthAmerica, "es", false, 0.70, -5.0),
    (
        "VE",
        "Venezuela",
        29.3,
        SouthAmerica,
        "es",
        false,
        0.70,
        -4.5,
    ),
    ("EC", "Ecuador", 15.2, SouthAmerica, "es", false, 0.35, -5.0),
    ("UY", "Uruguay", 3.4, SouthAmerica, "es", false, 0.15, -3.0),
    ("EG", "Egypt", 82.5, MiddleEast, "ar", false, 1.30, 2.0),
    (
        "SA",
        "Saudi Arabia",
        28.2,
        MiddleEast,
        "ar",
        false,
        1.60,
        3.0,
    ),
    (
        "AE",
        "United Arab Emirates",
        8.9,
        MiddleEast,
        "ar",
        false,
        0.55,
        4.0,
    ),
    ("MA", "Morocco", 32.3, Africa, "ar", false, 0.55, 0.0),
    ("NG", "Nigeria", 164.2, Africa, "en", false, 0.60, 1.0),
    ("KE", "Kenya", 42.0, Africa, "en", false, 0.25, 3.0),
    ("ID", "Indonesia", 243.8, Asia, "id", false, 2.10, 7.0),
    ("MY", "Malaysia", 28.9, Asia, "ms", false, 1.00, 8.0),
    ("TH", "Thailand", 66.9, Asia, "th", false, 1.20, 7.0),
    ("PH", "Philippines", 94.0, Asia, "tl", false, 1.40, 8.0),
    ("VN", "Vietnam", 87.8, Asia, "vi", false, 1.10, 7.0),
    ("SG", "Singapore", 5.2, Asia, "en", false, 0.60, 8.0),
    ("PK", "Pakistan", 176.2, Asia, "ur", false, 0.80, 5.0),
];

/// The immutable registry of all modelled countries.
///
/// A process-wide instance is available through [`world()`]; building
/// additional instances is possible (e.g. for tests) via
/// [`World::new`], but all `tagdist` crates share the global one.
#[derive(Debug, Clone)]
pub struct World {
    countries: Vec<Country>,
}

impl World {
    /// Builds a fresh registry from the built-in table.
    pub fn new() -> World {
        let countries = TABLE
            .iter()
            .enumerate()
            .map(
                |(
                    i,
                    &(
                        code,
                        name,
                        population_m,
                        region,
                        language,
                        seed_locale,
                        traffic_weight,
                        utc_offset_hours,
                    ),
                )| {
                    Country {
                        id: CountryId::from_index(i),
                        code,
                        name,
                        population_m,
                        region,
                        language,
                        seed_locale,
                        traffic_weight,
                        utc_offset_hours,
                    }
                },
            )
            .collect();
        World { countries }
    }

    /// Number of registered countries.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// Returns `true` if the registry is empty (it never is for the
    /// built-in table; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// Returns the country with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this registry.
    pub fn country(&self, id: CountryId) -> &Country {
        &self.countries[id.index()]
    }

    /// Looks a country up by its ISO 3166-1 alpha-2 code
    /// (case-sensitive, upper case).
    pub fn by_code(&self, code: &str) -> Option<&Country> {
        self.countries.iter().find(|c| c.code == code)
    }

    /// Iterates over all countries in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Country> {
        self.countries.iter()
    }

    /// Ids of the 25 seed-locale countries, in id order.
    pub fn seed_locales(&self) -> Vec<CountryId> {
        self.countries
            .iter()
            .filter(|c| c.seed_locale)
            .map(|c| c.id)
            .collect()
    }

    /// Ids of all countries in the given region.
    pub fn in_region(&self, region: Region) -> Vec<CountryId> {
        self.countries
            .iter()
            .filter(|c| c.region == region)
            .map(|c| c.id)
            .collect()
    }

    /// Ids of all countries whose primary language is `language`.
    pub fn speaking(&self, language: &str) -> Vec<CountryId> {
        self.countries
            .iter()
            .filter(|c| c.language == language)
            .map(|c| c.id)
            .collect()
    }
}

impl Default for World {
    fn default() -> World {
        World::new()
    }
}

/// Returns the process-wide country registry.
///
/// The registry is built on first use and shared afterwards; all
/// `tagdist` crates index their per-country vectors against it.
pub fn world() -> &'static World {
    use std::sync::OnceLock;
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(World::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_sixty_countries() {
        assert_eq!(world().len(), 60);
    }

    #[test]
    fn exactly_25_seed_locales() {
        assert_eq!(world().seed_locales().len(), 25);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<_> = world().iter().map(|c| c.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), world().len());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, c) in world().iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
    }

    #[test]
    fn by_code_round_trips() {
        for c in world().iter() {
            let found = world().by_code(c.code).expect("every code resolves");
            assert_eq!(found.id, c.id);
        }
        assert!(world().by_code("XX").is_none());
        assert!(world().by_code("us").is_none(), "lookup is case-sensitive");
    }

    #[test]
    fn populations_and_weights_are_positive() {
        for c in world().iter() {
            assert!(c.population_m > 0.0, "{} population", c.code);
            assert!(c.traffic_weight > 0.0, "{} traffic weight", c.code);
        }
    }

    #[test]
    fn paper_figure_1_countries_exist() {
        // Fig. 1 singles out the USA and Singapore sharing intensity 61.
        assert!(world().by_code("US").is_some());
        assert!(world().by_code("SG").is_some());
        // Fig. 3 anchors the tag `favela` to Brazil.
        assert!(world().by_code("BR").is_some());
    }

    #[test]
    fn regions_partition_the_world() {
        let total: usize = Region::ALL
            .iter()
            .map(|&r| world().in_region(r).len())
            .sum();
        assert_eq!(total, world().len());
    }

    #[test]
    fn language_groups_are_plausible() {
        let es = world().speaking("es");
        assert!(es.len() >= 8, "Spanish-speaking block: {}", es.len());
        let pt = world().speaking("pt");
        assert_eq!(pt.len(), 2, "Brazil and Portugal");
    }

    #[test]
    fn utc_offsets_are_plausible() {
        for c in world().iter() {
            assert!(
                (-12.0..=14.0).contains(&c.utc_offset_hours),
                "{}: {}",
                c.code,
                c.utc_offset_hours
            );
        }
        assert_eq!(world().by_code("JP").unwrap().utc_offset_hours, 9.0);
        assert_eq!(world().by_code("BR").unwrap().utc_offset_hours, -3.0);
        assert_eq!(world().by_code("IN").unwrap().utc_offset_hours, 5.5);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(CountryId::from_index(3).to_string(), "#3");
        assert_eq!(Region::NorthAmerica.to_string(), "North America");
    }
}
