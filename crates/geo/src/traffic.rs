//! World YouTube-traffic model — the Alexa substitute.
//!
//! Eq. 2 of the paper approximates the per-country share of worldwide
//! YouTube views, `pyt[c]`, with an estimate `p̂yt[c]` scraped from
//! Alexa Internet. Alexa shut down in 2022, so this crate carries a
//! static per-country traffic table (see
//! [`Country::traffic_weight`](crate::Country)) calibrated to the 2011
//! regional splits the paper cites, and exposes it as a [`GeoDist`].
//!
//! Because Alexa itself was an *estimate*, [`TrafficModel::perturbed`]
//! can derive noisy variants: the reconstruction experiments (E5 in
//! DESIGN.md) sweep the noise level to measure how sensitive the
//! paper's pipeline is to prior error — an ablation the original study
//! could not run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::country::World;
use crate::dist::GeoDist;
use crate::vec::CountryVec;

/// Per-country share of worldwide YouTube traffic.
///
/// # Example
///
/// ```
/// use tagdist_geo::{world, TrafficModel};
///
/// let traffic = TrafficModel::reference(world());
/// let us = world().by_code("US").unwrap().id;
/// // The USA dominates the 2011 traffic distribution.
/// assert_eq!(traffic.distribution().top_country(), Some(us));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    dist: GeoDist,
}

impl TrafficModel {
    /// The reference model derived from the registry's built-in
    /// traffic weights (the `p̂yt` of Eq. 2).
    #[expect(
        clippy::expect_used,
        clippy::missing_panics_doc,
        reason = "the registry's built-in weights are statically positive"
    )]
    pub fn reference(world: &World) -> TrafficModel {
        let weights: CountryVec = world.iter().map(|c| c.traffic_weight).collect();
        let dist = GeoDist::from_counts(&weights).expect("built-in traffic weights are positive");
        TrafficModel { dist }
    }

    /// Wraps an arbitrary distribution as a traffic model (e.g. a
    /// ground-truth distribution recovered from a synthetic platform).
    pub fn from_distribution(dist: GeoDist) -> TrafficModel {
        TrafficModel { dist }
    }

    /// The traffic distribution `p̂yt`.
    pub fn distribution(&self) -> &GeoDist {
        &self.dist
    }

    /// Traffic share of one country.
    pub fn share(&self, id: crate::CountryId) -> f64 {
        self.dist.prob(id)
    }

    /// Derives a model whose shares are multiplicatively perturbed by
    /// up to `±noise` relative (e.g. `0.1` for ±10 %), then
    /// renormalized — a stand-in for Alexa's estimation error.
    ///
    /// Deterministic in `seed`. `noise = 0` returns an identical model.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not within `[0, 1)`.
    #[expect(
        clippy::expect_used,
        reason = "a multiplicative perturbation in (0, 2) of positive mass stays positive"
    )]
    pub fn perturbed(&self, noise: f64, seed: u64) -> TrafficModel {
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        if noise == 0.0 {
            return self.clone();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let perturbed: CountryVec = self
            .dist
            .as_vec()
            .as_slice()
            .iter()
            .map(|&p| {
                let factor = 1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0);
                p * factor
            })
            .collect();
        let dist = GeoDist::from_counts(&perturbed)
            .expect("perturbation of a distribution keeps positive mass");
        TrafficModel { dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::world;

    #[test]
    fn reference_is_a_distribution() {
        let t = TrafficModel::reference(world());
        assert!((t.distribution().as_vec().sum() - 1.0).abs() < 1e-12);
        assert_eq!(t.distribution().len(), world().len());
    }

    #[test]
    fn usa_leads_and_big_markets_rank_high() {
        let t = TrafficModel::reference(world());
        let us = world().by_code("US").unwrap().id;
        assert_eq!(t.distribution().top_country(), Some(us));
        let top10: Vec<_> = t
            .distribution()
            .as_vec()
            .top_k(10)
            .into_iter()
            .map(|(id, _)| world().country(id).code)
            .collect();
        for code in ["US", "JP", "BR", "DE"] {
            assert!(top10.contains(&code), "{code} should be a top-10 market");
        }
    }

    #[test]
    fn regional_split_roughly_matches_sandvine_citation() {
        // The paper's intro cites NA ~19 %, EU ~29 %, Asia ~31 % of
        // traffic. Our table should land in the same ballpark.
        use crate::country::Region;
        let t = TrafficModel::reference(world());
        let share_of =
            |r: Region| -> f64 { world().in_region(r).into_iter().map(|id| t.share(id)).sum() };
        let na = share_of(Region::NorthAmerica);
        let eu = share_of(Region::Europe);
        let asia = share_of(Region::Asia);
        assert!((0.15..0.30).contains(&na), "NA share {na}");
        assert!((0.22..0.40).contains(&eu), "EU share {eu}");
        assert!((0.15..0.35).contains(&asia), "Asia share {asia}");
    }

    #[test]
    fn perturbed_is_deterministic_and_close() {
        let t = TrafficModel::reference(world());
        let a = t.perturbed(0.1, 42);
        let b = t.perturbed(0.1, 42);
        assert_eq!(a, b);
        let c = t.perturbed(0.1, 43);
        assert_ne!(a, c, "different seeds should differ");
        let tv = t.distribution().total_variation(a.distribution()).unwrap();
        assert!(tv < 0.1, "±10 % noise moves TV distance by {tv}");
        assert!(tv > 0.0);
    }

    #[test]
    fn zero_noise_is_identity() {
        let t = TrafficModel::reference(world());
        assert_eq!(t.perturbed(0.0, 1), t);
    }

    #[test]
    #[should_panic(expected = "noise")]
    fn perturbed_rejects_out_of_range_noise() {
        let _ = TrafficModel::reference(world()).perturbed(1.0, 0);
    }

    #[test]
    fn larger_noise_moves_further() {
        let t = TrafficModel::reference(world());
        let small = t
            .distribution()
            .total_variation(t.perturbed(0.05, 7).distribution())
            .unwrap();
        let large = t
            .distribution()
            .total_variation(t.perturbed(0.4, 7).distribution())
            .unwrap();
        assert!(large > small);
    }
}
