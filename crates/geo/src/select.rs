//! Partial-selection top-k: `sort + truncate(k)` without sorting the
//! tail.
//!
//! The geographic tag index ranks ~84k scored tags per country but
//! keeps only the top handful. A full `sort_by` pays `O(n log n)` for
//! entries that are immediately discarded; [`top_k_by`] instead
//! partitions with `select_nth_unstable_by` in `O(n)` and sorts only
//! the `k` winners.

use core::cmp::Ordering;

/// Returns the `k` elements that would lead `items` after
/// `items.sort_by(cmp)`, in sorted order.
///
/// When `cmp` is a **total order** (antisymmetric and transitive — in
/// this codebase always guaranteed by a unique-id tiebreak), the result
/// is element-for-element identical to
/// `items.sort_by(cmp); items.truncate(k)`: the selection step places
/// exactly the `k` front elements (in arbitrary order) before the
/// partition point, and sorting those `k` restores the unique prefix
/// of the total order, ties included.
pub fn top_k_by<T, F>(mut items: Vec<T>, k: usize, mut cmp: F) -> Vec<T>
where
    F: FnMut(&T, &T) -> Ordering,
{
    if k == 0 {
        items.clear();
        return items;
    }
    if k < items.len() {
        items.select_nth_unstable_by(k - 1, &mut cmp);
        items.truncate(k);
    }
    items.sort_by(cmp);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_sort(mut items: Vec<(u32, f64)>, k: usize) -> Vec<(u32, f64)> {
        items.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items
    }

    #[test]
    fn matches_full_sort_including_ties() {
        // Repeated scores force the tiebreak to decide membership.
        let items: Vec<(u32, f64)> = (0..200u32).map(|i| (i, f64::from(i % 7))).collect();
        for k in [0, 1, 3, 7, 50, 199, 200, 500] {
            let fast = top_k_by(items.clone(), k, |a, b| {
                b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
            });
            assert_eq!(fast, full_sort(items.clone(), k), "k={k}");
        }
    }

    #[test]
    fn k_zero_and_empty_input() {
        assert!(top_k_by(vec![(1u32, 1.0)], 0, |a, b| a.0.cmp(&b.0)).is_empty());
        assert!(top_k_by(Vec::<(u32, f64)>::new(), 5, |a, b| a.0.cmp(&b.0)).is_empty());
    }
}
