//! The 0–61 Google Map-Chart intensity codec.
//!
//! YouTube's 2011 "popularity map" rendered each video's per-country
//! popularity through Google's Map-Chart image service, from which the
//! dataset's authors extracted an integer per country in `[0, 61]`
//! (reference 6 of the paper).
//! The encoding is lossy in two ways the reconstruction has to cope
//! with:
//!
//! 1. **per-video rescaling** — the most intense country is always
//!    mapped to 61 (the paper's `K(v)` in Eq. 1), erasing absolute
//!    scale, and
//! 2. **integer quantization** — intensities are rounded to one of 62
//!    levels, erasing fine-grained differences (which is how the USA
//!    and Singapore can tie at 61 in Fig. 1).
//!
//! [`PopularityVector::quantize`] is the exact forward model;
//! [`PopularityVector::as_country_vec`] is the raw (still rescaled)
//! inverse used by the reconstruction in `tagdist-reconstruct`.

use core::fmt;

use crate::country::CountryId;
use crate::error::GeoError;
use crate::vec::CountryVec;

/// Largest representable Map-Chart intensity.
pub const MAX_INTENSITY: u8 = 61;

/// A per-country popularity vector as observed through the Map-Chart
/// service: one integer intensity in `[0, 61]` per country.
///
/// Invariant: every stored intensity is `<= MAX_INTENSITY`.
///
/// # Example
///
/// ```
/// use tagdist_geo::{CountryVec, PopularityVector, MAX_INTENSITY};
///
/// # fn main() -> Result<(), tagdist_geo::GeoError> {
/// let intensity = CountryVec::from_values(vec![10.0, 40.0, 20.0]);
/// let pop = PopularityVector::quantize(&intensity)?;
/// assert_eq!(pop.max(), MAX_INTENSITY); // the hottest country saturates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PopularityVector {
    intensities: Vec<u8>,
}

impl PopularityVector {
    /// Validates a raw intensity vector (e.g. parsed from the dataset
    /// serialization or scraped from a chart URL).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidValue`] if any intensity exceeds
    /// [`MAX_INTENSITY`].
    pub fn from_raw(intensities: Vec<u8>) -> Result<PopularityVector, GeoError> {
        if let Some((index, &value)) = intensities
            .iter()
            .enumerate()
            .find(|&(_, &v)| v > MAX_INTENSITY)
        {
            return Err(GeoError::InvalidValue {
                index,
                value: value as f64,
            });
        }
        Ok(PopularityVector { intensities })
    }

    /// Like [`from_raw`](PopularityVector::from_raw), but hands the
    /// input vector back on failure so the caller can retain the
    /// corrupt bytes without cloning.
    ///
    /// # Errors
    ///
    /// Returns the unmodified input if any intensity exceeds
    /// [`MAX_INTENSITY`].
    pub fn from_raw_or_reclaim(intensities: Vec<u8>) -> Result<PopularityVector, Vec<u8>> {
        if intensities.iter().any(|&v| v > MAX_INTENSITY) {
            return Err(intensities);
        }
        Ok(PopularityVector { intensities })
    }

    /// Encodes a non-negative real-valued intensity vector the way the
    /// Map-Chart service did: rescale so the maximum maps to 61, then
    /// round to the nearest integer.
    ///
    /// This implements the per-video normalization `K(v)` of Eq. 1.
    ///
    /// # Errors
    ///
    /// * [`GeoError::InvalidValue`] if any entry is negative or not
    ///   finite.
    /// * [`GeoError::ZeroMass`] if all entries are zero (YouTube showed
    ///   no map for such videos; callers model this as a missing
    ///   vector).
    pub fn quantize(intensity: &CountryVec) -> Result<PopularityVector, GeoError> {
        for (id, v) in intensity.iter() {
            if !v.is_finite() || v < 0.0 {
                return Err(GeoError::InvalidValue {
                    index: id.index(),
                    value: v,
                });
            }
        }
        let max = intensity.max().unwrap_or(0.0);
        if max <= 0.0 {
            return Err(GeoError::ZeroMass);
        }
        let scale = MAX_INTENSITY as f64 / max;
        let intensities = intensity
            .as_slice()
            .iter()
            .map(|&v| (v * scale).round() as u8)
            .collect();
        Ok(PopularityVector { intensities })
    }

    /// Number of countries covered.
    pub fn len(&self) -> usize {
        self.intensities.len()
    }

    /// Returns `true` if the vector covers no countries.
    pub fn is_empty(&self) -> bool {
        self.intensities.is_empty()
    }

    /// Intensity of country `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn intensity(&self, id: CountryId) -> u8 {
        self.intensities[id.index()]
    }

    /// Raw intensities in id order.
    pub fn as_slice(&self) -> &[u8] {
        &self.intensities
    }

    /// Largest stored intensity (0 for an all-dark map).
    pub fn max(&self) -> u8 {
        self.intensities.iter().copied().max().unwrap_or(0)
    }

    /// Countries saturated at [`MAX_INTENSITY`].
    ///
    /// Fig. 1 of the paper shows the USA and Singapore both saturated
    /// for *Justin Bieber – Baby*; saturation ties are inherent to the
    /// per-video rescaling.
    pub fn saturated(&self) -> Vec<CountryId> {
        self.intensities
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v == MAX_INTENSITY)
            .map(|(i, _)| CountryId::from_index(i))
            .collect()
    }

    /// Number of countries with a non-zero intensity.
    pub fn support_size(&self) -> usize {
        self.intensities.iter().filter(|&&v| v > 0).count()
    }

    /// Converts intensities to a real-valued [`CountryVec`] (still in
    /// rescaled Map-Chart units).
    pub fn as_country_vec(&self) -> CountryVec {
        self.intensities.iter().map(|&v| v as f64).collect()
    }

    /// Returns `true` if the map carries any signal at all.
    ///
    /// The paper discards videos with "an incorrect or empty
    /// popularity vector"; an all-zero map is the "empty" case.
    pub fn has_signal(&self) -> bool {
        self.intensities.iter().any(|&v| v > 0)
    }
}

impl PopularityVector {
    /// A borrowing [`PopularityView`] over this vector's intensities.
    pub fn view(&self) -> PopularityView<'_> {
        PopularityView {
            intensities: &self.intensities,
        }
    }
}

/// A borrowed per-country popularity vector: the zero-copy counterpart
/// of [`PopularityVector`] used by columnar datasets, whose intensity
/// bytes live in one flat pool instead of one `Vec<u8>` per video.
///
/// Invariant: every viewed intensity is `<= MAX_INTENSITY` (upheld by
/// the constructors; [`from_validated`](PopularityView::from_validated)
/// trusts its caller).
///
/// The read API mirrors [`PopularityVector`] method-for-method so code
/// generic over "a popularity" compiles against either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopularityView<'a> {
    intensities: &'a [u8],
}

impl<'a> PopularityView<'a> {
    /// Validates a raw intensity slice.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidValue`] if any intensity exceeds
    /// [`MAX_INTENSITY`].
    pub fn from_raw(intensities: &'a [u8]) -> Result<PopularityView<'a>, GeoError> {
        if let Some((index, &value)) = intensities
            .iter()
            .enumerate()
            .find(|&(_, &v)| v > MAX_INTENSITY)
        {
            return Err(GeoError::InvalidValue {
                index,
                value: value as f64,
            });
        }
        Ok(PopularityView { intensities })
    }

    /// Wraps intensities that were already validated upstream (e.g. by
    /// the binary decoder or [`PopularityVector::from_raw`]), skipping
    /// the bounds re-scan on hot paths.
    ///
    /// Callers must guarantee every byte is `<= MAX_INTENSITY`; a
    /// violated invariant yields wrong statistics, never memory
    /// unsafety (checked in debug builds).
    pub fn from_validated(intensities: &'a [u8]) -> PopularityView<'a> {
        debug_assert!(
            intensities.iter().all(|&v| v <= MAX_INTENSITY),
            "from_validated handed an out-of-range intensity"
        );
        PopularityView { intensities }
    }

    /// Number of countries covered.
    pub fn len(&self) -> usize {
        self.intensities.len()
    }

    /// Returns `true` if the view covers no countries.
    pub fn is_empty(&self) -> bool {
        self.intensities.is_empty()
    }

    /// Intensity of country `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn intensity(&self, id: CountryId) -> u8 {
        self.intensities[id.index()]
    }

    /// Raw intensities in id order.
    pub fn as_slice(&self) -> &'a [u8] {
        self.intensities
    }

    /// Largest viewed intensity (0 for an all-dark map).
    pub fn max(&self) -> u8 {
        self.intensities.iter().copied().max().unwrap_or(0)
    }

    /// Countries saturated at [`MAX_INTENSITY`] (see
    /// [`PopularityVector::saturated`]).
    pub fn saturated(&self) -> Vec<CountryId> {
        self.intensities
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v == MAX_INTENSITY)
            .map(|(i, _)| CountryId::from_index(i))
            .collect()
    }

    /// Number of countries with a non-zero intensity.
    pub fn support_size(&self) -> usize {
        self.intensities.iter().filter(|&&v| v > 0).count()
    }

    /// Converts intensities to a real-valued [`CountryVec`] (still in
    /// rescaled Map-Chart units).
    pub fn as_country_vec(&self) -> CountryVec {
        self.intensities.iter().map(|&v| v as f64).collect()
    }

    /// Returns `true` if the map carries any signal at all.
    pub fn has_signal(&self) -> bool {
        self.intensities.iter().any(|&v| v > 0)
    }

    /// Copies the view into an owned [`PopularityVector`].
    pub fn to_vector(&self) -> PopularityVector {
        PopularityVector {
            intensities: self.intensities.to_vec(),
        }
    }
}

/// Writes the non-zero entries, identically to [`PopularityVector`]'s
/// `Display` — reports built from borrowed and owned vectors must be
/// byte-identical.
fn fmt_nonzero(intensities: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    let mut first = true;
    for (i, &v) in intensities.iter().enumerate() {
        if v > 0 {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "#{i}:{v}")?;
            first = false;
        }
    }
    write!(f, "}}")
}

impl fmt::Display for PopularityVector {
    /// Compact display of the non-zero entries: `{#0:61, #5:12}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nonzero(&self.intensities, f)
    }
}

impl fmt::Display for PopularityView<'_> {
    /// Compact display of the non-zero entries: `{#0:61, #5:12}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nonzero(self.intensities, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> CountryId {
        CountryId::from_index(i)
    }

    #[test]
    fn quantize_saturates_the_maximum() {
        let v = CountryVec::from_values(vec![1.0, 4.0, 2.0]);
        let pop = PopularityVector::quantize(&v).unwrap();
        assert_eq!(pop.intensity(id(1)), MAX_INTENSITY);
        assert_eq!(pop.intensity(id(0)), 15); // 61/4 ≈ 15.25 → 15
        assert_eq!(pop.intensity(id(2)), 31); // 30.5 rounds to 31
        assert_eq!(pop.saturated(), vec![id(1)]);
    }

    #[test]
    fn quantize_can_tie_distinct_countries_at_61() {
        // The Fig. 1 phenomenon: near-equal intensities collapse onto
        // the same quantization level.
        let v = CountryVec::from_values(vec![100.0, 99.8, 10.0]);
        let pop = PopularityVector::quantize(&v).unwrap();
        assert_eq!(pop.saturated().len(), 2);
    }

    #[test]
    fn quantize_rejects_zero_and_invalid() {
        assert_eq!(
            PopularityVector::quantize(&CountryVec::zeros(3)),
            Err(GeoError::ZeroMass)
        );
        let neg = CountryVec::from_values(vec![1.0, -2.0]);
        assert!(matches!(
            PopularityVector::quantize(&neg),
            Err(GeoError::InvalidValue { index: 1, .. })
        ));
    }

    #[test]
    fn from_raw_validates_bounds() {
        assert!(PopularityVector::from_raw(vec![0, 61]).is_ok());
        assert!(matches!(
            PopularityVector::from_raw(vec![0, 62]),
            Err(GeoError::InvalidValue { index: 1, .. })
        ));
    }

    #[test]
    fn signal_and_support() {
        let dark = PopularityVector::from_raw(vec![0, 0, 0]).unwrap();
        assert!(!dark.has_signal());
        assert_eq!(dark.support_size(), 0);
        assert_eq!(dark.max(), 0);
        let lit = PopularityVector::from_raw(vec![0, 5, 61]).unwrap();
        assert!(lit.has_signal());
        assert_eq!(lit.support_size(), 2);
    }

    #[test]
    fn as_country_vec_round_trips_values() {
        let pop = PopularityVector::from_raw(vec![3, 0, 61]).unwrap();
        assert_eq!(pop.as_country_vec().as_slice(), &[3.0, 0.0, 61.0]);
    }

    #[test]
    fn display_lists_nonzero_entries() {
        let pop = PopularityVector::from_raw(vec![0, 12, 61]).unwrap();
        assert_eq!(pop.to_string(), "{#1:12, #2:61}");
        let dark = PopularityVector::from_raw(vec![0]).unwrap();
        assert_eq!(dark.to_string(), "{}");
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        // Relative quantization error per entry is at most half a level
        // of the rescaled value.
        let v = CountryVec::from_values(vec![7.3, 2.9, 61.0, 33.33]);
        let pop = PopularityVector::quantize(&v).unwrap();
        let scale = MAX_INTENSITY as f64 / 61.0;
        for (i, &orig) in v.as_slice().iter().enumerate() {
            let q = pop.as_slice()[i] as f64;
            assert!((q - orig * scale).abs() <= 0.5 + 1e-9);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantize_always_in_bounds(
            values in proptest::collection::vec(0.0f64..1e9, 1..64)
        ) {
            prop_assume!(values.iter().any(|&v| v > 0.0));
            let pop = PopularityVector::quantize(
                &CountryVec::from_values(values)).unwrap();
            prop_assert!(pop.as_slice().iter().all(|&v| v <= MAX_INTENSITY));
            prop_assert_eq!(pop.max(), MAX_INTENSITY);
        }

        #[test]
        fn quantize_is_scale_invariant(
            values in proptest::collection::vec(0.0f64..1e6, 1..64),
            factor in 0.001f64..1000.0
        ) {
            prop_assume!(values.iter().any(|&v| v > 1e-3));
            let base = CountryVec::from_values(values.clone());
            let scaled = base.scaled(factor);
            let a = PopularityVector::quantize(&base).unwrap();
            let b = PopularityVector::quantize(&scaled).unwrap();
            // K(v) erases absolute scale, so quantization must be
            // invariant up to one level of rounding jitter.
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert!((*x as i16 - *y as i16).abs() <= 1);
            }
        }

        #[test]
        fn from_raw_round_trips(raw in proptest::collection::vec(0u8..=61, 0..64)) {
            let pop = PopularityVector::from_raw(raw.clone()).unwrap();
            prop_assert_eq!(pop.as_slice(), &raw[..]);
        }
    }
}
