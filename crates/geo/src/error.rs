//! Error type for geographic primitives.

use core::fmt;

/// Errors produced by the `tagdist-geo` primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Two per-country vectors of different lengths were combined.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A vector that must be non-negative and finite contained an
    /// invalid entry.
    InvalidValue {
        /// Dense country index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A distribution could not be normalized because the mass is zero
    /// (all entries zero) or not finite.
    ZeroMass,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::LengthMismatch { left, right } => {
                write!(f, "country vector length mismatch: {left} vs {right}")
            }
            GeoError::InvalidValue { index, value } => {
                write!(f, "invalid value {value} at country index {index}")
            }
            GeoError::ZeroMass => write!(f, "cannot normalize a zero-mass vector"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for e in [
            GeoError::LengthMismatch { left: 1, right: 2 },
            GeoError::InvalidValue {
                index: 0,
                value: -1.0,
            },
            GeoError::ZeroMass,
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<GeoError>();
    }
}
