//! Inter-country network-latency model.
//!
//! The paper motivates geographic placement with ISP/CDN traffic costs
//! [5, 7]. Turning cache hit rates into user-visible benefit needs a
//! latency model: how long a request takes when served by the local
//! edge, by a same-region neighbour, or by the origin. This model is
//! deliberately coarse — a per-region RTT matrix plus an in-country
//! edge RTT — matching the granularity of the paper's world maps.

use crate::country::{CountryId, Region, World};

/// Round-trip-time model between countries, in milliseconds.
///
/// # Example
///
/// ```
/// use tagdist_geo::{world, LatencyModel};
///
/// let latency = LatencyModel::default_2011();
/// let us = world().by_code("US").unwrap().id;
/// let sg = world().by_code("SG").unwrap().id;
/// assert!(latency.rtt_ms(world(), us, sg) > latency.rtt_ms(world(), us, us));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// RTT to an edge server inside the same country.
    local_ms: f64,
    /// RTT between two distinct countries of the same region.
    intra_region_ms: f64,
    /// RTT between regions, indexed by [`Region`] declaration order.
    inter_region_ms: [[f64; 7]; 7],
}

impl LatencyModel {
    /// A model with measured-in-spirit 2011 public-internet RTTs.
    ///
    /// Values are calibrated to the era's backbone latencies: ~10 ms
    /// to an in-country edge, 30–50 ms within a region, 100–350 ms
    /// across oceans.
    pub fn default_2011() -> LatencyModel {
        use Region::*;
        // Symmetric seed data, ms.
        let pairs: &[(Region, Region, f64)] = &[
            (NorthAmerica, SouthAmerica, 140.0),
            (NorthAmerica, Europe, 100.0),
            (NorthAmerica, Asia, 170.0),
            (NorthAmerica, Oceania, 180.0),
            (NorthAmerica, MiddleEast, 160.0),
            (NorthAmerica, Africa, 220.0),
            (SouthAmerica, Europe, 200.0),
            (SouthAmerica, Asia, 320.0),
            (SouthAmerica, Oceania, 310.0),
            (SouthAmerica, MiddleEast, 280.0),
            (SouthAmerica, Africa, 300.0),
            (Europe, Asia, 180.0),
            (Europe, Oceania, 300.0),
            (Europe, MiddleEast, 90.0),
            (Europe, Africa, 120.0),
            (Asia, Oceania, 130.0),
            (Asia, MiddleEast, 140.0),
            (Asia, Africa, 260.0),
            (Oceania, MiddleEast, 250.0),
            (Oceania, Africa, 330.0),
            (MiddleEast, Africa, 180.0),
        ];
        let mut inter = [[0.0f64; 7]; 7];
        for (i, row) in inter.iter_mut().enumerate() {
            row[i] = 45.0; // distinct countries, same region
        }
        for &(a, b, ms) in pairs {
            inter[a.index()][b.index()] = ms;
            inter[b.index()][a.index()] = ms;
        }
        debug_assert!(
            inter.iter().all(|row| row.iter().all(|&ms| ms > 0.0)),
            "pair table must cover every region pair"
        );
        LatencyModel {
            local_ms: 10.0,
            intra_region_ms: 45.0,
            inter_region_ms: inter,
        }
    }

    /// Builds a custom model.
    ///
    /// # Panics
    ///
    /// Panics if any latency is negative or not finite.
    pub fn new(
        local_ms: f64,
        intra_region_ms: f64,
        inter_region_ms: [[f64; 7]; 7],
    ) -> LatencyModel {
        assert!(local_ms.is_finite() && local_ms >= 0.0);
        assert!(intra_region_ms.is_finite() && intra_region_ms >= 0.0);
        for row in &inter_region_ms {
            for &v in row {
                assert!(v.is_finite() && v >= 0.0, "latencies must be non-negative");
            }
        }
        LatencyModel {
            local_ms,
            intra_region_ms,
            inter_region_ms,
        }
    }

    /// RTT in milliseconds between a user in `from` and a server in
    /// `to`.
    pub fn rtt_ms(&self, world: &World, from: CountryId, to: CountryId) -> f64 {
        if from == to {
            return self.local_ms;
        }
        let ra = world.country(from).region;
        let rb = world.country(to).region;
        if ra == rb {
            return self.intra_region_ms;
        }
        self.inter_region_ms[ra.index()][rb.index()]
    }

    /// RTT of a local edge hit.
    pub fn local_ms(&self) -> f64 {
        self.local_ms
    }

    /// The server country minimizing RTT for a user in `from`, chosen
    /// among `candidates`; `None` if `candidates` is empty.
    pub fn nearest(
        &self,
        world: &World,
        from: CountryId,
        candidates: &[CountryId],
    ) -> Option<CountryId> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.rtt_ms(world, from, a)
                .total_cmp(&self.rtt_ms(world, from, b))
                .then(a.cmp(&b))
        })
    }
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::default_2011()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::world;

    fn id(code: &str) -> CountryId {
        world().by_code(code).unwrap().id
    }

    #[test]
    fn local_is_cheapest() {
        let m = LatencyModel::default_2011();
        let us = id("US");
        assert_eq!(m.rtt_ms(world(), us, us), 10.0);
        for other in ["CA", "BR", "JP", "DE"] {
            assert!(m.rtt_ms(world(), us, id(other)) > m.local_ms());
        }
    }

    #[test]
    fn same_region_beats_cross_region() {
        let m = LatencyModel::default_2011();
        let fr = id("FR");
        let de = id("DE");
        let jp = id("JP");
        assert!(m.rtt_ms(world(), fr, de) < m.rtt_ms(world(), fr, jp));
    }

    #[test]
    fn rtt_is_symmetric() {
        let m = LatencyModel::default_2011();
        let codes = ["US", "BR", "FR", "JP", "AU", "IL", "ZA"];
        for a in codes {
            for b in codes {
                assert_eq!(
                    m.rtt_ms(world(), id(a), id(b)),
                    m.rtt_ms(world(), id(b), id(a)),
                    "{a}→{b}"
                );
            }
        }
    }

    #[test]
    fn all_pairs_are_positive_and_finite() {
        let m = LatencyModel::default_2011();
        for a in world().iter() {
            for b in world().iter() {
                let rtt = m.rtt_ms(world(), a.id, b.id);
                assert!(rtt.is_finite() && rtt > 0.0, "{}→{}: {rtt}", a.code, b.code);
            }
        }
    }

    #[test]
    fn nearest_picks_the_obvious_server() {
        let m = LatencyModel::default_2011();
        let fr = id("FR");
        let candidates = vec![id("US"), id("DE"), id("JP")];
        assert_eq!(m.nearest(world(), fr, &candidates), Some(id("DE")));
        // Self always wins when available.
        let with_self = vec![id("US"), id("FR")];
        assert_eq!(m.nearest(world(), fr, &with_self), Some(id("FR")));
        assert_eq!(m.nearest(world(), fr, &[]), None);
    }

    #[test]
    fn nearest_breaks_ties_by_id() {
        let m = LatencyModel::default_2011();
        let us = id("US");
        // Two same-region-distance candidates from the US.
        let de = id("DE");
        let fr = id("FR");
        let winner = m.nearest(world(), us, &[de, fr]).unwrap();
        assert_eq!(winner, de.min(fr));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_is_rejected() {
        let mut inter = [[1.0; 7]; 7];
        inter[0][1] = -5.0;
        let _ = LatencyModel::new(1.0, 2.0, inter);
    }

    #[test]
    fn custom_model_round_trips() {
        let inter = [[80.0; 7]; 7];
        let m = LatencyModel::new(5.0, 20.0, inter);
        assert_eq!(m.rtt_ms(world(), id("US"), id("US")), 5.0);
        assert_eq!(m.rtt_ms(world(), id("US"), id("CA")), 20.0);
        assert_eq!(m.rtt_ms(world(), id("US"), id("FR")), 80.0);
    }
}
