//! Unrolled in-place slice kernels for per-country rows.
//!
//! The columnar pipeline stores dense per-country data as rows of a
//! [`CountryMatrix`](crate::CountryMatrix) and mutates them through
//! these free functions instead of per-element loops over boxed
//! `CountryVec`s. Every kernel except [`sum`] is element-wise (no
//! reduction), so element `i` of the output depends only on element
//! `i` of the inputs: applying the kernels in any per-row schedule
//! produces the same floating-point rounding per element. That is the
//! property the deterministic shard merges of the Eq. 3 aggregation
//! rely on. [`sum`] is the one reduction and is strictly sequential,
//! left to right, matching `CountryVec::sum` bit for bit.
//!
//! All two-slice kernels require equal lengths: a mismatch panics in
//! debug builds and ignores the excess tail of the longer slice in
//! release builds (country rows always share one world size, enforced
//! at matrix construction).

/// `dst[i] += src[i]`, unrolled by four.
pub fn add_assign(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len(), "kernel length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (a, b) in d.by_ref().zip(s.by_ref()) {
        a[0] += b[0];
        a[1] += b[1];
        a[2] += b[2];
        a[3] += b[3];
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a += *b;
    }
}

/// `dst[i] += a * x[i]`, unrolled by four (the BLAS `axpy`).
pub fn axpy(dst: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(dst.len(), x.len(), "kernel length mismatch");
    let mut d = dst.chunks_exact_mut(4);
    let mut s = x.chunks_exact(4);
    for (o, b) in d.by_ref().zip(s.by_ref()) {
        o[0] += a * b[0];
        o[1] += a * b[1];
        o[2] += a * b[2];
        o[3] += a * b[3];
    }
    for (o, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *o += a * *b;
    }
}

/// `dst[i] *= factor`, unrolled by four.
pub fn scale(dst: &mut [f64], factor: f64) {
    let mut d = dst.chunks_exact_mut(4);
    for c in d.by_ref() {
        c[0] *= factor;
        c[1] *= factor;
        c[2] *= factor;
        c[3] *= factor;
    }
    for v in d.into_remainder() {
        *v *= factor;
    }
}

/// `dst[i] += max(views[i] − own[i], 0.0)` — the leave-one-out
/// accumulation of the tag predictor, clamping the tiny negative
/// residues quantization can leave.
pub fn add_clamped_diff(dst: &mut [f64], views: &[f64], own: &[f64]) {
    debug_assert_eq!(dst.len(), views.len(), "kernel length mismatch");
    debug_assert_eq!(dst.len(), own.len(), "kernel length mismatch");
    for ((d, &v), &o) in dst.iter_mut().zip(views).zip(own) {
        *d += (v - o).max(0.0);
    }
}

/// Strictly sequential left-to-right sum (bit-identical to
/// `CountryVec::sum`; deliberately *not* unrolled, because changing
/// the reduction order changes the rounding).
pub fn sum(values: &[f64]) -> f64 {
    values.iter().sum()
}

/// Strictly sequential left-to-right dot product. Like [`sum`], the
/// reduction order is the contract, so no unrolling.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernel length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm through the sequential [`dot`].
pub fn norm(values: &[f64]) -> f64 {
    dot(values, values).sqrt()
}

/// Strictly sequential sum of `f(i, values[i])` — the vetted home for
/// order-sensitive mapped reductions (rank weightings and the like)
/// that plain [`sum`] cannot express.
pub fn sum_by(values: &[f64], f: impl Fn(usize, f64) -> f64) -> f64 {
    values.iter().enumerate().map(|(i, &v)| f(i, v)).sum()
}

/// Strictly sequential sum of `f(a[i], b[i])` over two equal-length
/// slices (pairwise divergence terms and similar).
pub fn zip_sum_by(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernel length mismatch");
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_matches_scalar_loop_at_every_length() {
        for n in 0..23 {
            let mut dst: Vec<f64> = (0..n).map(|i| i as f64 * 0.3).collect();
            let src: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.7).collect();
            let mut expected = dst.clone();
            for (a, b) in expected.iter_mut().zip(&src) {
                *a += *b;
            }
            add_assign(&mut dst, &src);
            assert_eq!(dst, expected, "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_loop_at_every_length() {
        for n in 0..23 {
            let mut dst: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let x: Vec<f64> = (0..n).map(|i| 0.1 + i as f64).collect();
            let mut expected = dst.clone();
            for (a, b) in expected.iter_mut().zip(&x) {
                *a += 2.5 * *b;
            }
            axpy(&mut dst, 2.5, &x);
            assert_eq!(dst, expected, "n={n}");
        }
    }

    #[test]
    fn scale_matches_scalar_loop_at_every_length() {
        for n in 0..23 {
            let mut dst: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let expected: Vec<f64> = dst.iter().map(|v| v * 0.25).collect();
            scale(&mut dst, 0.25);
            assert_eq!(dst, expected, "n={n}");
        }
    }

    #[test]
    fn add_clamped_diff_clamps_negative_residues() {
        let mut dst = vec![1.0, 1.0, 1.0];
        add_clamped_diff(&mut dst, &[5.0, 2.0, 3.0], &[2.0, 4.0, 3.0]);
        assert_eq!(dst, vec![4.0, 1.0, 1.0]);
    }

    #[test]
    fn sum_is_sequential_left_to_right() {
        // A deliberately ill-conditioned sum: the sequential order is
        // the contract, so the result must equal the iterator fold.
        let values = vec![1e16, 1.0, -1e16, 1.0];
        assert_eq!(sum(&values), values.iter().sum::<f64>());
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn dot_and_norm_match_sequential_folds() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![0.5, -1.0, 2.0, 0.0, 1.5];
        let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), expected);
        let sq: f64 = a.iter().map(|x| x * x).sum();
        assert_eq!(norm(&a), sq.sqrt());
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn mapped_sums_match_sequential_folds() {
        let a = vec![0.25, 0.5, 0.125, 0.125];
        let ranked: f64 = a
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as f64 + 1.0) * p)
            .sum();
        assert_eq!(sum_by(&a, |i, p| (i as f64 + 1.0) * p), ranked);
        let b: Vec<f64> = vec![0.5, 0.125, 0.25, 0.125];
        let pairwise: f64 = a
            .iter()
            .zip(&b)
            .map(|(&p, &q)| (p.sqrt() - q.sqrt()).powi(2))
            .sum();
        assert_eq!(
            zip_sum_by(&a, &b, |p, q| (p.sqrt() - q.sqrt()).powi(2)),
            pairwise
        );
    }
}
