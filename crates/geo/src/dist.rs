//! Probability distributions over countries and the spread /
//! divergence measures used by the tag analysis.
//!
//! The paper's qualitative claims — *“the tag `pop` tends to follow the
//! world distribution of Youtube users”* (Fig. 2), *“videos associated
//! with the tag `favela` are mostly viewed in Brazil”* (Fig. 3) — are
//! made quantitative here: a [`GeoDist`] is a normalized per-country
//! distribution, compared with Jensen–Shannon divergence and
//! characterized by entropy / Gini / top-country share.

use rand::Rng;

use crate::country::CountryId;
use crate::error::GeoError;
use crate::vec::CountryVec;

/// A validated probability distribution over countries.
///
/// Invariants (enforced at construction):
/// * every entry is finite and non-negative,
/// * entries sum to 1 (within floating-point tolerance).
///
/// # Example
///
/// ```
/// use tagdist_geo::{CountryVec, GeoDist};
///
/// # fn main() -> Result<(), tagdist_geo::GeoError> {
/// let counts = CountryVec::from_values(vec![30.0, 10.0, 0.0, 60.0]);
/// let dist = GeoDist::from_counts(&counts)?;
/// assert!((dist.as_vec().sum() - 1.0).abs() < 1e-12);
/// assert_eq!(dist.top_share(), 0.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeoDist {
    probs: CountryVec,
}

impl GeoDist {
    /// Normalizes a non-negative count/weight vector into a
    /// distribution.
    ///
    /// # Errors
    ///
    /// * [`GeoError::InvalidValue`] if any entry is negative, NaN or
    ///   infinite.
    /// * [`GeoError::ZeroMass`] if all entries are zero.
    pub fn from_counts(counts: &CountryVec) -> Result<GeoDist, GeoError> {
        GeoDist::from_slice(counts.as_slice())
    }

    /// Normalizes a non-negative slice of counts into a distribution —
    /// the borrowing twin of [`from_counts`](GeoDist::from_counts),
    /// for [`CountryMatrix`](crate::CountryMatrix) rows.
    ///
    /// # Errors
    ///
    /// * [`GeoError::InvalidValue`] if any entry is negative, NaN or
    ///   infinite.
    /// * [`GeoError::ZeroMass`] if all entries are zero.
    pub fn from_slice(counts: &[f64]) -> Result<GeoDist, GeoError> {
        for (index, &value) in counts.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(GeoError::InvalidValue { index, value });
            }
        }
        let total = crate::kernel::sum(counts);
        if total <= 0.0 || !total.is_finite() {
            return Err(GeoError::ZeroMass);
        }
        let inv = 1.0 / total;
        Ok(GeoDist {
            probs: counts.iter().map(|&v| v * inv).collect(),
        })
    }

    /// The uniform distribution over `len` countries.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn uniform(len: usize) -> GeoDist {
        assert!(len > 0, "uniform distribution needs at least one country");
        GeoDist {
            probs: CountryVec::filled(len, 1.0 / len as f64),
        }
    }

    /// A point mass on a single country.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `len`.
    pub fn point_mass(len: usize, id: CountryId) -> GeoDist {
        let mut v = CountryVec::zeros(len);
        v[id] = 1.0;
        GeoDist { probs: v }
    }

    /// Number of countries covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` if the distribution covers no countries (never
    /// constructible through the public API; for completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of country `id`.
    pub fn prob(&self, id: CountryId) -> f64 {
        self.probs[id]
    }

    /// Borrow the underlying probability vector.
    pub fn as_vec(&self) -> &CountryVec {
        &self.probs
    }

    /// Consumes the distribution, returning the probability vector.
    pub fn into_vec(self) -> CountryVec {
        self.probs
    }

    /// Shannon entropy in bits. Ranges from 0 (point mass) to
    /// `log2(len)` (uniform).
    pub fn entropy(&self) -> f64 {
        self.probs
            .as_slice()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// Entropy normalized to `[0, 1]` by `log2(len)`; a scale-free
    /// "spread" score (1 = perfectly global, 0 = single-country).
    pub fn normalized_entropy(&self) -> f64 {
        if self.len() <= 1 {
            return 0.0;
        }
        self.entropy() / (self.len() as f64).log2()
    }

    /// Gini coefficient of the distribution in `[0, 1 − 1/len]`;
    /// higher means more geographically concentrated.
    pub fn gini(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.probs.as_slice().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        // For a distribution (Σp = 1): G = (2·Σ i·p_i)/n − (n+1)/n,
        // with i being the 1-based rank in ascending order.
        let weighted = crate::kernel::sum_by(&sorted, |i, p| (i as f64 + 1.0) * p);
        (2.0 * weighted - (n as f64 + 1.0)) / n as f64
    }

    /// Share of the single most-viewing country (the paper's informal
    /// "mostly viewed in Brazil" criterion).
    pub fn top_share(&self) -> f64 {
        self.probs.max().unwrap_or(0.0)
    }

    /// Combined share of the `k` most-viewing countries.
    pub fn top_k_share(&self, k: usize) -> f64 {
        self.probs.top_k(k).iter().map(|&(_, p)| p).sum()
    }

    /// Country with the largest share, or `None` if empty.
    pub fn top_country(&self) -> Option<CountryId> {
        self.probs.argmax()
    }

    /// Minimal number of countries whose combined share reaches
    /// `share` — the paper's "niche audiences, in limited geographic
    /// areas" made countable. `share` is clamped to `[0, 1]`.
    ///
    /// A point mass answers 1 for any positive `share`; the uniform
    /// distribution answers `⌈share·len⌉`.
    pub fn countries_for_share(&self, share: f64) -> usize {
        let target = share.clamp(0.0, 1.0);
        if crate::float::approx_zero(target) {
            return 0;
        }
        let mut sorted: Vec<f64> = self.probs.as_slice().to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(core::cmp::Ordering::Equal));
        let mut acc = 0.0;
        for (i, p) in sorted.iter().enumerate() {
            acc += p;
            if acc >= target - 1e-12 {
                return i + 1;
            }
        }
        self.len()
    }

    /// Kullback–Leibler divergence `KL(self ‖ other)` in bits.
    ///
    /// Entries where `self` has mass but `other` does not contribute
    /// `+∞`; callers that need a bounded symmetric measure should use
    /// [`GeoDist::js_divergence`].
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn kl_divergence(&self, other: &GeoDist) -> Result<f64, GeoError> {
        if self.len() != other.len() {
            return Err(GeoError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let mut kl = 0.0;
        for (p, q) in self.probs.as_slice().iter().zip(other.probs.as_slice()) {
            if *p > 0.0 {
                if *q > 0.0 {
                    kl += p * (p / q).log2();
                } else {
                    return Ok(f64::INFINITY);
                }
            }
        }
        Ok(kl.max(0.0))
    }

    /// Jensen–Shannon divergence in bits; symmetric and bounded in
    /// `[0, 1]`.
    ///
    /// This is the headline measure for Figs. 2–3: a "global" tag has a
    /// small JS divergence from the world traffic distribution, a
    /// "local" tag a large one.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn js_divergence(&self, other: &GeoDist) -> Result<f64, GeoError> {
        js_divergence_probs(self.probs.as_slice(), other.probs.as_slice())
    }

    /// Total-variation distance `½ Σ|p−q|` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn total_variation(&self, other: &GeoDist) -> Result<f64, GeoError> {
        Ok(0.5 * self.probs.l1_distance(&other.probs)?)
    }

    /// Hellinger distance in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn hellinger(&self, other: &GeoDist) -> Result<f64, GeoError> {
        if self.len() != other.len() {
            return Err(GeoError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let s = crate::kernel::zip_sum_by(self.probs.as_slice(), other.probs.as_slice(), |p, q| {
            (p.sqrt() - q.sqrt()).powi(2)
        });
        Ok((s / 2.0).sqrt().clamp(0.0, 1.0))
    }

    /// Aggregates the distribution by continental region, in
    /// [`Region::ALL`](crate::Region::ALL) order — the granularity of
    /// the Sandvine traffic figures the paper's introduction cites
    /// (NA 18.69 %, EU 28.73 %, Asia 31.22 %).
    ///
    /// # Panics
    ///
    /// Panics if the distribution covers more countries than `world`
    /// registers.
    pub fn regional_shares(&self, world: &crate::World) -> Vec<(crate::Region, f64)> {
        assert!(
            self.len() <= world.len(),
            "unknown countries in distribution"
        );
        crate::Region::ALL
            .iter()
            .map(|&region| {
                let share = world
                    .in_region(region)
                    .into_iter()
                    .filter(|id| id.index() < self.len())
                    .map(|id| self.prob(id))
                    .sum();
                (region, share)
            })
            .collect()
    }

    /// Mixes two distributions: `alpha·self + (1−alpha)·other`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn mix(&self, other: &GeoDist, alpha: f64) -> Result<GeoDist, GeoError> {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        if self.len() != other.len() {
            return Err(GeoError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        let mixed = self.probs.scaled(alpha) + &other.probs.scaled(1.0 - alpha);
        Ok(GeoDist { probs: mixed })
    }

    /// Samples a country according to the distribution.
    ///
    /// The fallback to the last country only triggers on floating-point
    /// shortfall (cumulative sum < drawn uniform), which keeps the
    /// sampler total.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CountryId {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (id, p) in self.probs.iter() {
            acc += p;
            if u < acc {
                return id;
            }
        }
        CountryId::from_index(self.len() - 1)
    }
}

/// Jensen–Shannon divergence in bits between two probability rows
/// given as raw slices — the allocation-free twin of
/// [`GeoDist::js_divergence`] (which delegates here), for scoring
/// loops that keep normalized rows in scratch buffers or
/// [`CountryMatrix`](crate::CountryMatrix) rows. The caller is
/// responsible for `p` and `q` actually being distributions.
///
/// # Errors
///
/// Returns [`GeoError::LengthMismatch`] if the lengths differ.
pub fn js_divergence_probs(p: &[f64], q: &[f64]) -> Result<f64, GeoError> {
    if p.len() != q.len() {
        return Err(GeoError::LengthMismatch {
            left: p.len(),
            right: q.len(),
        });
    }
    let mut js = 0.0;
    for (p, q) in p.iter().zip(q) {
        let m = 0.5 * (p + q);
        if *p > 0.0 {
            js += 0.5 * p * (p / m).log2();
        }
        if *q > 0.0 {
            js += 0.5 * q * (q / m).log2();
        }
    }
    Ok(js.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(i: usize) -> CountryId {
        CountryId::from_index(i)
    }

    fn dist(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    #[test]
    fn from_counts_normalizes() {
        let d = dist(&[2.0, 2.0, 4.0]);
        assert_eq!(d.prob(id(2)), 0.5);
        assert!((d.as_vec().sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_rejects_bad_input() {
        let neg = CountryVec::from_values(vec![1.0, -0.5]);
        assert!(matches!(
            GeoDist::from_counts(&neg),
            Err(GeoError::InvalidValue { index: 1, .. })
        ));
        let zero = CountryVec::zeros(3);
        assert_eq!(GeoDist::from_counts(&zero), Err(GeoError::ZeroMass));
        let nan = CountryVec::from_values(vec![f64::NAN]);
        assert!(GeoDist::from_counts(&nan).is_err());
    }

    #[test]
    fn uniform_and_point_mass_entropy_extremes() {
        let u = GeoDist::uniform(8);
        assert!((u.entropy() - 3.0).abs() < 1e-12);
        assert!((u.normalized_entropy() - 1.0).abs() < 1e-12);
        let p = GeoDist::point_mass(8, id(3));
        assert_eq!(p.entropy(), 0.0);
        assert_eq!(p.normalized_entropy(), 0.0);
        assert_eq!(p.top_country(), Some(id(3)));
    }

    #[test]
    fn gini_extremes() {
        let u = GeoDist::uniform(10);
        assert!(u.gini().abs() < 1e-12, "uniform gini ~ 0: {}", u.gini());
        let p = GeoDist::point_mass(10, id(0));
        assert!((p.gini() - 0.9).abs() < 1e-12, "point-mass gini = 1 − 1/n");
    }

    #[test]
    fn top_share_measures_concentration() {
        let local = dist(&[90.0, 5.0, 5.0]);
        assert!((local.top_share() - 0.9).abs() < 1e-12);
        assert!((local.top_k_share(2) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn regional_shares_partition_the_mass() {
        use crate::country::world;
        use crate::traffic::TrafficModel;
        let traffic = TrafficModel::reference(world());
        let shares = traffic.distribution().regional_shares(world());
        assert_eq!(shares.len(), 7);
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The ordering matches Region::ALL.
        assert_eq!(shares[0].0, crate::Region::NorthAmerica);
        // Every region carries some traffic in the reference model.
        assert!(shares.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn countries_for_share_extremes() {
        let point = GeoDist::point_mass(10, id(3));
        assert_eq!(point.countries_for_share(0.99), 1);
        assert_eq!(point.countries_for_share(0.0), 0);
        let uniform = GeoDist::uniform(10);
        assert_eq!(uniform.countries_for_share(0.5), 5);
        assert_eq!(uniform.countries_for_share(1.0), 10);
        let skewed = dist(&[0.7, 0.2, 0.1]);
        assert_eq!(skewed.countries_for_share(0.5), 1);
        assert_eq!(skewed.countries_for_share(0.8), 2);
        assert_eq!(skewed.countries_for_share(0.95), 3);
        // Out-of-range shares are clamped.
        assert_eq!(skewed.countries_for_share(7.0), 3);
        assert_eq!(skewed.countries_for_share(-1.0), 0);
    }

    #[test]
    fn kl_divergence_basics() {
        let p = dist(&[0.5, 0.5]);
        assert_eq!(p.kl_divergence(&p).unwrap(), 0.0);
        let q = dist(&[1.0, 0.0]);
        assert_eq!(q.kl_divergence(&p).unwrap(), 1.0);
        // Mass where other has none → infinite.
        assert_eq!(p.kl_divergence(&q).unwrap(), f64::INFINITY);
    }

    #[test]
    fn js_divergence_is_symmetric_and_bounded() {
        let p = dist(&[0.9, 0.1, 0.0]);
        let q = dist(&[0.1, 0.1, 0.8]);
        let pq = p.js_divergence(&q).unwrap();
        let qp = q.js_divergence(&p).unwrap();
        assert!((pq - qp).abs() < 1e-12);
        assert!(pq > 0.0 && pq <= 1.0);
        assert_eq!(p.js_divergence(&p).unwrap(), 0.0);
        // Disjoint supports hit the upper bound of 1 bit.
        let a = dist(&[1.0, 0.0]);
        let b = dist(&[0.0, 1.0]);
        assert!((a.js_divergence(&b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_variation_and_hellinger() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        assert!((p.total_variation(&q).unwrap() - 1.0).abs() < 1e-12);
        assert!((p.hellinger(&q).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(p.total_variation(&p).unwrap(), 0.0);
        assert_eq!(p.hellinger(&p).unwrap(), 0.0);
    }

    #[test]
    fn divergences_check_lengths() {
        let p = GeoDist::uniform(2);
        let q = GeoDist::uniform(3);
        assert!(p.kl_divergence(&q).is_err());
        assert!(p.js_divergence(&q).is_err());
        assert!(p.total_variation(&q).is_err());
        assert!(p.hellinger(&q).is_err());
        assert!(p.mix(&q, 0.5).is_err());
    }

    #[test]
    fn mix_interpolates() {
        let p = dist(&[1.0, 0.0]);
        let q = dist(&[0.0, 1.0]);
        let m = p.mix(&q, 0.25).unwrap();
        assert!((m.prob(id(0)) - 0.25).abs() < 1e-12);
        assert!((m.prob(id(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn mix_rejects_bad_alpha() {
        let p = GeoDist::uniform(2);
        let _ = p.mix(&p, 1.5);
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let d = dist(&[0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng) == id(0)).count();
        let share = hits as f64 / n as f64;
        assert!((share - 0.8).abs() < 0.02, "sampled share {share}");
    }

    #[test]
    fn point_mass_always_samples_itself() {
        let d = GeoDist::point_mass(5, id(4));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), id(4));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_counts() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(0.0f64..1000.0, 2..40)
            .prop_filter("needs positive mass", |v| v.iter().sum::<f64>() > 1e-6)
    }

    proptest! {
        #[test]
        fn normalization_sums_to_one(counts in arb_counts()) {
            let d = GeoDist::from_counts(&CountryVec::from_values(counts)).unwrap();
            prop_assert!((d.as_vec().sum() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn entropy_bounds(counts in arb_counts()) {
            let d = GeoDist::from_counts(&CountryVec::from_values(counts)).unwrap();
            let h = d.entropy();
            prop_assert!(h >= -1e-12);
            prop_assert!(h <= (d.len() as f64).log2() + 1e-9);
            let hn = d.normalized_entropy();
            prop_assert!((-1e-12..=1.0 + 1e-9).contains(&hn));
        }

        #[test]
        fn gini_bounds(counts in arb_counts()) {
            let d = GeoDist::from_counts(&CountryVec::from_values(counts)).unwrap();
            let g = d.gini();
            prop_assert!(g >= -1e-9, "gini {g}");
            prop_assert!(g <= 1.0 - 1.0 / d.len() as f64 + 1e-9, "gini {g}");
        }

        #[test]
        fn js_divergence_symmetric_bounded(
            a in arb_counts(), b in arb_counts()
        ) {
            let n = a.len().min(b.len());
            let da = GeoDist::from_counts(&CountryVec::from_values(a[..n].to_vec()));
            let db = GeoDist::from_counts(&CountryVec::from_values(b[..n].to_vec()));
            if let (Ok(da), Ok(db)) = (da, db) {
                let ab = da.js_divergence(&db).unwrap();
                let ba = db.js_divergence(&da).unwrap();
                prop_assert!((ab - ba).abs() < 1e-9);
                prop_assert!((0.0..=1.0).contains(&ab));
            }
        }

        #[test]
        fn tv_triangle_inequality(
            a in arb_counts(), b in arb_counts(), c in arb_counts()
        ) {
            let n = a.len().min(b.len()).min(c.len());
            let make = |v: &[f64]| {
                GeoDist::from_counts(&CountryVec::from_values(v[..n].to_vec()))
            };
            if let (Ok(da), Ok(db), Ok(dc)) = (make(&a), make(&b), make(&c)) {
                let ab = da.total_variation(&db).unwrap();
                let bc = db.total_variation(&dc).unwrap();
                let ac = da.total_variation(&dc).unwrap();
                prop_assert!(ac <= ab + bc + 1e-9);
            }
        }

        #[test]
        fn coverage_is_monotone(
            counts in arb_counts(), a in 0.0f64..1.0, b in 0.0f64..1.0
        ) {
            let d = GeoDist::from_counts(&CountryVec::from_values(counts)).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.countries_for_share(lo) <= d.countries_for_share(hi));
            prop_assert!(d.countries_for_share(hi) <= d.len());
        }

        #[test]
        fn sample_is_in_support(counts in arb_counts(), seed in 0u64..1000) {
            use rand::SeedableRng;
            let d = GeoDist::from_counts(&CountryVec::from_values(counts)).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let c = d.sample(&mut rng);
            prop_assert!(c.index() < d.len());
        }
    }
}
