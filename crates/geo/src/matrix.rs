//! Contiguous row-major matrices of per-country values.
//!
//! The reconstruction pipeline's hot collections — one view vector per
//! video, one aggregate per tag — were originally `Vec<CountryVec>`,
//! i.e. tens of thousands of separate heap allocations chased through
//! a pointer each. [`CountryMatrix`] stores the same data as a single
//! `Vec<f64>` in row-major order: row `i` of a `rows × cols` matrix is
//! the slice `data[i·cols .. (i+1)·cols]`, handed out as a borrowed
//! `&[f64]` view. Mutation goes through the element-wise
//! [`kernel`](crate::kernel) functions, whose per-element rounding is
//! independent of the order rows are processed in — the determinism
//! argument for merging parallel shards (DESIGN.md §9).

use crate::error::GeoError;
use crate::vec::CountryVec;

/// A dense `rows × cols` matrix of `f64` in one contiguous row-major
/// allocation; rows are per-entity (video, tag), columns per-country.
///
/// # Example
///
/// ```
/// use tagdist_geo::CountryMatrix;
///
/// let mut m = CountryMatrix::zeros(2, 3);
/// m.row_mut(0)[1] = 5.0;
/// assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountryMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl CountryMatrix {
    /// Creates a `rows × cols` matrix of zeros in one allocation.
    pub fn zeros(rows: usize, cols: usize) -> CountryMatrix {
        CountryMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Wraps an existing row-major buffer as a `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if `data.len()` is not
    /// `rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<CountryMatrix, GeoError> {
        if data.len() != rows * cols {
            return Err(GeoError::LengthMismatch {
                left: data.len(),
                right: rows * cols,
            });
        }
        Ok(CountryMatrix { data, rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the world size).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`; use [`get_row`](CountryMatrix::get_row)
    /// for the checked variant.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrowed view of row `i`, or `None` if out of range.
    pub fn get_row(&self, i: usize) -> Option<&[f64]> {
        if i < self.rows {
            Some(&self.data[i * self.cols..(i + 1) * self.cols])
        } else {
            None
        }
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates over row slices in row order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| &self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// The whole row-major buffer (row `i` starts at `i * cols()`).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the whole row-major buffer — the entry point
    /// for filling many rows in one parallel pass (e.g.
    /// `Pool::par_fill` with `stride = cols()`).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Adds `other` element-wise into `self` — the shard-merge
    /// operation of the parallel Eq. 3 fold, executed as one kernel
    /// pass over both buffers (equivalently: row `i += ` row `i` of
    /// `other`, for every `i` in row order).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the shapes differ.
    pub fn merge_add(&mut self, other: &CountryMatrix) -> Result<(), GeoError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(GeoError::LengthMismatch {
                left: self.data.len(),
                right: other.data.len(),
            });
        }
        crate::kernel::add_assign(&mut self.data, &other.data);
        Ok(())
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        crate::kernel::scale(&mut self.data, factor);
    }

    /// Sums the rows: `out[c] = Σ_i row(i)[c]`, accumulated in row
    /// order (sequential per element, so the result is deterministic).
    pub fn column_sums(&self) -> CountryVec {
        let mut out = vec![0.0; self.cols];
        for row in self.iter_rows() {
            crate::kernel::add_assign(&mut out, row);
        }
        CountryVec::from_values(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_row_views() {
        let mut m = CountryMatrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert!(!m.is_empty());
        m.row_mut(1).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
        assert_eq!(m.get_row(2), Some(&[0.0, 0.0][..]));
        assert_eq!(m.get_row(3), None);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn from_flat_validates_the_shape() {
        let m = CountryMatrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert!(matches!(
            CountryMatrix::from_flat(2, 2, vec![1.0]),
            Err(GeoError::LengthMismatch { left: 1, right: 4 })
        ));
    }

    #[test]
    fn iter_rows_walks_in_order() {
        let m = CountryMatrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn merge_add_is_elementwise() {
        let mut a = CountryMatrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = CountryMatrix::from_flat(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        a.merge_add(&b).unwrap();
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        let wrong = CountryMatrix::zeros(1, 2);
        assert!(a.merge_add(&wrong).is_err());
    }

    #[test]
    fn scale_and_column_sums() {
        let mut m = CountryMatrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        m.scale(2.0);
        assert_eq!(m.column_sums().as_slice(), &[8.0, 12.0]);
    }

    #[test]
    fn zero_row_and_zero_col_edge_cases() {
        let empty = CountryMatrix::zeros(0, 5);
        assert!(empty.is_empty());
        assert_eq!(empty.iter_rows().count(), 0);
        assert_eq!(empty.column_sums().as_slice(), &[0.0; 5]);
        let thin = CountryMatrix::zeros(4, 0);
        assert_eq!(thin.iter_rows().count(), 4);
        assert_eq!(thin.row(3), &[] as &[f64]);
        assert_eq!(CountryMatrix::default(), CountryMatrix::zeros(0, 0));
    }
}
