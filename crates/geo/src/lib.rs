//! Geographic foundations for the `tagdist` reproduction of
//! *“From Views to Tags Distribution in Youtube”* (Middleware ’14).
//!
//! This crate provides the building blocks every other `tagdist` crate
//! rests on:
//!
//! * a fixed [`registry`](crate::country) of the countries the study
//!   models, addressed by the compact [`CountryId`] index,
//! * [`CountryVec`], a dense per-country vector of `f64` values (view
//!   counts, traffic shares, intensities, …),
//! * [`CountryMatrix`], the contiguous row-major matrix backing
//!   corpus-scale collections of such vectors (one row per video or
//!   tag), with the element-wise [`kernel`] functions that mutate its
//!   rows deterministically,
//! * [`GeoDist`], a validated probability distribution over countries,
//!   together with the spread and divergence measures used throughout
//!   the paper's analysis (entropy, Gini, Jensen–Shannon, …),
//! * the [`mapchart`] codec that reproduces the lossy 0–61 Google
//!   Map-Chart intensity encoding YouTube used for its per-country
//!   popularity maps (the paper's `pop(v)` vector, Eq. 1),
//! * a [`TrafficModel`] substituting for the Alexa per-country YouTube
//!   traffic estimate `p̂yt` of Eq. 2.
//!
//! # Example
//!
//! ```
//! use tagdist_geo::{world, CountryVec, GeoDist};
//!
//! # fn main() -> Result<(), tagdist_geo::GeoError> {
//! let world = world();
//! let br = world.by_code("BR").expect("Brazil is registered");
//! let mut views = CountryVec::zeros(world.len());
//! views[br.id] = 1_000_000.0;
//! let dist = GeoDist::from_counts(&views)?;
//! assert_eq!(dist.top_country(), Some(br.id));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod country;
pub mod dist;
pub mod error;
pub mod float;
pub mod kernel;
pub mod latency;
pub mod mapchart;
pub mod matrix;
pub mod select;
pub mod traffic;
pub mod vec;

pub use country::{world, Country, CountryId, Region, World};
pub use dist::{js_divergence_probs, GeoDist};
pub use error::GeoError;
pub use float::{approx_eq, approx_zero, DEFAULT_EPSILON};
pub use latency::LatencyModel;
pub use mapchart::{PopularityVector, PopularityView, MAX_INTENSITY};
pub use matrix::CountryMatrix;
pub use select::top_k_by;
pub use traffic::TrafficModel;
pub use vec::CountryVec;
